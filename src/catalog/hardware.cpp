// Hardware encodings: 208 specs across switches, NICs, and servers.
//
// The flagship entries are transcriptions of public spec sheets (Listing 1's
// Cisco Catalyst 9500-40X is exact); the rest are generated family variants
// with realistic attribute spreads — the paper encoded "about 200 hardware
// specs … from publicly available information", which we reproduce with a
// deterministic generator so every bench sees the same inventory.
#include "catalog/catalog.hpp"

#include <cmath>

#include "util/error.hpp"

namespace lar::catalog {

using kb::AttrValue;
using kb::HardwareClass;
using kb::HardwareSpec;

namespace {

// ---------------------------------------------------------------------------
// Switches
// ---------------------------------------------------------------------------

struct SwitchFamily {
    const char* name;
    const char* vendor;
    std::vector<int> speedsGbps;
    std::vector<int> portCounts;
    bool p4 = false;
    int p4Stages = 0;
    bool ecn = true;
    bool qcn = false;
    bool intTelemetry = false;
    bool pfc = true;
    bool deepBuffers = false;
    int qosClasses = 8;
    double memoryGb = 8;
    int macTableK = 64; ///< thousands of entries
};

void addSwitchFamily(kb::KnowledgeBase& kb, const SwitchFamily& family) {
    for (const int speed : family.speedsGbps) {
        for (const int ports : family.portCounts) {
            HardwareSpec spec;
            spec.model = std::string(family.name) + " " + std::to_string(ports) +
                         "x" + std::to_string(speed) + "G";
            spec.vendor = family.vendor;
            spec.cls = HardwareClass::Switch;
            spec.attrs[kb::kAttrPortBandwidthGbps] =
                static_cast<std::int64_t>(speed);
            spec.attrs[kb::kAttrNumPorts] = static_cast<std::int64_t>(ports);
            spec.attrs[kb::kAttrMemoryGb] = family.memoryGb;
            spec.attrs[kb::kAttrP4Supported] = family.p4;
            if (family.p4)
                spec.attrs[kb::kAttrP4Stages] =
                    static_cast<std::int64_t>(family.p4Stages);
            spec.attrs[kb::kAttrEcnSupported] = family.ecn;
            spec.attrs[kb::kAttrQcnSupported] = family.qcn;
            spec.attrs[kb::kAttrIntSupported] = family.intTelemetry;
            spec.attrs[kb::kAttrPfcSupported] = family.pfc;
            spec.attrs[kb::kAttrDeepBuffers] = family.deepBuffers;
            spec.attrs[kb::kAttrQosClasses] =
                static_cast<std::int64_t>(family.qosClasses);
            spec.attrs[kb::kAttrMacTableSize] =
                static_cast<std::int64_t>(family.macTableK) * 1000;
            spec.attrs[kb::kAttrBufferMb] = family.deepBuffers ? 4096.0 : 64.0;
            const double totalGbps = static_cast<double>(speed) * ports;
            spec.maxPowerW = 150.0 + totalGbps * 0.12 +
                             (family.deepBuffers ? 400.0 : 0.0);
            spec.unitCostUsd = 4000.0 + totalGbps * 9.0 +
                               (family.p4 ? 6000.0 : 0.0) +
                               (family.deepBuffers ? 15000.0 : 0.0);
            kb.addHardware(std::move(spec));
        }
    }
}

void addSwitches(kb::KnowledgeBase& kb) {
    // Listing 1, exact fields.
    {
        HardwareSpec spec;
        spec.model = "Cisco Catalyst 9500-40X";
        spec.vendor = "Cisco";
        spec.cls = HardwareClass::Switch;
        spec.attrs[kb::kAttrPortBandwidthGbps] = std::int64_t{10};
        spec.attrs[kb::kAttrNumPorts] = std::int64_t{40}; // 40x 10GE SFP+
        spec.attrs[kb::kAttrMemoryGb] = 16.0;
        spec.attrs[kb::kAttrP4Supported] = false; // "# P4 Stages": N/A
        spec.attrs[kb::kAttrEcnSupported] = true;
        spec.attrs[kb::kAttrQcnSupported] = false;
        spec.attrs[kb::kAttrIntSupported] = false;
        spec.attrs[kb::kAttrPfcSupported] = true;
        spec.attrs[kb::kAttrDeepBuffers] = false;
        spec.attrs[kb::kAttrQosClasses] = std::int64_t{8};
        spec.attrs[kb::kAttrMacTableSize] = std::int64_t{64000};
        spec.attrs[kb::kAttrBufferMb] = 36.0;
        spec.maxPowerW = 950.0; // "Max Power Consumption": 950W
        spec.unitCostUsd = 22000.0;
        kb.addHardware(std::move(spec));
    }

    const std::vector<SwitchFamily> families = {
        // Catalyst siblings (the 40X itself is hand-entered above).
        {.name = "Cisco Catalyst 9500",
         .vendor = "Cisco",
         .speedsGbps = {25, 100},
         .portCounts = {24, 32},
         .memoryGb = 16},
        {.name = "Arista 7050X3",
         .vendor = "Arista",
         .speedsGbps = {10, 25},
         .portCounts = {32, 48},
         .qcn = true},
        {.name = "Arista 7060X4",
         .vendor = "Arista",
         .speedsGbps = {100, 400},
         .portCounts = {32, 64},
         .qcn = true,
         .memoryGb = 16},
        {.name = "Arista 7280R3",
         .vendor = "Arista",
         .speedsGbps = {100, 400},
         .portCounts = {24, 48},
         .deepBuffers = true,
         .memoryGb = 32},
        {.name = "Broadcom Trident3",
         .vendor = "Broadcom",
         .speedsGbps = {10, 25, 100},
         .portCounts = {32, 48}},
        {.name = "Broadcom Trident4",
         .vendor = "Broadcom",
         .speedsGbps = {100, 400},
         .portCounts = {32, 64},
         .qcn = true,
         .memoryGb = 12},
        {.name = "Broadcom Tomahawk3",
         .vendor = "Broadcom",
         .speedsGbps = {100, 200, 400},
         .portCounts = {32, 64},
         .qosClasses = 10},
        {.name = "Broadcom Tomahawk4",
         .vendor = "Broadcom",
         .speedsGbps = {200, 400},
         .portCounts = {32, 64},
         .qcn = true,
         .qosClasses = 10,
         .memoryGb = 16},
        {.name = "Intel Tofino",
         .vendor = "Intel",
         .speedsGbps = {10, 25, 100},
         .portCounts = {32, 64},
         .p4 = true,
         .p4Stages = 12,
         .intTelemetry = true},
        {.name = "Intel Tofino2",
         .vendor = "Intel",
         .speedsGbps = {100, 400},
         .portCounts = {32, 64},
         .p4 = true,
         .p4Stages = 20,
         .qcn = true,
         .intTelemetry = true,
         .memoryGb = 16},
        {.name = "NVIDIA Spectrum-2",
         .vendor = "NVIDIA",
         .speedsGbps = {25, 100},
         .portCounts = {16, 32},
         .qcn = true},
        {.name = "NVIDIA Spectrum-3",
         .vendor = "NVIDIA",
         .speedsGbps = {100, 200, 400},
         .portCounts = {32, 64},
         .qcn = true,
         .intTelemetry = true,
         .memoryGb = 16},
        {.name = "Juniper QFX5120",
         .vendor = "Juniper",
         .speedsGbps = {10, 25, 100},
         .portCounts = {32, 48}},
        {.name = "Juniper QFX5130",
         .vendor = "Juniper",
         .speedsGbps = {100, 400},
         .portCounts = {32, 64},
         .memoryGb = 16},
        {.name = "Cisco Nexus 9300",
         .vendor = "Cisco",
         .speedsGbps = {10, 25, 100},
         .portCounts = {36, 48}},
        {.name = "Cisco Nexus 9500",
         .vendor = "Cisco",
         .speedsGbps = {100, 400},
         .portCounts = {64, 128},
         .deepBuffers = true,
         .memoryGb = 64},
        // Bare-metal Tofino box popular in research testbeds.
        {.name = "Edgecore Wedge100BF",
         .vendor = "Edgecore",
         .speedsGbps = {100},
         .portCounts = {32},
         .p4 = true,
         .p4Stages = 12,
         .intTelemetry = true},
    };
    for (const SwitchFamily& family : families) addSwitchFamily(kb, family);
}

// ---------------------------------------------------------------------------
// NICs
// ---------------------------------------------------------------------------

struct NicFamily {
    const char* name;
    const char* vendor;
    std::vector<int> speedsGbps;
    bool timestamps = false;
    bool rdma = false;
    bool srIov = true;
    bool interruptPolling = false;
    const char* smartNicKind = "none"; ///< "none" | "fpga" | "cpu"
    int nicCores = 0;                  ///< CPU SmartNIC cores
    int fpgaGatesK = 0;                ///< FPGA SmartNIC logic (thousands)
    int reorderBufferKb = 64;
};

void addNicFamily(kb::KnowledgeBase& kb, const NicFamily& family) {
    for (const int speed : family.speedsGbps) {
        for (const int ports : {1, 2}) {
            HardwareSpec spec;
            spec.model = std::string(family.name) + " " + std::to_string(speed) +
                         "G" + (ports == 2 ? " dual" : "");
            spec.vendor = family.vendor;
            spec.cls = HardwareClass::Nic;
            spec.attrs[kb::kAttrPortBandwidthGbps] =
                static_cast<std::int64_t>(speed);
            spec.attrs[kb::kAttrNumPorts] = static_cast<std::int64_t>(ports);
            spec.attrs[kb::kAttrNicTimestamps] = family.timestamps;
            spec.attrs[kb::kAttrRdmaSupported] = family.rdma;
            spec.attrs[kb::kAttrSrIov] = family.srIov;
            spec.attrs[kb::kAttrInterruptPolling] = family.interruptPolling;
            const bool smart = std::string(family.smartNicKind) != "none";
            spec.attrs[kb::kAttrSmartNic] = smart;
            spec.attrs[kb::kAttrSmartNicKind] = std::string(family.smartNicKind);
            if (family.nicCores > 0)
                spec.attrs[kb::kAttrNicCores] =
                    static_cast<std::int64_t>(family.nicCores);
            if (family.fpgaGatesK > 0)
                spec.attrs[kb::kAttrFpgaGatesK] =
                    static_cast<std::int64_t>(family.fpgaGatesK);
            spec.attrs[kb::kAttrReorderBufferKb] =
                static_cast<std::int64_t>(family.reorderBufferKb);
            spec.maxPowerW =
                12.0 + speed * 0.1 * ports + (smart ? 45.0 : 0.0);
            spec.unitCostUsd = 120.0 + speed * 9.0 * ports +
                               (smart ? 1400.0 : 0.0) +
                               (family.timestamps ? 80.0 : 0.0);
            kb.addHardware(std::move(spec));
        }
    }
}

void addNics(kb::KnowledgeBase& kb) {
    const std::vector<NicFamily> families = {
        {.name = "Mellanox ConnectX-4",
         .vendor = "NVIDIA",
         .speedsGbps = {25, 50, 100},
         .timestamps = true,
         .rdma = true},
        {.name = "Mellanox ConnectX-5",
         .vendor = "NVIDIA",
         .speedsGbps = {25, 50, 100},
         .timestamps = true,
         .rdma = true,
         .interruptPolling = true,
         .reorderBufferKb = 256},
        {.name = "Mellanox ConnectX-6",
         .vendor = "NVIDIA",
         .speedsGbps = {100, 200},
         .timestamps = true,
         .rdma = true,
         .interruptPolling = true,
         .reorderBufferKb = 512},
        {.name = "Mellanox ConnectX-7",
         .vendor = "NVIDIA",
         .speedsGbps = {200, 400},
         .timestamps = true,
         .rdma = true,
         .interruptPolling = true,
         .reorderBufferKb = 1024},
        {.name = "Intel X520", .vendor = "Intel", .speedsGbps = {10},
         .srIov = true},
        {.name = "Intel X710", .vendor = "Intel", .speedsGbps = {10, 25}},
        {.name = "Intel E810",
         .vendor = "Intel",
         .speedsGbps = {25, 100},
         .timestamps = true,
         .rdma = true,
         .interruptPolling = true,
         .reorderBufferKb = 256},
        {.name = "Broadcom N225",
         .vendor = "Broadcom",
         .speedsGbps = {25, 50},
         .timestamps = true,
         .rdma = true},
        {.name = "Chelsio T6",
         .vendor = "Chelsio",
         .speedsGbps = {25, 100},
         .timestamps = true,
         .rdma = true,
         .reorderBufferKb = 256},
        {.name = "NVIDIA BlueField-2",
         .vendor = "NVIDIA",
         .speedsGbps = {25, 100},
         .timestamps = true,
         .rdma = true,
         .interruptPolling = true,
         .smartNicKind = "cpu",
         .nicCores = 8,
         .reorderBufferKb = 512},
        {.name = "NVIDIA BlueField-3",
         .vendor = "NVIDIA",
         .speedsGbps = {200, 400},
         .timestamps = true,
         .rdma = true,
         .interruptPolling = true,
         .smartNicKind = "cpu",
         .nicCores = 16,
         .reorderBufferKb = 1024},
        {.name = "Pensando DSC",
         .vendor = "AMD",
         .speedsGbps = {25, 100},
         .timestamps = true,
         .rdma = true,
         .smartNicKind = "cpu",
         .nicCores = 8,
         .reorderBufferKb = 512},
        {.name = "Xilinx Alveo U25",
         .vendor = "AMD",
         .speedsGbps = {25},
         .timestamps = true,
         .smartNicKind = "fpga",
         .fpgaGatesK = 300,
         .reorderBufferKb = 512},
        {.name = "Xilinx Alveo U50",
         .vendor = "AMD",
         .speedsGbps = {100},
         .timestamps = true,
         .smartNicKind = "fpga",
         .fpgaGatesK = 600,
         .reorderBufferKb = 512},
        {.name = "Xilinx Alveo U280",
         .vendor = "AMD",
         .speedsGbps = {100},
         .timestamps = true,
         .smartNicKind = "fpga",
         .fpgaGatesK = 900,
         .reorderBufferKb = 1024},
        {.name = "Broadcom Stingray PS225",
         .vendor = "Broadcom",
         .speedsGbps = {25},
         .timestamps = true,
         .rdma = true,
         .smartNicKind = "cpu",
         .nicCores = 8},
        {.name = "Napatech NT200",
         .vendor = "Napatech",
         .speedsGbps = {100},
         .timestamps = true,
         .smartNicKind = "fpga",
         .fpgaGatesK = 500,
         .reorderBufferKb = 2048},
        {.name = "Fungible FC",
         .vendor = "Fungible",
         .speedsGbps = {100, 200},
         .timestamps = true,
         .rdma = true,
         .smartNicKind = "cpu",
         .nicCores = 12},
        {.name = "OEM Legacy 1G", .vendor = "OEM", .speedsGbps = {1},
         .srIov = false},
        {.name = "Solarflare X2522",
         .vendor = "AMD",
         .speedsGbps = {10, 25},
         .timestamps = true,
         .interruptPolling = true,
         .reorderBufferKb = 128},
        {.name = "Marvell OcteonTX2",
         .vendor = "Marvell",
         .speedsGbps = {25, 100},
         .timestamps = true,
         .rdma = true,
         .smartNicKind = "cpu",
         .nicCores = 24},
        {.name = "Intel IPU E2000",
         .vendor = "Intel",
         .speedsGbps = {200},
         .timestamps = true,
         .rdma = true,
         .smartNicKind = "cpu",
         .nicCores = 16,
         .reorderBufferKb = 1024},
        {.name = "AWS Nitro-like DPU",
         .vendor = "Annapurna",
         .speedsGbps = {25, 100},
         .timestamps = true,
         .smartNicKind = "cpu",
         .nicCores = 8},
        {.name = "Intel E823",
         .vendor = "Intel",
         .speedsGbps = {25},
         .timestamps = true,
         .rdma = true},
    };
    for (const NicFamily& family : families) addNicFamily(kb, family);
}

// ---------------------------------------------------------------------------
// Servers
// ---------------------------------------------------------------------------

struct ServerPlatform {
    const char* name;
    const char* vendor;
    std::vector<int> coreCounts;
    bool cxl = false;
    double costPerCore = 120.0;
};

void addServers(kb::KnowledgeBase& kb) {
    const std::vector<ServerPlatform> platforms = {
        {.name = "Xeon Skylake-SP", .vendor = "Intel", .coreCounts = {16, 20, 28}},
        {.name = "Xeon Cascade Lake",
         .vendor = "Intel",
         .coreCounts = {24, 28, 32}},
        {.name = "Xeon Ice Lake", .vendor = "Intel", .coreCounts = {32, 36, 40}},
        {.name = "Xeon Sapphire Rapids",
         .vendor = "Intel",
         .coreCounts = {32, 48, 56},
         .cxl = true,
         .costPerCore = 150.0},
        {.name = "EPYC Rome", .vendor = "AMD", .coreCounts = {32, 48, 64}},
        {.name = "EPYC Milan", .vendor = "AMD", .coreCounts = {32, 48, 64}},
        {.name = "EPYC Genoa",
         .vendor = "AMD",
         .coreCounts = {64, 84, 96},
         .cxl = true,
         .costPerCore = 140.0},
        {.name = "Ampere Altra", .vendor = "Ampere", .coreCounts = {80, 96, 128}},
    };
    for (const ServerPlatform& platform : platforms) {
        for (const int cores : platform.coreCounts) {
            for (const int formFactor : {1, 2}) { // 1U / 2U (RAM differs)
                HardwareSpec spec;
                spec.model = std::string(platform.name) + " " +
                             std::to_string(cores) + "c " +
                             std::to_string(formFactor) + "U";
                spec.vendor = platform.vendor;
                spec.cls = HardwareClass::Server;
                const double ramGb = formFactor == 1 ? cores * 4.0 : cores * 8.0;
                spec.attrs[kb::kAttrCores] = static_cast<std::int64_t>(cores);
                spec.attrs[kb::kAttrRamGb] = ramGb;
                spec.attrs[kb::kAttrCxlSupported] = platform.cxl;
                spec.attrs[kb::kAttrNumaNodes] =
                    static_cast<std::int64_t>(formFactor);
                spec.maxPowerW = 120.0 + cores * 3.2 + ramGb * 0.25;
                spec.unitCostUsd =
                    1500.0 + cores * platform.costPerCore + ramGb * 8.0;
                kb.addHardware(std::move(spec));
            }
        }
    }
}

} // namespace

void addHardwareCatalog(kb::KnowledgeBase& kb) {
    addSwitches(kb);
    addNics(kb);
    addServers(kb);
}

kb::KnowledgeBase buildKnowledgeBase() {
    kb::KnowledgeBase kb;
    addSystemCatalog(kb);
    addHardwareCatalog(kb);
    return kb;
}

} // namespace lar::catalog
