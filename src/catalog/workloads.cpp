// Workload encodings for the §2.3 case study and the §5.1 queries.
#include "catalog/catalog.hpp"

#include "kb/objectives.hpp"

namespace lar::catalog {

kb::Workload makeInferenceWorkload() {
    // Listing 3, verbatim shape:
    //   inference_app = Workload(
    //     properties = [dc_flows, short_flows, high_priority],
    //     deployed_at = racks[0:3],
    //     peak_cores = 2800, peak_bandwidth = 30)
    //   inference_app.set_performance_bound(
    //     objective = load_balancing, better_than = PacketSpray)
    kb::Workload w;
    w.name = "inference_app";
    w.properties = {kb::kPropDcFlows, kb::kPropShortFlows, kb::kPropHighPriority,
                    kb::kPropLatencySensitive};
    w.racks = {0, 1, 2};
    w.peakCores = 2800;
    w.peakBandwidthGbps = 30.0;
    w.numFlows = 50000;
    w.bounds = {{kb::kObjLoadBalancing, "PacketSpray"}};
    return w;
}

kb::Workload makeVideoWorkload() {
    kb::Workload w;
    w.name = "video_egress";
    w.properties = {kb::kPropWanFlows, kb::kPropLongFlows,
                    kb::kPropThroughputBound, kb::kPropWanDcCompete};
    w.racks = {3, 4};
    w.peakCores = 900;
    w.peakBandwidthGbps = 120.0;
    w.numFlows = 8000;
    return w;
}

kb::Workload makeStorageWorkload() {
    kb::Workload w;
    w.name = "storage_backend";
    w.properties = {kb::kPropDcFlows, kb::kPropLongFlows,
                    kb::kPropMemoryIntensive, kb::kPropIncastHeavy};
    w.racks = {5, 6, 7};
    w.peakCores = 1600;
    w.peakBandwidthGbps = 200.0;
    w.numFlows = 20000;
    return w;
}

kb::Workload makeBatchWorkload() {
    kb::Workload w;
    w.name = "batch_analytics";
    w.properties = {kb::kPropDcFlows, kb::kPropLongFlows,
                    kb::kPropThroughputBound, kb::kPropUnmodifiableApp};
    w.racks = {8, 9};
    w.peakCores = 3200;
    w.peakBandwidthGbps = 320.0;
    w.numFlows = 4000;
    return w;
}

} // namespace lar::catalog
