// System encodings: 56 systems across the seven §5.1 categories, with the
// Figure-1 / Listing-2 orderings. Each encoding is a shallow rule of thumb
// sourced from the cited paper or deployment experience — no behavioural
// modelling, per §3.2.
#include "catalog/catalog.hpp"

#include "kb/objectives.hpp"

namespace lar::catalog {

using kb::Category;
using kb::CmpOp;
using kb::HardwareClass;
using kb::Ordering;
using kb::Requirement;
using kb::System;

namespace {

Requirement nicHas(const char* key) {
    return Requirement::hardwareHas(HardwareClass::Nic, key);
}
Requirement switchHas(const char* key) {
    return Requirement::hardwareHas(HardwareClass::Switch, key);
}
Requirement nicBwAtLeast(double gbps) {
    return Requirement::hardwareCmp(HardwareClass::Nic, kb::kAttrPortBandwidthGbps,
                                    CmpOp::Ge, gbps);
}
Requirement nicBwBelow(double gbps) {
    return Requirement::hardwareCmp(HardwareClass::Nic, kb::kAttrPortBandwidthGbps,
                                    CmpOp::Lt, gbps);
}

void addNetworkStacks(kb::KnowledgeBase& kb) {
    {
        System s;
        s.name = "Linux";
        s.category = Category::NetworkStack;
        s.solves = {"transport"};
        s.source = "kernel.org; Snap/Shenango baselines";
        kb.addSystem(std::move(s));
    }
    {
        System s;
        s.name = "Snap";
        s.category = Category::NetworkStack;
        s.solves = {"transport", kb::kObjThroughput};
        s.provides = {kFactKernelBypass};
        // Snap runs its engines on dedicated spinning cores.
        s.demands = {{kb::kResCores, 4.0, 0.0, 0.05}};
        s.source = "Marty et al., SOSP '19";
        kb.addSystem(std::move(s));
    }
    {
        System s;
        s.name = "NetChannel";
        s.category = Category::NetworkStack;
        s.solves = {"transport", kb::kObjThroughput};
        // Only relevant at NIC speeds above 40 Gbit/s (§2.3).
        s.constraints = nicBwAtLeast(40.0);
        s.demands = {{kb::kResCores, 2.0, 0.0, 0.1}};
        s.source = "Cai et al., SIGCOMM '22";
        kb.addSystem(std::move(s));
    }
    {
        System s;
        s.name = "Shenango";
        s.category = Category::NetworkStack;
        s.solves = {"transport", kb::kObjLatency};
        s.provides = {kFactKernelBypass};
        // Requires NICs that support interrupt polling (§4.2's example of a
        // requirement a human-written encoding missed) and dedicates a core
        // to the IOKernel spin loop.
        s.constraints = Requirement::allOf(
            {nicHas(kb::kAttrInterruptPolling), nicHas(kb::kAttrSrIov)});
        s.demands = {{kb::kResCores, 1.0, 0.0, 0.0}};
        s.researchGrade = true;
        s.source = "Ousterhout et al., NSDI '19";
        kb.addSystem(std::move(s));
    }
    {
        System s;
        s.name = "Demikernel";
        s.category = Category::NetworkStack;
        s.solves = {"transport", kb::kObjLatency};
        s.provides = {kFactKernelBypass};
        s.constraints = nicHas(kb::kAttrSrIov);
        s.researchGrade = true;
        s.source = "Zhang et al., SOSP '21";
        kb.addSystem(std::move(s));
    }
    {
        System s;
        s.name = "ZygOS";
        s.category = Category::NetworkStack;
        s.solves = {"transport", kb::kObjLatency};
        s.provides = {kFactKernelBypass};
        s.constraints = nicHas(kb::kAttrSrIov);
        s.demands = {{kb::kResCores, 1.0, 0.0, 0.0}};
        s.researchGrade = true;
        s.source = "Prekas et al., SOSP '17";
        kb.addSystem(std::move(s));
    }
    {
        System s;
        s.name = "mTCP";
        s.category = Category::NetworkStack;
        s.solves = {"transport"};
        s.provides = {kFactKernelBypass};
        s.constraints = nicHas(kb::kAttrSrIov);
        s.researchGrade = true;
        s.source = "Jeong et al., NSDI '14";
        kb.addSystem(std::move(s));
    }
    {
        System s;
        s.name = "F-Stack";
        s.category = Category::NetworkStack;
        s.solves = {"transport"};
        s.provides = {kFactKernelBypass};
        s.constraints = nicHas(kb::kAttrSrIov);
        s.demands = {{kb::kResCores, 2.0, 0.0, 0.0}};
        s.source = "f-stack.org (DPDK)";
        kb.addSystem(std::move(s));
    }

    // --- Figure 1: conditional partial order over the six stacks ------------
    const Requirement pony = Requirement::option(kOptPonyEnabled);

    // Throughput (yellow).
    kb.addOrdering({"Snap", "Linux", kb::kObjThroughput, pony,
                    "Snap paper: Pony Express beats kernel TCP"});
    kb.addOrdering({"NetChannel", "Snap", kb::kObjThroughput, nicBwAtLeast(40.0),
                    "NetChannel: terabit-era host stack"});
    kb.addOrdering({"NetChannel", "Linux", kb::kObjThroughput, nicBwAtLeast(40.0),
                    "NetChannel relevant above 40 Gbps"});
    kb.addOrdering({"Linux", "NetChannel", kb::kObjThroughput, nicBwBelow(40.0),
                    "Linux sufficiently performant at low link rates (<40G)"});
    kb.addOrdering({"ZygOS", "Linux", kb::kObjThroughput,
                    Requirement::alwaysTrue(), "ZygOS: kernel bypass dataplane"});
    kb.addOrdering({"Demikernel", "Linux", kb::kObjThroughput,
                    Requirement::alwaysTrue(), "Demikernel: kernel bypass"});

    // Latency.
    kb.addOrdering({"Shenango", "Linux", kb::kObjLatency, Requirement::alwaysTrue(),
                    "Shenango: microsecond tails"});
    kb.addOrdering({"Shenango", "Snap", kb::kObjLatency, Requirement::alwaysTrue(),
                    "Shenango: lower latency than Snap at low loads"});
    kb.addOrdering({"Demikernel", "Linux", kb::kObjLatency,
                    Requirement::alwaysTrue(), "Demikernel: µs-scale I/O"});
    kb.addOrdering({"ZygOS", "Linux", kb::kObjLatency, Requirement::alwaysTrue(),
                    "ZygOS: work stealing keeps tails low"});
    kb.addOrdering({"Snap", "Linux", kb::kObjLatency, Requirement::alwaysTrue(),
                    "Snap: dedicated engines beat kernel path"});

    // Isolation (red). NOTE: deliberately no Shenango↔Demikernel edge — the
    // paper calls this pair out as a knowledge gap (§3.1).
    kb.addOrdering({"Snap", "Shenango", kb::kObjIsolation,
                    Requirement::alwaysTrue(),
                    "Snap: centralized engines isolate tenants; Shenango offers "
                    "less process isolation"});
    kb.addOrdering({"Linux", "Shenango", kb::kObjIsolation,
                    Requirement::alwaysTrue(), "kernel enforces isolation"});
    kb.addOrdering({"NetChannel", "Shenango", kb::kObjIsolation,
                    Requirement::alwaysTrue(),
                    "NetChannel: isolation via disaggregated channels"});
    kb.addOrdering({"Linux", "ZygOS", kb::kObjIsolation, Requirement::alwaysTrue(),
                    "ZygOS dataplane shares address space"});

    // Application modification (blue): higher = fewer app changes needed.
    kb.addOrdering({"Linux", "Snap", kb::kObjAppModification, pony,
                    "using Pony requires application modification"});
    kb.addOrdering({"Linux", "Demikernel", kb::kObjAppModification,
                    Requirement::alwaysTrue(),
                    "Demikernel: new libOS API, apps must port"});
    kb.addOrdering({"Linux", "Shenango", kb::kObjAppModification,
                    Requirement::alwaysTrue(),
                    "Shenango runtime requires app integration"});
    kb.addOrdering({"ZygOS", "Demikernel", kb::kObjAppModification,
                    Requirement::alwaysTrue(),
                    "ZygOS runs unmodified epoll servers"});

    // Deployment ease.
    for (const char* stack :
         {"Snap", "NetChannel", "Shenango", "Demikernel", "ZygOS", "mTCP",
          "F-Stack"}) {
        kb.addOrdering({"Linux", stack, kb::kObjDeploymentEase,
                        Requirement::alwaysTrue(),
                        "default stack: nothing new to operate"});
    }
}

void addCongestionControl(kb::KnowledgeBase& kb) {
    {
        System s;
        s.name = "Cubic";
        s.category = Category::CongestionControl;
        s.solves = {kCapBandwidthAllocation};
        s.source = "Ha et al., SIGOPS '08 (Linux default)";
        kb.addSystem(std::move(s));
    }
    {
        System s;
        s.name = "DCTCP";
        s.category = Category::CongestionControl;
        s.solves = {kCapBandwidthAllocation, kb::kObjLatency};
        s.constraints = switchHas(kb::kAttrEcnSupported);
        s.source = "Alizadeh et al., SIGCOMM '10";
        kb.addSystem(std::move(s));
    }
    {
        System s;
        s.name = "HPCC";
        s.category = Category::CongestionControl;
        s.solves = {kCapBandwidthAllocation, kb::kObjLatency};
        // HPCC needs INT-enabled switches (§3.1).
        s.constraints = switchHas(kb::kAttrIntSupported);
        s.source = "Li et al., SIGCOMM '19";
        kb.addSystem(std::move(s));
    }
    {
        System s;
        s.name = "Timely";
        s.category = Category::CongestionControl;
        s.solves = {kCapBandwidthAllocation, kb::kObjLatency};
        // Depends on NIC timestamps (§3.1).
        s.constraints = nicHas(kb::kAttrNicTimestamps);
        s.source = "Mittal et al., SIGCOMM '15";
        kb.addSystem(std::move(s));
    }
    {
        System s;
        s.name = "Swift";
        s.category = Category::CongestionControl;
        s.solves = {kCapBandwidthAllocation, kb::kObjLatency};
        // NIC timestamps + a dedicated QoS level for ACKs (§3.1).
        s.constraints = nicHas(kb::kAttrNicTimestamps);
        s.demands = {{kb::kResQosClasses, 1.0, 0.0, 0.0}};
        s.source = "Kumar et al., SIGCOMM '20";
        kb.addSystem(std::move(s));
    }
    {
        System s;
        s.name = "Vegas";
        s.category = Category::CongestionControl;
        s.solves = {kCapBandwidthAllocation};
        // Delay-based CC cannot compete with buffer-filling flows unless run
        // as a scavenger class, and queues must be deep enough (§2.2).
        s.constraints = Requirement::allOf(
            {Requirement::option(kOptScavengerClass),
             switchHas(kb::kAttrDeepBuffers)});
        s.demands = {{kb::kResQosClasses, 1.0, 0.0, 0.0}};
        s.source = "Brakmo et al., SIGCOMM '94; RFC 6297 scavenger guidance";
        kb.addSystem(std::move(s));
    }
    {
        System s;
        s.name = "Annulus";
        s.category = Category::CongestionControl;
        s.solves = {kCapBandwidthAllocation, kb::kObjTailLatency};
        // Only applicable when WAN and DC traffic compete (§4.1's missed
        // nuance) and switches must emit QCN notifications (§2.3).
        s.constraints = Requirement::allOf(
            {Requirement::workloadHas(kb::kPropWanDcCompete),
             switchHas(kb::kAttrQcnSupported)});
        s.source = "Saeed et al., SIGCOMM '20";
        kb.addSystem(std::move(s));
    }
    {
        System s;
        s.name = "BFC";
        s.category = Category::CongestionControl;
        s.solves = {kCapBandwidthAllocation, kb::kObjLatency};
        // Backpressure flow control needs programmable switches with state.
        s.constraints = switchHas(kb::kAttrP4Supported);
        s.demands = {{kb::kResP4Stages, 3.0, 0.0, 0.0}};
        s.researchGrade = true;
        s.source = "Goyal et al., NSDI '22";
        kb.addSystem(std::move(s));
    }
    {
        System s;
        s.name = "BBR";
        s.category = Category::CongestionControl;
        s.solves = {kCapBandwidthAllocation, kb::kObjThroughput};
        s.source = "Cardwell et al., ACM Queue '16";
        kb.addSystem(std::move(s));
    }
    {
        System s;
        s.name = "PCC";
        s.category = Category::CongestionControl;
        s.solves = {kCapBandwidthAllocation};
        s.researchGrade = true;
        s.source = "Dong et al., NSDI '15";
        kb.addSystem(std::move(s));
    }
    {
        System s;
        s.name = "Fastpass";
        s.category = Category::CongestionControl;
        s.solves = {kCapBandwidthAllocation, kb::kObjLatency};
        // Centralized arbiter burns cores proportional to flow arrival rate.
        s.demands = {{kb::kResCores, 8.0, 0.5, 0.0}};
        s.researchGrade = true;
        s.source = "Perry et al., SIGCOMM '14";
        kb.addSystem(std::move(s));
    }
    {
        System s;
        s.name = "BwE";
        s.category = Category::CongestionControl;
        s.solves = {kCapBandwidthAllocation};
        // Hierarchical WAN allocator; pointless without WAN traffic.
        s.constraints = Requirement::workloadHas(kb::kPropWanFlows);
        s.demands = {{kb::kResCores, 16.0, 0.0, 0.0}};
        s.source = "Kumar et al., SIGCOMM '15";
        kb.addSystem(std::move(s));
    }

    // Orderings: datacenter latency rules of thumb.
    const Requirement dc = Requirement::workloadHas(kb::kPropDcFlows);
    kb.addOrdering({"DCTCP", "Cubic", kb::kObjLatency, dc,
                    "ECN marking keeps queues short in the DC"});
    kb.addOrdering({"Timely", "Cubic", kb::kObjLatency, dc,
                    "RTT gradients beat loss-based CC on tails"});
    kb.addOrdering({"Swift", "Timely", kb::kObjLatency, dc,
                    "Swift supersedes Timely at Google"});
    kb.addOrdering({"HPCC", "DCTCP", kb::kObjLatency, dc,
                    "INT gives precise congestion info"});
    // The canonical subjective debate (§3.1 cites "ECN vs delay in
    // datacenter CCAs"): encode one direction, carry the dissent.
    kb.addOrdering({"DCTCP", "Timely", kb::kObjLatency, dc,
                    "ECN marking scales with hops; RTT noise hurts Timely",
                    {"Zhu et al., CoNEXT '16 (ECN or Delay): delay-based can "
                     "match ECN with careful gain tuning",
                     "Swift (SIGCOMM '20): delay is simple and effective"}});
    kb.addOrdering({"BFC", "HPCC", kb::kObjLatency,
                    Requirement::workloadHas(kb::kPropIncastHeavy),
                    "per-hop backpressure wins under incast"});
    kb.addOrdering({"Annulus", "Swift", kb::kObjTailLatency,
                    Requirement::workloadHas(kb::kPropWanDcCompete),
                    "Annulus improves tails when WAN and DC traffic share"});
    kb.addOrdering({"BBR", "Cubic", kb::kObjThroughput,
                    Requirement::workloadHas(kb::kPropWanFlows),
                    "model-based probing on WAN paths"});
    kb.addOrdering({"Cubic", "Vegas", kb::kObjThroughput,
                    Requirement::alwaysTrue(),
                    "delay-based flows lose to buffer-filling ones"});
    kb.addOrdering({"Cubic", "PCC", kb::kObjDeploymentEase,
                    Requirement::alwaysTrue(), "kernel default vs research CC"});
    kb.addOrdering({"DCTCP", "Fastpass", kb::kObjDeploymentEase,
                    Requirement::alwaysTrue(),
                    "decentralized CC needs no arbiter fleet"});
}

void addMonitoring(kb::KnowledgeBase& kb) {
    {
        // Listing 2, verbatim shape.
        System s;
        s.name = "SIMON";
        s.category = Category::Monitoring;
        s.solves = {kCapCaptureDelays, kCapDetectQueueLength, kb::kObjMonitoring};
        s.constraints = Requirement::allOf(
            {nicHas(kb::kAttrNicTimestamps), nicHas(kb::kAttrSmartNic)});
        // computes.cores_needed(CPU_FACTOR * num_flows)
        s.demands = {{kb::kResCores, 2.0, 0.04, 0.0},
                     {kb::kResSmartNicCores, 2.0, 0.0, 0.0}};
        s.source = "Geng et al., NSDI '19 (Listing 2)";
        kb.addSystem(std::move(s));
    }
    {
        System s;
        s.name = "Sonata";
        s.category = Category::Monitoring;
        s.solves = {kCapTelemetryQueries, kCapDetectQueueLength,
                    kb::kObjMonitoring};
        s.constraints = switchHas(kb::kAttrP4Supported);
        // Query pipelines consume stages (the §4.2 wrong-number example).
        s.demands = {{kb::kResP4Stages, 8.0, 0.0, 0.0},
                     {kb::kResCores, 4.0, 0.0, 0.2}};
        s.source = "Gupta et al., SIGCOMM '18";
        kb.addSystem(std::move(s));
    }
    {
        System s;
        s.name = "Marple";
        s.category = Category::Monitoring;
        s.solves = {kCapTelemetryQueries, kCapCaptureDelays, kb::kObjMonitoring};
        s.constraints = Requirement::allOf(
            {switchHas(kb::kAttrP4Supported),
             Requirement::hardwareCmp(HardwareClass::Switch, kb::kAttrP4Stages,
                                      CmpOp::Ge, 6.0)});
        s.demands = {{kb::kResP4Stages, 6.0, 0.0, 0.0}};
        s.researchGrade = true;
        s.source = "Narayana et al., SIGCOMM '17";
        kb.addSystem(std::move(s));
    }
    {
        System s;
        s.name = "PingMesh";
        s.category = Category::Monitoring;
        s.solves = {kCapCaptureDelays, kb::kObjMonitoring};
        s.demands = {{kb::kResCores, 1.0, 0.0, 0.0}};
        s.source = "Guo et al., SIGCOMM '15";
        kb.addSystem(std::move(s));
    }
    {
        System s;
        s.name = "sFlow";
        s.category = Category::Monitoring;
        s.solves = {kb::kObjMonitoring};
        s.source = "RFC 3176";
        kb.addSystem(std::move(s));
    }
    {
        System s;
        s.name = "NetFlow";
        s.category = Category::Monitoring;
        s.solves = {kb::kObjMonitoring};
        s.demands = {{kb::kResSwitchMemoryGb, 1.0, 0.0, 0.0}};
        s.source = "RFC 3954";
        kb.addSystem(std::move(s));
    }
    {
        System s;
        s.name = "INT-Telemetry";
        s.category = Category::Monitoring;
        s.solves = {kCapDetectQueueLength, kCapCaptureDelays, kb::kObjMonitoring};
        s.constraints = switchHas(kb::kAttrIntSupported);
        s.demands = {{kb::kResP4Stages, 2.0, 0.0, 0.0}};
        s.source = "P4.org INT spec";
        kb.addSystem(std::move(s));
    }
    {
        System s;
        s.name = "Everflow";
        s.category = Category::Monitoring;
        s.solves = {kCapCaptureDelays, kb::kObjMonitoring};
        s.demands = {{kb::kResSwitchMemoryGb, 2.0, 0.0, 0.0},
                     {kb::kResCores, 8.0, 0.0, 0.5}};
        s.source = "Zhu et al., SIGCOMM '15";
        kb.addSystem(std::move(s));
    }

    // Listing 2 lines 7–8, verbatim.
    kb.addOrdering({"SIMON", "PingMesh", kb::kObjMonitoring,
                    Requirement::alwaysTrue(),
                    "Ordering(SIMON, monitoring, better_than = PINGMESH)"});
    kb.addOrdering({"PingMesh", "SIMON", kb::kObjDeploymentEase,
                    Requirement::alwaysTrue(),
                    "Ordering(PINGMESH, deployment_ease, better_than = SIMON)"});
    kb.addOrdering({"Sonata", "NetFlow", kb::kObjMonitoring,
                    Requirement::alwaysTrue(), "query-driven beats fixed flow "
                                               "records"});
    kb.addOrdering({"Marple", "sFlow", kb::kObjMonitoring,
                    Requirement::alwaysTrue(),
                    "line-rate per-packet queries vs sampling"});
    kb.addOrdering({"INT-Telemetry", "sFlow", kb::kObjMonitoring,
                    Requirement::alwaysTrue(), "per-hop truth vs samples"});
    kb.addOrdering({"SIMON", "sFlow", kb::kObjMonitoring,
                    Requirement::alwaysTrue(),
                    "reconstructs queues; sampling cannot"});
    kb.addOrdering({"sFlow", "Everflow", kb::kObjDeploymentEase,
                    Requirement::alwaysTrue(), "sampling is cheap to run"});
    kb.addOrdering({"PingMesh", "Sonata", kb::kObjDeploymentEase,
                    Requirement::alwaysTrue(), "no programmable switches needed"});
}

void addFirewalls(kb::KnowledgeBase& kb) {
    {
        System s;
        s.name = "iptables";
        s.category = Category::Firewall;
        s.solves = {kCapFirewalling, kb::kObjSecurity};
        s.constraints = Requirement::systemPresent("Linux");
        s.source = "netfilter.org";
        kb.addSystem(std::move(s));
    }
    {
        System s;
        s.name = "eBPF-Firewall";
        s.category = Category::Firewall;
        s.solves = {kCapFirewalling, kb::kObjSecurity};
        s.constraints = Requirement::systemPresent("Linux");
        s.demands = {{kb::kResCores, 1.0, 0.0, 0.1}};
        s.source = "Cilium/XDP deployment reports";
        kb.addSystem(std::move(s));
    }
    {
        System s;
        s.name = "SmartNIC-Firewall";
        s.category = Category::Firewall;
        s.solves = {kCapFirewalling, kb::kObjSecurity};
        s.constraints = nicHas(kb::kAttrSmartNic);
        s.demands = {{kb::kResSmartNicCores, 4.0, 0.0, 0.0}};
        s.source = "AccelNet-style offload practice";
        kb.addSystem(std::move(s));
    }
    {
        System s;
        s.name = "FPGA-Firewall";
        s.category = Category::Firewall;
        s.solves = {kCapFirewalling, kb::kObjSecurity};
        s.constraints = Requirement::hardwareCmp(
            HardwareClass::Nic, kb::kAttrFpgaGatesK, CmpOp::Ge, 200.0);
        s.demands = {{kb::kResFpgaGatesK, 200.0, 0.0, 0.0}};
        s.source = "FPGA NIC vendor app notes";
        kb.addSystem(std::move(s));
    }
    {
        System s;
        s.name = "P4-Firewall";
        s.category = Category::Firewall;
        s.solves = {kCapFirewalling, kb::kObjSecurity};
        s.constraints = switchHas(kb::kAttrP4Supported);
        s.demands = {{kb::kResP4Stages, 4.0, 0.0, 0.0}};
        s.source = "switch.p4 reference pipeline";
        kb.addSystem(std::move(s));
    }
    {
        System s;
        s.name = "Edge-Appliance-FW";
        s.category = Category::Firewall;
        s.solves = {kCapFirewalling, kb::kObjSecurity};
        s.source = "commercial appliance datasheets";
        kb.addSystem(std::move(s));
    }

    kb.addOrdering({"eBPF-Firewall", "iptables", kb::kObjThroughput,
                    Requirement::alwaysTrue(), "XDP bypasses netfilter chains"});
    kb.addOrdering({"SmartNIC-Firewall", "eBPF-Firewall", kb::kObjThroughput,
                    Requirement::alwaysTrue(), "offload frees host cores"});
    kb.addOrdering({"iptables", "SmartNIC-Firewall", kb::kObjDeploymentEase,
                    Requirement::alwaysTrue(), "no special hardware"});
    kb.addOrdering({"iptables", "FPGA-Firewall", kb::kObjDeploymentEase,
                    Requirement::alwaysTrue(), "no special hardware"});
}

void addVirtualSwitches(kb::KnowledgeBase& kb) {
    {
        System s;
        s.name = "OVS";
        s.category = Category::VirtualSwitch;
        s.solves = {kCapVirtualization};
        s.demands = {{kb::kResCores, 1.0, 0.0, 0.15}};
        s.source = "Pfaff et al., NSDI '15";
        kb.addSystem(std::move(s));
    }
    {
        System s;
        s.name = "OVS-DPDK";
        s.category = Category::VirtualSwitch;
        s.solves = {kCapVirtualization, kb::kObjThroughput};
        s.provides = {kFactKernelBypass};
        s.demands = {{kb::kResCores, 4.0, 0.0, 0.1}};
        s.source = "OVS-DPDK deployment guides";
        kb.addSystem(std::move(s));
    }
    {
        System s;
        s.name = "Andromeda";
        s.category = Category::VirtualSwitch;
        s.solves = {kCapVirtualization, kb::kObjThroughput};
        s.demands = {{kb::kResCores, 6.0, 0.0, 0.2}};
        s.source = "Dalton et al., NSDI '18";
        kb.addSystem(std::move(s));
    }
    {
        System s;
        s.name = "VFP";
        s.category = Category::VirtualSwitch;
        s.solves = {kCapVirtualization};
        s.demands = {{kb::kResCores, 4.0, 0.0, 0.2}};
        s.source = "Firestone, NSDI '17";
        kb.addSystem(std::move(s));
    }
    {
        System s;
        s.name = "AccelNet-Offload";
        s.category = Category::VirtualSwitch;
        s.solves = {kCapVirtualization, kb::kObjThroughput, kb::kObjLatency};
        s.constraints = Requirement::hardwareCmp(
            HardwareClass::Nic, kb::kAttrFpgaGatesK, CmpOp::Ge, 400.0);
        s.demands = {{kb::kResFpgaGatesK, 400.0, 0.0, 0.0}};
        s.source = "Firestone et al., NSDI '18 (§2.3 hardware-offloaded "
                   "virtualization)";
        kb.addSystem(std::move(s));
    }
    {
        System s;
        s.name = "SR-IOV-Passthrough";
        s.category = Category::VirtualSwitch;
        s.solves = {kCapVirtualization, kb::kObjLatency};
        s.constraints = nicHas(kb::kAttrSrIov);
        s.source = "vendor SR-IOV guides (no live migration)";
        kb.addSystem(std::move(s));
    }
    {
        System s;
        s.name = "Linux-Bridge";
        s.category = Category::VirtualSwitch;
        s.solves = {kCapVirtualization};
        // Learning bridge floods unknown unicast — the fact that broke PFC
        // in the Microsoft deployment (§2.2).
        s.provides = {kFactFlooding};
        s.constraints = Requirement::systemPresent("Linux");
        s.source = "kernel bridge docs";
        kb.addSystem(std::move(s));
    }

    kb.addOrdering({"AccelNet-Offload", "Andromeda", kb::kObjLatency,
                    Requirement::alwaysTrue(), "FPGA datapath removes host hop"});
    kb.addOrdering({"Andromeda", "OVS", kb::kObjThroughput,
                    Requirement::alwaysTrue(), "busy-polling fastpath"});
    kb.addOrdering({"OVS-DPDK", "OVS", kb::kObjThroughput,
                    Requirement::alwaysTrue(), "userspace datapath"});
    kb.addOrdering({"OVS", "AccelNet-Offload", kb::kObjDeploymentEase,
                    Requirement::alwaysTrue(), "software-only"});
    kb.addOrdering({"OVS", "Linux-Bridge", kb::kObjMonitoring,
                    Requirement::alwaysTrue(), "flow-level visibility"});
}

void addLoadBalancers(kb::KnowledgeBase& kb) {
    {
        System s;
        s.name = "ECMP";
        s.category = Category::LoadBalancer;
        s.solves = {kb::kObjLoadBalancing};
        s.source = "RFC 2992";
        kb.addSystem(std::move(s));
    }
    {
        System s;
        s.name = "WCMP";
        s.category = Category::LoadBalancer;
        s.solves = {kb::kObjLoadBalancing};
        s.source = "Zhou et al., EuroSys '14";
        kb.addSystem(std::move(s));
    }
    {
        System s;
        s.name = "VLB";
        s.category = Category::LoadBalancer;
        s.solves = {kb::kObjLoadBalancing};
        s.source = "Valiant load balancing literature";
        kb.addSystem(std::move(s));
    }
    {
        System s;
        s.name = "PacketSpray";
        s.category = Category::LoadBalancer;
        s.solves = {kb::kObjLoadBalancing};
        // Packet spraying requires larger reorder buffers at NICs (§2.3).
        s.constraints = Requirement::hardwareCmp(
            HardwareClass::Nic, kb::kAttrReorderBufferKb, CmpOp::Ge, 256.0);
        s.source = "Dixit et al. packet spraying study";
        kb.addSystem(std::move(s));
    }
    {
        System s;
        s.name = "LetFlow";
        s.category = Category::LoadBalancer;
        s.solves = {kb::kObjLoadBalancing};
        s.constraints = switchHas(kb::kAttrP4Supported);
        s.demands = {{kb::kResP4Stages, 1.0, 0.0, 0.0}};
        s.source = "Vanini et al., NSDI '17";
        kb.addSystem(std::move(s));
    }
    {
        System s;
        s.name = "CONGA";
        s.category = Category::LoadBalancer;
        s.solves = {kb::kObjLoadBalancing, kb::kObjLatency};
        s.constraints = switchHas(kb::kAttrP4Supported);
        s.demands = {{kb::kResP4Stages, 4.0, 0.0, 0.0}};
        s.source = "Alizadeh et al., SIGCOMM '14";
        kb.addSystem(std::move(s));
    }
    {
        System s;
        s.name = "Hedera";
        s.category = Category::LoadBalancer;
        s.solves = {kb::kObjLoadBalancing};
        s.demands = {{kb::kResCores, 4.0, 0.0, 0.0}};
        s.researchGrade = true;
        s.source = "Al-Fares et al., NSDI '10";
        kb.addSystem(std::move(s));
    }
    {
        System s;
        s.name = "Maglev";
        s.category = Category::LoadBalancer;
        s.solves = {kb::kObjLoadBalancing};
        s.demands = {{kb::kResCores, 8.0, 0.0, 0.3}};
        s.source = "Eisenbud et al., NSDI '16";
        kb.addSystem(std::move(s));
    }

    const Requirement shortFlows = Requirement::workloadHas(kb::kPropShortFlows);
    kb.addOrdering({"PacketSpray", "ECMP", kb::kObjLoadBalancing, shortFlows,
                    "per-packet spraying removes hash imbalance (§2.3)"});
    kb.addOrdering({"CONGA", "ECMP", kb::kObjLoadBalancing,
                    Requirement::alwaysTrue(), "congestion-aware flowlets"});
    kb.addOrdering({"LetFlow", "ECMP", kb::kObjLoadBalancing,
                    Requirement::alwaysTrue(), "flowlets absorb asymmetry"});
    kb.addOrdering({"CONGA", "PacketSpray", kb::kObjLoadBalancing,
                    Requirement::alwaysTrue(),
                    "congestion-aware flowlets balance without the reordering "
                    "penalty of spraying"});
    kb.addOrdering({"WCMP", "ECMP", kb::kObjLoadBalancing,
                    Requirement::alwaysTrue(), "weights handle asymmetry"});
    kb.addOrdering({"ECMP", "PacketSpray", kb::kObjDeploymentEase,
                    Requirement::alwaysTrue(), "every switch does ECMP"});
    kb.addOrdering({"ECMP", "Hedera", kb::kObjDeploymentEase,
                    Requirement::alwaysTrue(), "no central scheduler"});
}

void addTransports(kb::KnowledgeBase& kb) {
    {
        System s;
        s.name = "TCP";
        s.category = Category::TransportProtocol;
        s.solves = {"transport"};
        s.source = "RFC 9293";
        kb.addSystem(std::move(s));
    }
    {
        System s;
        s.name = "UDP";
        s.category = Category::TransportProtocol;
        s.solves = {"transport"};
        s.source = "RFC 768";
        kb.addSystem(std::move(s));
    }
    {
        System s;
        s.name = "QUIC";
        s.category = Category::TransportProtocol;
        s.solves = {"transport"};
        s.demands = {{kb::kResCores, 0.0, 0.0, 0.5}};
        s.source = "RFC 9000 (userspace crypto cost)";
        kb.addSystem(std::move(s));
    }
    {
        System s;
        s.name = "RoCEv2";
        s.category = Category::TransportProtocol;
        s.solves = {"transport", kb::kObjLatency, kb::kObjThroughput};
        // RDMA over lossy Ethernet needs PFC; PFC deadlocks under cyclic
        // buffer dependencies, so the expert rule forbids coexisting with
        // flooding (§2.2 / §3.4, the Microsoft incident).
        s.constraints = Requirement::allOf(
            {nicHas(kb::kAttrRdmaSupported), switchHas(kb::kAttrPfcSupported),
             Requirement::factAbsent(kFactFlooding)});
        s.provides = {kFactPfcEnabled, kFactLosslessFabric};
        s.source = "Guo et al., SIGCOMM '16 (RDMA at scale)";
        kb.addSystem(std::move(s));
    }
    {
        System s;
        s.name = "iWARP";
        s.category = Category::TransportProtocol;
        s.solves = {"transport", kb::kObjLatency};
        s.constraints = nicHas(kb::kAttrRdmaSupported);
        s.source = "RFC 5040";
        kb.addSystem(std::move(s));
    }
    {
        System s;
        s.name = "Homa";
        s.category = Category::TransportProtocol;
        s.solves = {"transport", kb::kObjLatency};
        // Receiver-driven priorities need several QoS classes.
        s.demands = {{kb::kResQosClasses, 4.0, 0.0, 0.0}};
        s.researchGrade = true;
        s.source = "Montazeri et al., SIGCOMM '18";
        kb.addSystem(std::move(s));
    }
    {
        System s;
        s.name = "NDP";
        s.category = Category::TransportProtocol;
        s.solves = {"transport", kb::kObjLatency};
        s.constraints = switchHas(kb::kAttrP4Supported);
        s.demands = {{kb::kResP4Stages, 2.0, 0.0, 0.0}};
        s.researchGrade = true;
        s.source = "Handley et al., SIGCOMM '17";
        kb.addSystem(std::move(s));
    }

    kb.addOrdering({"RoCEv2", "TCP", kb::kObjLatency, Requirement::alwaysTrue(),
                    "RDMA bypasses the host stack"});
    kb.addOrdering({"RoCEv2", "iWARP", kb::kObjThroughput,
                    Requirement::alwaysTrue(), "no TCP processing on NIC"});
    kb.addOrdering({"Homa", "TCP", kb::kObjLatency,
                    Requirement::workloadHas(kb::kPropShortFlows),
                    "receiver-driven scheduling for short messages"});
    kb.addOrdering({"TCP", "QUIC", kb::kObjThroughput,
                    Requirement::alwaysTrue(), "kernel offloads (GSO/TSO)"});
    kb.addOrdering({"QUIC", "TCP", kb::kObjDeploymentEase,
                    Requirement::workloadHas(kb::kPropWanFlows),
                    "userspace evolution, middlebox-proof"});
    kb.addOrdering({"TCP", "RoCEv2", kb::kObjDeploymentEase,
                    Requirement::alwaysTrue(), "no lossless fabric to operate"});
}

} // namespace

void addSystemCatalog(kb::KnowledgeBase& kb) {
    addNetworkStacks(kb);
    addCongestionControl(kb);
    addMonitoring(kb);
    addFirewalls(kb);
    addVirtualSwitches(kb);
    addLoadBalancers(kb);
    addTransports(kb);
}

} // namespace lar::catalog
