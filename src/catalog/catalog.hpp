// The seed knowledge base — the paper's §5.1 prototype content.
//
// "We encoded over fifty systems, spread across Network Stacks, Congestion
//  Control, Network Monitoring, Firewalls, Virtual Switches, Load Balancers,
//  and Transport Protocols. In addition, we encode about 200 hardware specs
//  of servers, switches, NICs, etc, from publicly available information."
//
// Every encoding here follows that shape: 56 systems with rule-of-thumb
// requirements sourced from the cited papers, 208 hardware specs (including
// the Listing-1 Cisco Catalyst 9500-40X), the Figure-1 network-stack
// orderings, and the §2.3 case-study workloads.
#pragma once

#include "kb/kb.hpp"
#include "kb/workload.hpp"

namespace lar::catalog {

/// Capability names used by `System::solves` in this catalog.
inline constexpr const char* kCapCaptureDelays = "capture_delays";
inline constexpr const char* kCapDetectQueueLength = "detect_queue_length";
inline constexpr const char* kCapTelemetryQueries = "telemetry_queries";
inline constexpr const char* kCapBandwidthAllocation = "bandwidth_allocation";
inline constexpr const char* kCapVirtualization = "virtualization";
inline constexpr const char* kCapFirewalling = "firewalling";

/// Fact names provided/required by catalog systems.
inline constexpr const char* kFactFlooding = "flooding";
inline constexpr const char* kFactKernelBypass = "kernel_bypass";
inline constexpr const char* kFactPfcEnabled = "pfc_enabled";
inline constexpr const char* kFactLosslessFabric = "lossless_fabric";

/// Deployment options referenced by ordering conditions.
inline constexpr const char* kOptPonyEnabled = "pony_enabled";
inline constexpr const char* kOptScavengerClass = "scavenger_class";

/// Adds the 56 system encodings and their orderings.
void addSystemCatalog(kb::KnowledgeBase& kb);

/// Adds the 208 hardware specs (switches, NICs, servers).
void addHardwareCatalog(kb::KnowledgeBase& kb);

/// The full knowledge base (systems + orderings + hardware), validated.
[[nodiscard]] kb::KnowledgeBase buildKnowledgeBase();

/// The §2.3 / Listing-3 ML inference workload: racks 0–3, 2800 peak cores,
/// 30 Gbps peak bandwidth, short high-priority DC flows, and the Listing-3
/// performance bound "load balancing better than PacketSpray".
[[nodiscard]] kb::Workload makeInferenceWorkload();

/// A WAN-facing video workload (exercises Annulus' WAN/DC-competition rule).
[[nodiscard]] kb::Workload makeVideoWorkload();

/// A storage backend workload (memory intensive; exercises the CXL query).
[[nodiscard]] kb::Workload makeStorageWorkload();

/// A batch-analytics workload (throughput bound, long flows).
[[nodiscard]] kb::Workload makeBatchWorkload();

} // namespace lar::catalog
