// Request-scoped trace identity.
//
// Every request entering the serving stack carries a 128-bit trace ID —
// minted here, or accepted from the client's X-Lar-Trace-Id header — that is
// stamped into the QueryTrace, every structured log line emitted while the
// request is live, and the response envelope. One grep over the access log,
// the query log, and a flight-recorder dump joins on this one string, and it
// survives process hops (the planned sharded tier forwards it verbatim).
#pragma once

#include <string>
#include <string_view>

namespace lar::obs {

/// Mints a fresh 128-bit trace ID as 32 lowercase hex characters. IDs are
/// unique across threads and processes with overwhelming probability (each
/// thread runs an independently seeded PRNG mixed from the clock, the
/// OS entropy source, and a process-wide counter).
[[nodiscard]] std::string mintTraceId();

/// Whether a client-supplied trace ID is acceptable to propagate: 8–64
/// characters of [0-9a-zA-Z_.-]. Anything else (too short to be useful, too
/// long, or containing characters that would need escaping in logs/headers)
/// is rejected and the server mints its own.
[[nodiscard]] bool validTraceId(std::string_view id);

} // namespace lar::obs
