// Hierarchical spans: where a query's wall-clock time goes.
//
// A Trace is a per-query collector; installing it on a thread (ScopedTrace)
// makes every RAII Span constructed on that thread a child of the innermost
// open span, so the Service → Engine → compile → backend → solver call chain
// yields a span tree without any plumbing through signatures. Periodic
// observations (solver progress probes) attach to the innermost open span as
// timestamped samples.
//
// Crossing a thread-pool boundary is explicit: capture currentContext() on
// the submitting thread and install it in the task with ScopedContext — the
// task's spans then nest under the submitter's open span. Concurrent tasks
// may share a parent; all structural mutation locks the Trace's mutex (spans
// are coarse — per query phase — so the lock is uncontended in practice).
//
// Without an installed trace (or with obs::setEnabled(false)) spans are
// inert: construction is a thread-local read and a branch.
//
// Export: json::Value (nested, attached to reason::QueryTrace) and Chrome
// trace_event JSON loadable in chrome://tracing or Perfetto
// (chromeTraceDocument). Read accessors (root/toJson/chromeEvents) are meant
// for after the trace's spans have completed.
#pragma once

#include <chrono>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "json/value.hpp"

namespace lar::obs {

/// A timestamped observation attached to a span (e.g. one solver progress
/// probe: conflicts so far, propagations/s, ...).
struct SpanSample {
    double atMs = 0.0; ///< relative to the trace epoch
    std::string name;
    std::vector<std::pair<std::string, double>> values;
};

struct SpanNode {
    std::string name;
    double startMs = 0.0; ///< relative to the trace epoch
    double endMs = 0.0;
    std::vector<std::unique_ptr<SpanNode>> children;
    std::vector<SpanSample> samples;

    [[nodiscard]] double durationMs() const { return endMs - startMs; }
    /// First direct child with this name, or nullptr.
    [[nodiscard]] const SpanNode* child(std::string_view childName) const;
};

/// Default Trace span budget; see Trace::Trace(maxSpans).
inline constexpr std::size_t kDefaultMaxSpansPerTrace = 4096;

/// Collector for one span tree (one per traced query).
class Trace {
public:
    /// `maxSpans` bounds the number of spans the trace retains — a pathological
    /// query (deep retry loops, runaway enumeration) must not grow an
    /// unbounded tree inside the flight recorder. Once the budget is spent
    /// further spans are dropped and truncated() flips; the loss is flagged,
    /// never silent ("spans_truncated" in the QueryTrace JSON).
    explicit Trace(std::size_t maxSpans = kDefaultMaxSpansPerTrace);
    Trace(const Trace&) = delete;
    Trace& operator=(const Trace&) = delete;

    /// The first top-level span, or nullptr when nothing was recorded.
    [[nodiscard]] const SpanNode* root() const;
    /// Whether the span budget was exhausted and spans were dropped.
    [[nodiscard]] bool truncated() const;
    /// Spans recorded so far (excludes dropped ones).
    [[nodiscard]] std::size_t spanCount() const;
    /// Array of top-level span objects:
    /// {name, start_ms, dur_ms, samples: [...], children: [...]}.
    [[nodiscard]] json::Value toJson() const;
    /// Flat Chrome trace_event array for this trace ("X" duration events,
    /// "i" instant events for samples), all on thread id `tid`.
    [[nodiscard]] json::Value chromeEvents(int tid) const;
    /// Trace epoch on the process-wide timeline, in microseconds — traces
    /// from one process merge onto one consistent Chrome timeline.
    [[nodiscard]] double epochUs() const { return epochUs_; }

private:
    friend class Span;
    friend class ScopedTrace;
    friend void sample(std::string,
                       std::initializer_list<std::pair<const char*, double>>);

    [[nodiscard]] double nowMs() const;

    mutable std::mutex mutex_;
    std::chrono::steady_clock::time_point epoch_;
    double epochUs_ = 0.0;
    std::size_t maxSpans_ = kDefaultMaxSpansPerTrace;
    std::size_t spanCount_ = 0; ///< guarded by mutex_
    bool truncated_ = false;    ///< guarded by mutex_
    SpanNode top_; ///< synthetic container; its children are the root spans
};

/// The (trace, innermost open span) pair a thread records into.
struct Context {
    Trace* trace = nullptr;
    SpanNode* span = nullptr;
};

/// This thread's current context (for hand-off across pool boundaries).
[[nodiscard]] Context currentContext();

/// Installs `trace` as this thread's collector for the enclosing scope.
class ScopedTrace {
public:
    explicit ScopedTrace(Trace& trace);
    ~ScopedTrace();
    ScopedTrace(const ScopedTrace&) = delete;
    ScopedTrace& operator=(const ScopedTrace&) = delete;

private:
    Context saved_;
};

/// Re-installs a captured Context (typically inside a thread-pool task, so
/// the task's spans nest under the submitter's open span).
class ScopedContext {
public:
    explicit ScopedContext(const Context& context);
    ~ScopedContext();
    ScopedContext(const ScopedContext&) = delete;
    ScopedContext& operator=(const ScopedContext&) = delete;

private:
    Context saved_;
};

/// RAII span: child of the thread's innermost open span; inert when no
/// trace is installed or instrumentation is disabled.
class Span {
public:
    explicit Span(std::string name);
    ~Span();
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

private:
    Trace* trace_ = nullptr;
    SpanNode* node_ = nullptr;
    Context saved_;
};

/// Attaches a timestamped sample to the innermost open span (no-op without
/// an active trace).
void sample(std::string name,
            std::initializer_list<std::pair<const char*, double>> values);

/// Assembles {"traceEvents": [...], "displayTimeUnit": "ms"} from several
/// traces — one Chrome thread lane per (label, trace) pair, labelled via
/// thread_name metadata events. This is the file `larctl batch --trace-out`
/// writes and chrome://tracing / Perfetto load.
[[nodiscard]] json::Value chromeTraceDocument(
    const std::vector<std::pair<std::string, const Trace*>>& traces);

} // namespace lar::obs
