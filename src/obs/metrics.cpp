#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cctype>
#include <cstdio>

#include "util/error.hpp"

namespace lar::obs {

const std::vector<double>& latencyBucketsMs() {
    static const std::vector<double> bounds = {0.5, 1,   2,   5,    10,  20,
                                               50,  100, 200, 500, 1000, 5000};
    return bounds;
}

namespace {

bool validMetricName(std::string_view name) {
    if (name.empty()) return false;
    const auto head = [](char c) {
        return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
    };
    if (!head(name.front())) return false;
    return std::all_of(name.begin() + 1, name.end(), [&head](char c) {
        return head(c) || std::isdigit(static_cast<unsigned char>(c));
    });
}

bool validLabelName(std::string_view name) {
    return validMetricName(name) && name.find(':') == std::string_view::npos;
}

std::string escapeLabelValue(std::string_view v) {
    std::string out;
    out.reserve(v.size());
    for (const char c : v) {
        if (c == '\\') out += "\\\\";
        else if (c == '"') out += "\\\"";
        else if (c == '\n') out += "\\n";
        else out += c;
    }
    return out;
}

std::string renderLabels(const Labels& labels) {
    std::string out;
    for (const auto& [key, value] : labels) {
        if (!out.empty()) out += ',';
        out += key;
        out += "=\"";
        out += escapeLabelValue(value);
        out += '"';
    }
    return out;
}

std::string formatDouble(double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.10g", v);
    return buf;
}

/// `name{labels}` or `name{labels,extra}` — empty braces are omitted.
std::string seriesLine(std::string_view name, const std::string& labelText,
                       const std::string& extra = {}) {
    std::string out(name);
    std::string inner = labelText;
    if (!extra.empty()) {
        if (!inner.empty()) inner += ',';
        inner += extra;
    }
    if (!inner.empty()) {
        out += '{';
        out += inner;
        out += '}';
    }
    return out;
}

} // namespace

// ---------------------------------------------------------------------------
// Gauge / Histogram
// ---------------------------------------------------------------------------

void Gauge::set(double v) {
    bits_.store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed);
}

void Gauge::add(double delta) {
    if (!enabled()) return;
    std::uint64_t expected = bits_.load(std::memory_order_relaxed);
    while (true) {
        const double next = std::bit_cast<double>(expected) + delta;
        if (bits_.compare_exchange_weak(expected, std::bit_cast<std::uint64_t>(next),
                                        std::memory_order_relaxed))
            return;
    }
}

double Gauge::value() const {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
    std::sort(bounds_.begin(), bounds_.end());
    bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
    expects(!bounds_.empty(), "Histogram: at least one bucket bound required");
    buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
    for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::observe(double v) {
    if (!enabled()) return;
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
    const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
    buckets_[idx].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t expected = sumBits_.load(std::memory_order_relaxed);
    while (true) {
        const double next = std::bit_cast<double>(expected) + v;
        if (sumBits_.compare_exchange_weak(expected,
                                           std::bit_cast<std::uint64_t>(next),
                                           std::memory_order_relaxed))
            return;
    }
}

std::uint64_t Histogram::bucketCount(std::size_t i) const {
    expects(i <= bounds_.size(), "Histogram::bucketCount: bucket out of range");
    return buckets_[i].load(std::memory_order_relaxed);
}

double Histogram::sum() const {
    return std::bit_cast<double>(sumBits_.load(std::memory_order_relaxed));
}

void Histogram::reset() {
    for (std::size_t i = 0; i <= bounds_.size(); ++i)
        buckets_[i].store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sumBits_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

Registry& Registry::global() {
    static Registry instance;
    return instance;
}

Registry::Series& Registry::intern(std::string_view name, std::string_view help,
                                   Kind kind, const Labels& labels,
                                   const std::vector<double>* bounds) {
    expects(validMetricName(name), "Registry: invalid metric name");
    for (const auto& [key, value] : labels)
        expects(validLabelName(key), "Registry: invalid label name");

    const std::lock_guard<std::mutex> lock(mutex_);
    auto familyIt = families_.find(name);
    if (familyIt == families_.end()) {
        Family family;
        family.kind = kind;
        family.help = std::string(help);
        if (bounds != nullptr) family.bounds = *bounds;
        familyIt = families_.emplace(std::string(name), std::move(family)).first;
    }
    Family& family = familyIt->second;
    expects(family.kind == kind,
            "Registry: metric re-registered with a different type");
    if (kind == Kind::Histogram)
        expects(family.bounds == *bounds,
                "Registry: histogram re-registered with different buckets");

    for (const auto& series : family.series)
        if (series->labels == labels) return *series;

    auto series = std::make_unique<Series>();
    series->labels = labels;
    series->labelText = renderLabels(labels);
    switch (kind) {
        case Kind::Counter: series->counter = std::make_unique<Counter>(); break;
        case Kind::Gauge: series->gauge = std::make_unique<Gauge>(); break;
        case Kind::Histogram:
            series->histogram = std::make_unique<Histogram>(family.bounds);
            break;
    }
    family.series.push_back(std::move(series));
    return *family.series.back();
}

Counter& Registry::counter(std::string_view name, std::string_view help,
                           const Labels& labels) {
    return *intern(name, help, Kind::Counter, labels, nullptr).counter;
}

Gauge& Registry::gauge(std::string_view name, std::string_view help,
                       const Labels& labels) {
    return *intern(name, help, Kind::Gauge, labels, nullptr).gauge;
}

Histogram& Registry::histogram(std::string_view name, std::string_view help,
                               std::vector<double> bounds, const Labels& labels) {
    std::sort(bounds.begin(), bounds.end());
    bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
    return *intern(name, help, Kind::Histogram, labels, &bounds).histogram;
}

std::string Registry::renderPrometheus() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::string out;
    for (const auto& [name, family] : families_) {
        if (!family.help.empty())
            out += "# HELP " + name + " " + family.help + "\n";
        const char* type = family.kind == Kind::Counter ? "counter"
                           : family.kind == Kind::Gauge ? "gauge"
                                                        : "histogram";
        out += "# TYPE " + name + " " + type + "\n";
        for (const auto& series : family.series) {
            switch (family.kind) {
                case Kind::Counter:
                    out += seriesLine(name, series->labelText) + " " +
                           std::to_string(series->counter->value()) + "\n";
                    break;
                case Kind::Gauge:
                    out += seriesLine(name, series->labelText) + " " +
                           formatDouble(series->gauge->value()) + "\n";
                    break;
                case Kind::Histogram: {
                    const Histogram& h = *series->histogram;
                    std::uint64_t cumulative = 0;
                    for (std::size_t i = 0; i < h.bounds().size(); ++i) {
                        cumulative += h.bucketCount(i);
                        out += seriesLine(name + std::string("_bucket"),
                                          series->labelText,
                                          "le=\"" + formatDouble(h.bounds()[i]) +
                                              "\"") +
                               " " + std::to_string(cumulative) + "\n";
                    }
                    out += seriesLine(name + std::string("_bucket"),
                                      series->labelText, "le=\"+Inf\"") +
                           " " + std::to_string(h.count()) + "\n";
                    out += seriesLine(name + std::string("_sum"),
                                      series->labelText) +
                           " " + formatDouble(h.sum()) + "\n";
                    out += seriesLine(name + std::string("_count"),
                                      series->labelText) +
                           " " + std::to_string(h.count()) + "\n";
                    break;
                }
            }
        }
    }
    return out;
}

json::Value Registry::toJson() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    json::Value out;
    for (const auto& [name, family] : families_) {
        json::Value familyJson;
        familyJson["type"] = family.kind == Kind::Counter ? "counter"
                             : family.kind == Kind::Gauge ? "gauge"
                                                          : "histogram";
        familyJson["help"] = family.help;
        json::Array seriesArray;
        for (const auto& series : family.series) {
            json::Value s;
            json::Value labels{json::Object{}}; // {} even when unlabeled
            for (const auto& [key, value] : series->labels) labels[key] = value;
            s["labels"] = std::move(labels);
            switch (family.kind) {
                case Kind::Counter:
                    s["value"] = static_cast<std::int64_t>(series->counter->value());
                    break;
                case Kind::Gauge: s["value"] = series->gauge->value(); break;
                case Kind::Histogram: {
                    const Histogram& h = *series->histogram;
                    s["count"] = static_cast<std::int64_t>(h.count());
                    s["sum"] = h.sum();
                    json::Array buckets;
                    for (std::size_t i = 0; i < h.bounds().size(); ++i) {
                        json::Value b;
                        b["le"] = h.bounds()[i];
                        b["count"] = static_cast<std::int64_t>(h.bucketCount(i));
                        buckets.push_back(std::move(b));
                    }
                    json::Value inf;
                    inf["le"] = "+Inf";
                    inf["count"] =
                        static_cast<std::int64_t>(h.bucketCount(h.bounds().size()));
                    buckets.push_back(std::move(inf));
                    s["buckets"] = json::Value(std::move(buckets));
                    break;
                }
            }
            seriesArray.push_back(std::move(s));
        }
        familyJson["series"] = json::Value(std::move(seriesArray));
        out[name] = std::move(familyJson);
    }
    return out;
}

void Registry::reset() {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [name, family] : families_) {
        for (auto& series : family.series) {
            if (series->counter) series->counter->reset();
            if (series->gauge) series->gauge->reset();
            if (series->histogram) series->histogram->reset();
        }
    }
}

} // namespace lar::obs
