#include "obs/span.hpp"

#include "obs/metrics.hpp"

namespace lar::obs {

namespace {

thread_local Context t_context;

/// Fixed point on the steady clock all traces measure against, so several
/// traces from one process land on one consistent Chrome timeline.
std::chrono::steady_clock::time_point processEpoch() {
    static const auto epoch = std::chrono::steady_clock::now();
    return epoch;
}

} // namespace

// ---------------------------------------------------------------------------
// SpanNode / Trace
// ---------------------------------------------------------------------------

const SpanNode* SpanNode::child(std::string_view childName) const {
    for (const auto& c : children)
        if (c->name == childName) return c.get();
    return nullptr;
}

Trace::Trace(std::size_t maxSpans)
    : epoch_(std::chrono::steady_clock::now()), maxSpans_(maxSpans) {
    epochUs_ =
        std::chrono::duration<double, std::micro>(epoch_ - processEpoch()).count();
}

bool Trace::truncated() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return truncated_;
}

std::size_t Trace::spanCount() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return spanCount_;
}

double Trace::nowMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

const SpanNode* Trace::root() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return top_.children.empty() ? nullptr : top_.children.front().get();
}

namespace {

json::Value spanToJson(const SpanNode& node) {
    json::Value v;
    v["name"] = node.name;
    v["start_ms"] = node.startMs;
    v["dur_ms"] = node.durationMs();
    if (!node.samples.empty()) {
        json::Array samples;
        for (const SpanSample& s : node.samples) {
            json::Value sv;
            sv["name"] = s.name;
            sv["at_ms"] = s.atMs;
            for (const auto& [key, value] : s.values) sv[key] = value;
            samples.push_back(std::move(sv));
        }
        v["samples"] = json::Value(std::move(samples));
    }
    if (!node.children.empty()) {
        json::Array children;
        for (const auto& c : node.children) children.push_back(spanToJson(*c));
        v["children"] = json::Value(std::move(children));
    }
    return v;
}

void appendChromeEvents(const SpanNode& node, double epochUs, int tid,
                        json::Array& out) {
    json::Value event;
    event["name"] = node.name;
    event["ph"] = "X";
    event["ts"] = epochUs + node.startMs * 1000.0;
    event["dur"] = node.durationMs() * 1000.0;
    event["pid"] = 1;
    event["tid"] = tid;
    out.push_back(std::move(event));
    for (const SpanSample& s : node.samples) {
        json::Value instant;
        instant["name"] = s.name;
        instant["ph"] = "i";
        instant["s"] = "t"; // thread-scoped instant
        instant["ts"] = epochUs + s.atMs * 1000.0;
        instant["pid"] = 1;
        instant["tid"] = tid;
        json::Value args{json::Object{}};
        for (const auto& [key, value] : s.values) args[key] = value;
        instant["args"] = std::move(args);
        out.push_back(std::move(instant));
    }
    for (const auto& c : node.children)
        appendChromeEvents(*c, epochUs, tid, out);
}

} // namespace

json::Value Trace::toJson() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    json::Array spans;
    for (const auto& c : top_.children) spans.push_back(spanToJson(*c));
    return json::Value(std::move(spans));
}

json::Value Trace::chromeEvents(int tid) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    json::Array events;
    for (const auto& c : top_.children)
        appendChromeEvents(*c, epochUs_, tid, events);
    return json::Value(std::move(events));
}

// ---------------------------------------------------------------------------
// Context installation
// ---------------------------------------------------------------------------

Context currentContext() { return t_context; }

ScopedTrace::ScopedTrace(Trace& trace) : saved_(t_context) {
    t_context = Context{&trace, &trace.top_};
}

ScopedTrace::~ScopedTrace() { t_context = saved_; }

ScopedContext::ScopedContext(const Context& context) : saved_(t_context) {
    t_context = context;
}

ScopedContext::~ScopedContext() { t_context = saved_; }

// ---------------------------------------------------------------------------
// Span / sample
// ---------------------------------------------------------------------------

Span::Span(std::string name) {
    const Context context = t_context;
    if (context.trace == nullptr || !enabled()) return;
    trace_ = context.trace;
    saved_ = context;
    const std::lock_guard<std::mutex> lock(trace_->mutex_);
    if (trace_->spanCount_ >= trace_->maxSpans_) {
        // Budget spent: drop the span (and, because t_context is left
        // untouched, everything that would have nested under it) but flag
        // the loss so consumers can tell a short trace from a clipped one.
        trace_->truncated_ = true;
        trace_ = nullptr;
        return;
    }
    ++trace_->spanCount_;
    auto node = std::make_unique<SpanNode>();
    node->name = std::move(name);
    node->startMs = trace_->nowMs();
    node_ = node.get();
    context.span->children.push_back(std::move(node));
    t_context = Context{trace_, node_};
}

Span::~Span() {
    if (node_ == nullptr) return;
    {
        const std::lock_guard<std::mutex> lock(trace_->mutex_);
        node_->endMs = trace_->nowMs();
    }
    t_context = saved_;
}

void sample(std::string name,
            std::initializer_list<std::pair<const char*, double>> values) {
    const Context context = t_context;
    if (context.trace == nullptr || !enabled()) return;
    const std::lock_guard<std::mutex> lock(context.trace->mutex_);
    SpanSample s;
    s.atMs = context.trace->nowMs();
    s.name = std::move(name);
    s.values.reserve(values.size());
    for (const auto& [key, value] : values) s.values.emplace_back(key, value);
    context.span->samples.push_back(std::move(s));
}

// ---------------------------------------------------------------------------
// Chrome trace assembly
// ---------------------------------------------------------------------------

json::Value chromeTraceDocument(
    const std::vector<std::pair<std::string, const Trace*>>& traces) {
    json::Array events;
    int tid = 0;
    for (const auto& [label, trace] : traces) {
        ++tid;
        json::Value meta;
        meta["name"] = "thread_name";
        meta["ph"] = "M";
        meta["pid"] = 1;
        meta["tid"] = tid;
        json::Value args;
        args["name"] = label;
        meta["args"] = std::move(args);
        events.push_back(std::move(meta));
        json::Value spanEvents = trace->chromeEvents(tid);
        for (json::Value& e : spanEvents.asArray())
            events.push_back(std::move(e));
    }
    json::Value doc;
    doc["displayTimeUnit"] = "ms";
    doc["traceEvents"] = json::Value(std::move(events));
    return doc;
}

} // namespace lar::obs
