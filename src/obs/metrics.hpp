// Process-wide metrics: named counters, gauges, and fixed-bucket histograms.
//
// A Registry interns metric series once (name + label set, under a mutex)
// and hands out stable references; after that every update is a lock-free
// std::atomic operation, so the hot path — a Service answering a concurrent
// batch — never serializes on the registry. Two exporters cover the two
// consumers a deployment has: Prometheus text exposition for scrapers
// (`larctl metrics`) and json::Value for the same dashboards QueryTrace
// already feeds.
//
// Instrumentation can be switched off globally (obs::setEnabled(false)):
// updates become a relaxed load + branch, which is what bench_obs_overhead
// uses as its "instrumentation disabled" baseline. Span collection (span.hpp)
// honours the same flag.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "json/value.hpp"

namespace lar::obs {

namespace detail {
inline std::atomic<bool> g_enabled{true};
} // namespace detail

/// Global instrumentation switch (metrics updates and span collection).
[[nodiscard]] inline bool enabled() {
    return detail::g_enabled.load(std::memory_order_relaxed);
}
inline void setEnabled(bool on) {
    detail::g_enabled.store(on, std::memory_order_relaxed);
}

/// Monotonically increasing event count.
class Counter {
public:
    void inc(std::uint64_t n = 1) {
        if (enabled()) value_.fetch_add(n, std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t value() const {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() { value_.store(0, std::memory_order_relaxed); }

private:
    std::atomic<std::uint64_t> value_{0};
};

/// A value that can go up and down (queue depths, cache entries).
class Gauge {
public:
    void set(double v);
    void add(double delta); ///< atomic CAS loop; negative deltas allowed
    [[nodiscard]] double value() const;
    void reset() { set(0.0); }

private:
    std::atomic<std::uint64_t> bits_{0}; ///< bit-cast double
};

/// Fixed-bucket histogram (Prometheus semantics: buckets are cumulative in
/// the exposition, `le` is an inclusive upper bound, +Inf is implicit).
class Histogram {
public:
    explicit Histogram(std::vector<double> bounds);

    void observe(double v);

    /// Ascending upper bounds, without the implicit +Inf bucket.
    [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
    /// Non-cumulative count of bucket `i` (i == bounds().size() → +Inf).
    [[nodiscard]] std::uint64_t bucketCount(std::size_t i) const;
    [[nodiscard]] std::uint64_t count() const {
        return count_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] double sum() const;
    void reset();

private:
    std::vector<double> bounds_;
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_; ///< size+1 slots
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sumBits_{0}; ///< bit-cast double
};

/// Label set attached to one series, e.g. {{"kind", "optimize"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// The standard millisecond latency buckets every lar_ latency histogram
/// uses (Service query latency, HTTP request latency, queue waits): 0.5 ms
/// to 5 s. Shared so dashboards can overlay the families bucket-for-bucket.
[[nodiscard]] const std::vector<double>& latencyBucketsMs();

/// Named metric families, each with one series per label set. Registration
/// interns the series (same name + labels → same reference, forever valid);
/// a name registered as one type cannot be re-registered as another, and a
/// histogram family's buckets are fixed by its first registration.
class Registry {
public:
    Registry() = default;
    Registry(const Registry&) = delete;
    Registry& operator=(const Registry&) = delete;

    /// The process-wide registry every subsystem records into.
    [[nodiscard]] static Registry& global();

    Counter& counter(std::string_view name, std::string_view help,
                     const Labels& labels = {});
    Gauge& gauge(std::string_view name, std::string_view help,
                 const Labels& labels = {});
    Histogram& histogram(std::string_view name, std::string_view help,
                         std::vector<double> bounds, const Labels& labels = {});

    /// Prometheus text exposition format, version 0.0.4: one `# HELP` +
    /// `# TYPE` block per family, series sorted, no duplicates.
    [[nodiscard]] std::string renderPrometheus() const;
    [[nodiscard]] json::Value toJson() const;

    /// Zeroes every series; handles stay valid. For tests and benches.
    void reset();

private:
    enum class Kind { Counter, Gauge, Histogram };

    struct Series {
        Labels labels;
        std::string labelText; ///< rendered `k="v",...` (may be empty)
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };
    struct Family {
        Kind kind = Kind::Counter;
        std::string help;
        std::vector<double> bounds; ///< histograms only
        std::vector<std::unique_ptr<Series>> series;
    };

    Series& intern(std::string_view name, std::string_view help, Kind kind,
                   const Labels& labels, const std::vector<double>* bounds);

    mutable std::mutex mutex_;
    std::map<std::string, Family, std::less<>> families_;
};

} // namespace lar::obs
