#include "obs/trace_id.hpp"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <random>

#include "util/rng.hpp"

namespace lar::obs {

namespace {

/// One PRNG per thread so minting never contends. Seeded from the OS entropy
/// source, the wall clock, and a process-wide counter — any one of the three
/// failing to vary still leaves the others to separate two threads/processes.
util::Rng& threadRng() {
    static std::atomic<std::uint64_t> counter{0};
    thread_local util::Rng rng = [] {
        std::random_device rd;
        std::uint64_t seed = (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
        seed ^= static_cast<std::uint64_t>(
            std::chrono::system_clock::now().time_since_epoch().count());
        seed ^= counter.fetch_add(0x9e3779b97f4a7c15ULL,
                                  std::memory_order_relaxed);
        return util::Rng(seed);
    }();
    return rng;
}

} // namespace

std::string mintTraceId() {
    util::Rng& rng = threadRng();
    const std::uint64_t hi = rng.next();
    const std::uint64_t lo = rng.next();
    char buf[33];
    std::snprintf(buf, sizeof buf, "%016llx%016llx",
                  static_cast<unsigned long long>(hi),
                  static_cast<unsigned long long>(lo));
    return std::string(buf, 32);
}

bool validTraceId(std::string_view id) {
    if (id.size() < 8 || id.size() > 64) return false;
    for (const char c : id) {
        const bool ok = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') || c == '_' || c == '.' ||
                        c == '-';
        if (!ok) return false;
    }
    return true;
}

} // namespace lar::obs
