#include "serve/session_io.hpp"

#include <string>

#include "util/error.hpp"

namespace lar::serve {

namespace {

kb::HardwareClass hardwareClassFromName(const std::string& name) {
    if (name == "switch") return kb::HardwareClass::Switch;
    if (name == "nic") return kb::HardwareClass::Nic;
    if (name == "server") return kb::HardwareClass::Server;
    throw ParseError("unknown hardware class '" + name +
                     "' (expected switch, nic, or server)");
}

void fillBoolMap(const json::Value& v, const char* field,
                 std::map<std::string, bool>& out) {
    if (!v.isObject()) {
        throw ParseError(std::string(field) + " must be an object of booleans");
    }
    for (const auto& [name, value] : v.asObject().entries()) {
        if (!value.isBool()) {
            throw ParseError(std::string(field) + "." + name +
                             " must be a boolean");
        }
        out[name] = value.asBool();
    }
}

} // namespace

reason::Variation variationFromJson(const json::Value& v) {
    reason::Variation variation;
    if (v.isNull()) return variation; // empty body: ask the base problem
    if (!v.isObject()) throw ParseError("variation must be a JSON object");
    for (const auto& [key, value] : v.asObject().entries()) {
        if (key == "api") continue; // checked by rejectApiMismatch
        if (key == "systems") {
            fillBoolMap(value, "systems", variation.systems);
        } else if (key == "options") {
            fillBoolMap(value, "options", variation.options);
        } else if (key == "hardware") {
            if (!value.isObject()) {
                throw ParseError("hardware must be an object of model names");
            }
            for (const auto& [cls, model] : value.asObject().entries()) {
                if (!model.isString()) {
                    throw ParseError("hardware." + cls +
                                     " must be a model name string");
                }
                variation.hardwareModels[hardwareClassFromName(cls)] =
                    model.asString();
            }
        } else {
            throw ParseError("unknown variation field '" + key + "'");
        }
    }
    return variation;
}

json::Value answerToJson(const reason::WhatIfAnswer& answer,
                         const reason::QueryTrace* trace) {
    json::Value v;
    v["verdict"] = std::string(reason::verdictName(answer.verdict));
    v["feasible"] = answer.verdict == reason::Verdict::Sat;
    v["timed_out"] = reason::gaveUp(answer.verdict);
    if (answer.stopReason != sat::StopReason::None) {
        v["stop_reason"] = std::string(sat::toString(answer.stopReason));
    }
    if (answer.design.has_value()) v["design"] = toJson(*answer.design);
    if (!answer.conflictingRules.empty()) {
        json::Array rules;
        for (const std::string& rule : answer.conflictingRules) {
            rules.emplace_back(rule);
        }
        v["conflicting_rules"] = json::Value(std::move(rules));
    }
    if (!answer.unknownNames.empty()) {
        json::Array names;
        for (const std::string& name : answer.unknownNames) {
            names.emplace_back(name);
        }
        v["unknown_names"] = json::Value(std::move(names));
    }
    if (trace != nullptr) v["trace"] = toJson(*trace);
    return v;
}

} // namespace lar::serve
