#include "serve/api.hpp"

#include <string>

#include "json/write.hpp"
#include "util/error.hpp"

namespace lar::serve {

std::optional<net::HttpResponse> rejectApiMismatch(const json::Value& doc) {
    if (!doc.isObject() || !doc.asObject().contains("api")) {
        return std::nullopt;
    }
    const json::Value& api = doc.at("api");
    if (!api.isInt()) {
        return apiError(400, "api_version",
                        "\"api\" must be an integer major version");
    }
    if (api.asInt() != kApiVersion) {
        return apiError(400, "api_version",
                        "unsupported api version " +
                            std::to_string(api.asInt()) + "; this server speaks " +
                            std::to_string(kApiVersion));
    }
    return std::nullopt;
}

net::HttpResponse apiResponse(int status, json::Value body) {
    if (body.isObject() && !body.asObject().contains("api")) {
        // Prepend: rebuild with "api" first so the stamp leads the wire form.
        json::Value stamped;
        stamped["api"] = kApiVersion;
        for (const auto& [key, value] : body.asObject().entries()) {
            stamped[key] = value;
        }
        body = std::move(stamped);
    }
    net::HttpResponse resp;
    resp.status = status;
    resp.body = json::write(body);
    resp.body += '\n';
    return resp;
}

net::HttpResponse apiError(int status, std::string_view kind,
                           std::string_view message) {
    json::Value detail;
    detail["kind"] = kind;
    detail["message"] = message;
    json::Value body;
    body["error"] = std::move(detail);
    return apiResponse(status, std::move(body));
}

net::HttpResponse apiBadRequest(const std::exception& e) {
    const char* kind = dynamic_cast<const ParseError*>(&e) != nullptr
                           ? "parse_error"
                       : dynamic_cast<const EncodingError*>(&e) != nullptr
                           ? "encoding_error"
                           : "bad_request";
    return apiError(400, kind, e.what());
}

} // namespace lar::serve
