// JSON wire schema of the what-if session endpoints.
//
// A variation (request body of POST /v1/session/{id}/ask):
//   {"api": 1,
//    "systems":  {"<system name>": true|false, ...},
//    "hardware": {"switch"|"nic"|"server": "<model name>", ...},
//    "options":  {"<option name>": true|false, ...}}
// All three maps are optional; an empty body asks the base problem.
//
// An answer mirrors WhatIfAnswer, unified on the Verdict enum:
//   {"api": 1, "verdict": "sat"|..., "feasible": bool, "timed_out": bool,
//    "stop_reason": "...",            // only when a budget/deadline stopped it
//    "design": {...},                 // only when verdict == sat
//    "conflicting_rules": [...],      // only when verdict == unsat
//    "unknown_names": [...],          // only when verdict == error
//    "trace": {...}}                  // QueryTrace (schema v7)
#pragma once

#include "json/value.hpp"
#include "reason/trace.hpp"
#include "reason/whatif.hpp"

namespace lar::serve {

/// Parses a variation body. Throws ParseError on unknown keys, a hardware
/// class that is not switch/nic/server, or non-bool / non-string values.
/// (Unknown *names* inside the maps are the session's job to reject — it
/// answers Verdict::Error with the offending names listed.)
[[nodiscard]] reason::Variation variationFromJson(const json::Value& v);

/// Serializes one answer (without the "api" stamp — apiResponse adds it).
/// `trace` is included under "trace" when non-null.
[[nodiscard]] json::Value answerToJson(const reason::WhatIfAnswer& answer,
                                       const reason::QueryTrace* trace);

} // namespace lar::serve
