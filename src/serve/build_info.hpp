// Build identity: which binary is answering, speaking which schemas.
//
// Three consumers, one source of truth: GET /version (JSON for scripts),
// /statusz (the human status page header), and the lar_build_info gauge
// (the Prometheus idiom for build metadata — a constant-1 series whose
// labels carry the identity, so dashboards can break any metric down by
// deployed version). The git describe string is baked in at configure
// time via a compile definition on build_info.cpp alone, so touching the
// working tree does not recompile the world.
#pragma once

#include <cstdint>
#include <string>

#include "json/value.hpp"

namespace lar::serve {

struct BuildInfo {
    std::string gitDescribe;  ///< `git describe --always --dirty` ("unknown")
    int traceSchemaVersion;   ///< reason::kQueryTraceSchemaVersion
    std::int64_t apiVersion;  ///< serve::kApiVersion (the "api" major)
};

[[nodiscard]] const BuildInfo& buildInfo();

/// The GET /version response body (before the "api" envelope stamp).
[[nodiscard]] json::Value buildInfoJson();

/// Interns the constant-1 lar_build_info gauge into the global registry.
/// Idempotent; larserved calls it once at startup via registerDebugRoutes.
void registerBuildInfoMetric();

} // namespace lar::serve
