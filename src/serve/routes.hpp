// larserved's HTTP routes, as a library.
//
// The endpoint handlers live here rather than in the daemon's main() so
// tests and benches can stand up a full in-process server (real sockets,
// real routing, real JSON) without forking the binary. larserved itself is
// flag parsing + signal handling around these three calls.
//
// Service routes (registerServiceRoutes):
//   POST /v1/query    one query object in, one result object out.
//   POST /v1/batch    batch document in, full batch report out.
//   GET  /metrics     Prometheus text exposition of the obs registry.
//   GET  /healthz     liveness; 200 while the process is up.
//   GET  /readyz      readiness; 503 once draining.
//
// Session routes (registerSessionRoutes) — the stateful what-if workflow:
//   POST   /v1/session             {"problem": {...}} → {"id", "lease_ttl_ms",
//                                  "warm_started", ...}; 429 + Retry-After
//                                  when shed (draining or at the session cap).
//   POST   /v1/session/{id}/ask    variation in, answer out (session_io.hpp);
//                                  404 unknown/expired id; 400 when the
//                                  variation names unknown entities.
//   POST   /v1/session/{id}/renew  extends the lease; 404 unknown id.
//   DELETE /v1/session/{id}        closes the session (its learnt solver
//                                  state feeds the warm-start cache).
//
// Debug / introspection routes (registerDebugRoutes) — read-only views of
// the flight recorder, the in-flight registry, and the session table:
//   GET /v1/debug/traces        retained QueryTraces, newest first, span
//                               trees omitted; ?verdict=<name>,
//                               ?min_duration_ms=<ms>, ?limit=<n> filter.
//   GET /v1/debug/traces/{id}   one full trace (spans included) by trace id
//                               or query id; ?format=chrome answers the raw
//                               Chrome trace_event document for Perfetto.
//   GET /v1/debug/inflight      currently executing queries: phase, elapsed,
//                               portfolio width, owning session.
//   GET /v1/debug/sessions      live what-if sessions: asks, lease left.
//   GET /statusz                the same, as one human-readable text page.
//   GET /version                build identity (git describe, trace schema
//                               version, "api" major).
//
// Every JSON body in and out follows the "api" envelope rules in api.hpp;
// responses to traced requests also carry "trace_id" (and every response
// repeats it in the X-Lar-Trace-Id header).
#pragma once

#include "kb/kb.hpp"
#include "net/server.hpp"
#include "reason/service.hpp"
#include "reason/session.hpp"

namespace lar::serve {

/// Registers the stateless query/observability routes. `service` and `kb`
/// must outlive the server. Call before HttpServer::start().
void registerServiceRoutes(net::HttpServer& server, reason::Service& service,
                           const kb::KnowledgeBase& kb);

/// Registers the stateful session routes. `sessions` and `kb` must outlive
/// the server. Call before HttpServer::start().
void registerSessionRoutes(net::HttpServer& server,
                           reason::SessionManager& sessions,
                           const kb::KnowledgeBase& kb);

/// Registers the read-only introspection routes (/v1/debug/*, /statusz,
/// /version) and interns the lar_build_info gauge. `sessions` may be null
/// when the server runs without session support — /v1/debug/sessions and
/// the /statusz session block then report an empty table.
void registerDebugRoutes(net::HttpServer& server, reason::Service& service,
                         reason::SessionManager* sessions = nullptr);

} // namespace lar::serve
