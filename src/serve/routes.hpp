// larserved's HTTP routes, as a library.
//
// The endpoint handlers live here rather than in the daemon's main() so
// tests and benches can stand up a full in-process server (real sockets,
// real routing, real JSON) without forking the binary. larserved itself is
// flag parsing + signal handling around these two calls.
//
// Service routes (registerServiceRoutes):
//   POST /v1/query    one query object in, one result object out.
//   POST /v1/batch    batch document in, full batch report out.
//   GET  /metrics     Prometheus text exposition of the obs registry.
//   GET  /healthz     liveness; 200 while the process is up.
//   GET  /readyz      readiness; 503 once draining.
//
// Session routes (registerSessionRoutes) — the stateful what-if workflow:
//   POST   /v1/session             {"problem": {...}} → {"id", "lease_ttl_ms",
//                                  "warm_started", ...}; 429 + Retry-After
//                                  when shed (draining or at the session cap).
//   POST   /v1/session/{id}/ask    variation in, answer out (session_io.hpp);
//                                  404 unknown/expired id; 400 when the
//                                  variation names unknown entities.
//   POST   /v1/session/{id}/renew  extends the lease; 404 unknown id.
//   DELETE /v1/session/{id}        closes the session (its learnt solver
//                                  state feeds the warm-start cache).
//
// Every JSON body in and out follows the "api" envelope rules in api.hpp.
#pragma once

#include "kb/kb.hpp"
#include "net/server.hpp"
#include "reason/service.hpp"
#include "reason/session.hpp"

namespace lar::serve {

/// Registers the stateless query/observability routes. `service` and `kb`
/// must outlive the server. Call before HttpServer::start().
void registerServiceRoutes(net::HttpServer& server, reason::Service& service,
                           const kb::KnowledgeBase& kb);

/// Registers the stateful session routes. `sessions` and `kb` must outlive
/// the server. Call before HttpServer::start().
void registerSessionRoutes(net::HttpServer& server,
                           reason::SessionManager& sessions,
                           const kb::KnowledgeBase& kb);

} // namespace lar::serve
