#include "serve/build_info.hpp"

#include "obs/metrics.hpp"
#include "reason/trace.hpp"
#include "serve/api.hpp"

// Normally supplied by serve/CMakeLists.txt from `git describe`; the
// fallback keeps non-CMake builds (and source exports) compiling.
#ifndef LAR_GIT_DESCRIBE
#define LAR_GIT_DESCRIBE "unknown"
#endif

namespace lar::serve {

const BuildInfo& buildInfo() {
    static const BuildInfo info{LAR_GIT_DESCRIBE,
                                reason::kQueryTraceSchemaVersion, kApiVersion};
    return info;
}

json::Value buildInfoJson() {
    const BuildInfo& info = buildInfo();
    json::Value v;
    v["git"] = info.gitDescribe;
    v["trace_schema"] = static_cast<std::int64_t>(info.traceSchemaVersion);
    v["api"] = info.apiVersion;
    return v;
}

void registerBuildInfoMetric() {
    const BuildInfo& info = buildInfo();
    obs::Registry::global()
        .gauge("lar_build_info",
               "Constant 1; the labels carry the build identity",
               {{"api", std::to_string(info.apiVersion)},
                {"git", info.gitDescribe},
                {"trace_schema", std::to_string(info.traceSchemaVersion)}})
        .set(1.0);
}

} // namespace lar::serve
