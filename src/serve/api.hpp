// Versioned JSON envelope of the larserved HTTP API.
//
// Every /v1/* body — request and response — carries an "api" field naming
// the schema major version. The rules, shared by every route:
//
//  * requests MAY omit "api"; absence means "whatever v1 of the endpoint
//    speaks" (this grandfathers pre-versioning clients);
//  * a request whose "api" is present but not the served major is rejected
//    with 400 and a structured `api_version` error before any parsing of
//    the rest of the body — the client is speaking a schema this server
//    does not implement, and guessing would mis-read it;
//  * every JSON response is stamped with the served "api" so clients can
//    pin what they actually got.
//
// Additive, backward-compatible fields do NOT bump the major; only a
// breaking reshape of existing fields does.
#pragma once

#include <cstdint>
#include <optional>

#include "json/value.hpp"
#include "net/http.hpp"

namespace lar::serve {

/// The JSON schema major this build serves on /v1/*.
inline constexpr std::int64_t kApiVersion = 1;

/// Checks the "api" field of a request body. Returns a ready-to-send 400
/// when the client pinned a major this server does not speak (or sent a
/// non-integer "api"); nullopt when the request is acceptable. Non-object
/// bodies are left for the endpoint's own parser to reject.
[[nodiscard]] std::optional<net::HttpResponse> rejectApiMismatch(
    const json::Value& doc);

/// Builds a JSON response with the "api" stamp added to `body`.
[[nodiscard]] net::HttpResponse apiResponse(int status, json::Value body);

/// `errorJson` with the "api" stamp: {"api":1,"error":{"kind","message"}}.
[[nodiscard]] net::HttpResponse apiError(int status, std::string_view kind,
                                         std::string_view message);

/// Maps a parse-layer exception to 400 (ParseError → parse_error,
/// EncodingError → encoding_error, anything else → bad_request).
[[nodiscard]] net::HttpResponse apiBadRequest(const std::exception& e);

} // namespace lar::serve
