#include "serve/routes.hpp"

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "json/parse.hpp"
#include "json/write.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "reason/flight_recorder.hpp"
#include "reason/problem_io.hpp"
#include "reason/service_io.hpp"
#include "serve/api.hpp"
#include "serve/build_info.hpp"
#include "serve/session_io.hpp"
#include "util/error.hpp"
#include "util/fault_injector.hpp"

namespace lar::serve {

namespace {

int statusForVerdict(const reason::QueryResult& result) {
    switch (result.verdict) {
        case reason::Verdict::Shed: return 429;
        case reason::Verdict::Error: return 500;
        default: return 200;
    }
}

/// Parses the request body (empty body → null) and applies the "api"
/// envelope check. On failure `error` holds the ready 400 response.
std::optional<json::Value> parseBody(const net::HttpRequest& req,
                                     net::HttpResponse& error) {
    json::Value doc;
    if (!req.body.empty()) {
        try {
            doc = json::parse(req.body);
        } catch (const Error& e) {
            error = apiBadRequest(e);
            return std::nullopt;
        }
    }
    if (std::optional<net::HttpResponse> mismatch = rejectApiMismatch(doc)) {
        error = std::move(*mismatch);
        return std::nullopt;
    }
    return doc;
}

/// Span collector for one HTTP request: a fresh trace installed on the
/// handler thread, rooted at an "http" span covering the handler body.
/// Hand `trace` down (QueryRequest::requestTrace, SessionManager::ask) and
/// the reasoning spans nest under it; call close() before serializing the
/// trace so the "http" span has its duration.
struct HttpSpanScope {
    std::shared_ptr<obs::Trace> trace;
    std::optional<obs::ScopedTrace> scoped;
    std::optional<obs::Span> span;

    HttpSpanScope() {
        if (!obs::enabled()) return;
        trace = std::make_shared<obs::Trace>();
        scoped.emplace(*trace);
        span.emplace("http");
    }
    void close() {
        span.reset();
        scoped.reset();
    }
    ~HttpSpanScope() { close(); }
};

/// Echoes the request's trace identity in the response envelope. The
/// X-Lar-Trace-Id response header carries the same value; the body copy is
/// for scripts and logs that only keep the JSON.
void stampTraceId(json::Value& body, const net::HttpRequest& req) {
    if (body.isObject() && !req.traceId.empty()) body["trace_id"] = req.traceId;
}

/// One row of GET /v1/debug/traces: the fields an operator scans a list by.
/// The span tree (the bulky part) is deliberately omitted — fetch the full
/// trace through /v1/debug/traces/{id}.
json::Value traceSummaryJson(const reason::QueryTrace& trace) {
    json::Value v;
    v["id"] = trace.id;
    if (!trace.traceId.empty()) v["trace_id"] = trace.traceId;
    v["kind"] = reason::toString(trace.kind);
    v["verdict"] = std::string(reason::verdictName(trace.verdict));
    v["total_ms"] = trace.totalMs;
    v["compile_ms"] = trace.compileMs;
    v["solve_ms"] = trace.solveMs;
    if (trace.queueWaitMs > 0) v["queue_wait_ms"] = trace.queueWaitMs;
    v["cache_hit"] = trace.cacheHit;
    if (trace.portfolioWorkers > 1) {
        v["portfolio_workers"] =
            static_cast<std::int64_t>(trace.portfolioWorkers);
    }
    if (!trace.errorKind.empty()) v["error_kind"] = trace.errorKind;
    return v;
}

std::string formatMs(double ms) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f", ms);
    return buf;
}

/// The /statusz page: everything the JSON debug endpoints expose, as one
/// glanceable text page for a human with curl and a problem.
std::string renderStatusz(const reason::Service& service,
                          const reason::SessionManager* sessions,
                          bool draining) {
    const BuildInfo& build = buildInfo();
    const reason::FlightRecorder& recorder = service.flightRecorder();
    const reason::FlightRecorder::Stats stats = recorder.stats();

    std::string page = "larserved ";
    page += build.gitDescribe;
    page += "  (api v" + std::to_string(build.apiVersion) + ", trace schema v" +
            std::to_string(build.traceSchemaVersion) + ")\n";
    page += draining ? "state: draining\n" : "state: serving\n";

    page += "\nflight recorder: " + std::to_string(recorder.size()) + "/" +
            std::to_string(recorder.capacity()) + " retained (pinned " +
            std::to_string(stats.pinned) + ", slow " +
            std::to_string(stats.slow) + ", normal " +
            std::to_string(stats.normal) + "), p95 " + formatMs(stats.p95Ms) +
            " ms\n";
    page += "  recorded " + std::to_string(stats.recorded) + ", sampled out " +
            std::to_string(stats.sampledOut) + ", evicted " +
            std::to_string(stats.evicted) + "\n";

    const std::vector<reason::InflightSnapshot> inflight = recorder.inflight();
    page += "\nin-flight queries: " + std::to_string(inflight.size()) + "\n";
    for (const reason::InflightSnapshot& q : inflight) {
        page += "  " + q.id + "  " + reason::toString(q.kind) + "  " +
                reason::queryPhaseName(q.phase) + "  " + formatMs(q.elapsedMs) +
                " ms  workers=" + std::to_string(q.workers);
        if (!q.sessionId.empty()) page += "  session=" + q.sessionId;
        if (!q.traceId.empty()) page += "  trace=" + q.traceId;
        page += "\n";
    }

    if (sessions != nullptr) {
        const std::vector<reason::SessionManager::SessionInfo> live =
            sessions->list();
        page += "\nsessions: " + std::to_string(live.size()) + "\n";
        for (const reason::SessionManager::SessionInfo& s : live) {
            page += "  " + s.id + "  asks=" + std::to_string(s.asks) +
                    "  lease_remaining_ms=" +
                    std::to_string(s.leaseRemainingMs) +
                    (s.warmStarted ? "  warm-started" : "") + "\n";
        }
    } else {
        page += "\nsessions: disabled\n";
    }

    // Solver inprocessing: how much the simplifier is earning its keep
    // across all queries. Registration interns, so these are the same
    // series the Service increments.
    {
        obs::Registry& reg = obs::Registry::global();
        page += "\nsolver inprocessing:\n";
        page += "  subsumed=" +
                std::to_string(
                    reg.counter("lar_sat_subsumed",
                                "Clauses removed by inprocessing subsumption")
                        .value()) +
                "  eliminated_vars=" +
                std::to_string(
                    reg.counter("lar_sat_eliminated_vars",
                                "Variables removed by bounded variable "
                                "elimination")
                        .value()) +
                "  probes=" +
                std::to_string(
                    reg.counter("lar_sat_probes",
                                "Literals probed by failed-literal probing")
                        .value()) +
                "\n";
        page += "  arena_gcs=" +
                std::to_string(
                    reg.counter("lar_sat_arena_gcs",
                                "Clause-arena compactions in query solvers")
                        .value()) +
                "  arena_waste_bytes=" +
                std::to_string(static_cast<std::int64_t>(
                    reg.gauge("lar_sat_arena_waste_bytes",
                              "Dead clause bytes awaiting arena compaction "
                              "(last query's solver)")
                        .value())) +
                "\n";
    }

    // Chaos visibility: any fault-injection site touched this process. A
    // healthy production instance prints nothing here.
    const std::vector<util::FaultInjector::SiteStatus> faults =
        util::FaultInjector::global().snapshot();
    if (!faults.empty()) {
        page += "\nfault injection sites: " + std::to_string(faults.size()) +
                "\n";
        for (const util::FaultInjector::SiteStatus& f : faults) {
            page += "  " + f.site + "  " + f.mode;
            if (f.mode == "probability") {
                char buf[32];
                std::snprintf(buf, sizeof buf, "=%.3f", f.probability);
                page += buf;
            } else if (f.mode == "nth_hit") {
                page += "=" + std::to_string(f.nth);
            }
            if (f.delayMs > 0) {
                page += "  delay_ms=" + std::to_string(f.delayMs);
            }
            page += "  hits=" + std::to_string(f.hits) + "\n";
        }
    }
    return page;
}

} // namespace

void registerServiceRoutes(net::HttpServer& server, reason::Service& service,
                           const kb::KnowledgeBase& kb) {
    server.route("POST", "/v1/query", [&service,
                                       &kb](const net::HttpRequest& req) {
        net::HttpResponse error;
        const std::optional<json::Value> doc = parseBody(req, error);
        if (!doc.has_value()) return error;
        reason::QueryRequest request;
        try {
            request = reason::queryRequestFromJson(*doc, kb,
                                                   reason::QueryOptions{},
                                                   /*index=*/0);
        } catch (const Error& e) {
            return apiBadRequest(e);
        }
        HttpSpanScope span;
        request.traceId = req.traceId;
        request.requestTrace = span.trace;
        const reason::QueryResult result = service.run(request);
        span.close();
        json::Value body =
            reason::resultToJson(result, request.options.collectTrace);
        stampTraceId(body, req);
        net::HttpResponse resp =
            apiResponse(statusForVerdict(result), std::move(body));
        if (resp.status == 429) {
            resp.extraHeaders.push_back({"Retry-After", "1"});
        }
        return resp;
    });

    server.route("POST", "/v1/batch", [&service,
                                       &kb](const net::HttpRequest& req) {
        net::HttpResponse error;
        const std::optional<json::Value> doc = parseBody(req, error);
        if (!doc.has_value()) return error;
        std::vector<reason::QueryRequest> requests;
        try {
            requests = reason::batchRequestsFromJson(*doc, kb,
                                                     /*serviceOptions=*/
                                                     nullptr);
        } catch (const Error& e) {
            return apiBadRequest(e);
        }
        // One trace for the whole batch: each query's spans become one
        // more "query" child under the shared "http" root.
        HttpSpanScope span;
        for (reason::QueryRequest& request : requests) {
            request.traceId = req.traceId;
            request.requestTrace = span.trace;
        }
        const std::vector<reason::QueryResult> results =
            service.runBatch(requests);
        span.close();
        json::Value report =
            reason::batchReportToJson(results, requests, service);
        report["any_failed_or_infeasible"] =
            reason::anyFailedOrInfeasible(results);
        stampTraceId(report, req);
        return apiResponse(200, std::move(report));
    });

    server.route("GET", "/metrics", [](const net::HttpRequest&) {
        net::HttpResponse resp;
        resp.contentType = "text/plain; version=0.0.4";
        resp.body = obs::Registry::global().renderPrometheus();
        return resp;
    });

    server.route("GET", "/healthz", [](const net::HttpRequest&) {
        return net::HttpResponse::text(200, "{\"ok\":true}\n");
    });

    server.route("GET", "/readyz", [&server](const net::HttpRequest&) {
        if (server.draining()) {
            return net::HttpResponse::errorJson(503, "draining",
                                                "shutting down");
        }
        return net::HttpResponse::text(200, "{\"ready\":true}\n");
    });
}

void registerSessionRoutes(net::HttpServer& server,
                           reason::SessionManager& sessions,
                           const kb::KnowledgeBase& kb) {
    server.route("POST", "/v1/session", [&sessions,
                                         &kb](const net::HttpRequest& req) {
        net::HttpResponse error;
        const std::optional<json::Value> doc = parseBody(req, error);
        if (!doc.has_value()) return error;
        reason::Problem problem;
        try {
            if (!doc->isObject() || !doc->asObject().contains("problem")) {
                throw ParseError("session create needs a \"problem\" object");
            }
            problem = reason::problemFromJson(doc->at("problem"), kb);
        } catch (const Error& e) {
            return apiBadRequest(e);
        }
        const reason::SessionManager::CreateResult created =
            sessions.create(problem);
        if (created.shed) {
            net::HttpResponse resp = apiError(
                429, "shed", "session capacity reached or server draining");
            resp.extraHeaders.push_back({"Retry-After", "1"});
            return resp;
        }
        json::Value body;
        body["id"] = created.id;
        body["lease_ttl_ms"] = created.leaseTtlMs;
        body["warm_started"] = created.warmStarted;
        body["warm_start_clauses"] =
            static_cast<std::int64_t>(created.warmStartClauses);
        body["cache_hit"] = created.cacheHit;
        body["compile_ms"] = created.compileMs;
        stampTraceId(body, req);
        return apiResponse(200, std::move(body));
    });

    server.route(
        "POST", "/v1/session/{id}/ask",
        [&sessions](const net::HttpRequest& req,
                    const net::HttpServer::RouteParams& params) {
            net::HttpResponse error;
            const std::optional<json::Value> doc = parseBody(req, error);
            if (!doc.has_value()) return error;
            reason::Variation variation;
            try {
                variation = variationFromJson(*doc);
            } catch (const Error& e) {
                return apiBadRequest(e);
            }
            const std::string& id = params.at("id");
            HttpSpanScope span;
            std::optional<reason::SessionManager::AskOutcome> outcome =
                sessions.ask(id, variation, req.traceId, span.trace);
            span.close();
            if (!outcome.has_value()) {
                return apiError(404, "unknown_session",
                                "no session '" + id +
                                    "' (never created, expired, or closed)");
            }
            // Verdict::Error here means the variation named entities the
            // compilation does not know — a client mistake, not a server
            // failure, so 400 with the offending names in the body.
            const int status =
                outcome->answer.verdict == reason::Verdict::Error ? 400 : 200;
            json::Value body = answerToJson(outcome->answer, &outcome->trace);
            stampTraceId(body, req);
            return apiResponse(status, std::move(body));
        });

    server.route(
        "POST", "/v1/session/{id}/renew",
        [&sessions](const net::HttpRequest& req,
                    const net::HttpServer::RouteParams& params) {
            net::HttpResponse error;
            const std::optional<json::Value> doc = parseBody(req, error);
            if (!doc.has_value()) return error;
            const std::string& id = params.at("id");
            if (!sessions.renew(id)) {
                return apiError(404, "unknown_session",
                                "no session '" + id + "' to renew");
            }
            json::Value body;
            body["renewed"] = true;
            body["lease_ttl_ms"] = static_cast<std::int64_t>(
                sessions.options().leaseTtl.count());
            stampTraceId(body, req);
            return apiResponse(200, std::move(body));
        });

    server.route("DELETE", "/v1/session/{id}",
                 [&sessions](const net::HttpRequest& req,
                             const net::HttpServer::RouteParams& params) {
                     const std::string& id = params.at("id");
                     if (!sessions.close(id)) {
                         return apiError(404, "unknown_session",
                                         "no session '" + id + "' to close");
                     }
                     json::Value body;
                     body["closed"] = true;
                     stampTraceId(body, req);
                     return apiResponse(200, std::move(body));
                 });
}

void registerDebugRoutes(net::HttpServer& server, reason::Service& service,
                         reason::SessionManager* sessions) {
    registerBuildInfoMetric();

    server.route("GET", "/v1/debug/traces", [&service](
                                                const net::HttpRequest& req) {
        std::optional<reason::Verdict> verdict;
        const std::string verdictText = req.queryParam("verdict");
        if (!verdictText.empty()) {
            verdict = reason::verdictFromName(verdictText);
            if (!verdict.has_value()) {
                return apiError(400, "bad_filter",
                                "unknown verdict '" + verdictText + "'");
            }
        }
        double minDurationMs = 0.0;
        const std::string minText = req.queryParam("min_duration_ms");
        if (!minText.empty()) {
            char* end = nullptr;
            minDurationMs = std::strtod(minText.c_str(), &end);
            if (end == minText.c_str() || *end != '\0' || minDurationMs < 0) {
                return apiError(400, "bad_filter",
                                "min_duration_ms must be a number >= 0");
            }
        }
        long limit = 0;
        const std::string limitText = req.queryParam("limit");
        if (!limitText.empty()) {
            char* end = nullptr;
            limit = std::strtol(limitText.c_str(), &end, 10);
            if (end == limitText.c_str() || *end != '\0' || limit < 0) {
                return apiError(400, "bad_filter",
                                "limit must be a number >= 0");
            }
        }
        const std::vector<reason::QueryTrace> traces =
            service.flightRecorder().traces(static_cast<std::size_t>(limit),
                                            minDurationMs, verdict);
        json::Array rows;
        rows.reserve(traces.size());
        for (const reason::QueryTrace& trace : traces) {
            rows.push_back(traceSummaryJson(trace));
        }
        json::Value body;
        body["count"] = static_cast<std::int64_t>(rows.size());
        body["traces"] = json::Value(std::move(rows));
        return apiResponse(200, std::move(body));
    });

    server.route(
        "GET", "/v1/debug/traces/{id}",
        [&service](const net::HttpRequest& req,
                   const net::HttpServer::RouteParams& params) {
            const std::string& id = params.at("id");
            const std::optional<reason::QueryTrace> trace =
                service.flightRecorder().find(id);
            if (!trace.has_value()) {
                return apiError(404, "unknown_trace",
                                "no retained trace '" + id +
                                    "' (never recorded, or aged out)");
            }
            const std::string format = req.queryParam("format");
            if (format == "chrome") {
                // The raw trace_event document, no envelope: the body is
                // meant to be saved to a file and loaded in Perfetto /
                // chrome://tracing as-is.
                std::vector<std::pair<std::string, const obs::Trace*>> lanes;
                if (trace->spans) {
                    lanes.emplace_back("query " + trace->id,
                                       trace->spans.get());
                }
                net::HttpResponse resp;
                resp.body = json::write(obs::chromeTraceDocument(lanes));
                resp.body += '\n';
                return resp;
            }
            if (!format.empty() && format != "json") {
                return apiError(400, "bad_filter",
                                "format must be json or chrome");
            }
            json::Value body;
            body["trace"] = toJson(*trace);
            return apiResponse(200, std::move(body));
        });

    server.route("GET", "/v1/debug/inflight", [&service](
                                                  const net::HttpRequest&) {
        const std::vector<reason::InflightSnapshot> inflight =
            service.flightRecorder().inflight();
        json::Array rows;
        rows.reserve(inflight.size());
        for (const reason::InflightSnapshot& q : inflight) {
            json::Value row;
            row["id"] = q.id;
            if (!q.traceId.empty()) row["trace_id"] = q.traceId;
            if (!q.sessionId.empty()) row["session_id"] = q.sessionId;
            row["kind"] = reason::toString(q.kind);
            row["phase"] = std::string(reason::queryPhaseName(q.phase));
            row["elapsed_ms"] = q.elapsedMs;
            row["workers"] = static_cast<std::int64_t>(q.workers);
            rows.push_back(std::move(row));
        }
        json::Value body;
        body["count"] = static_cast<std::int64_t>(rows.size());
        body["inflight"] = json::Value(std::move(rows));
        return apiResponse(200, std::move(body));
    });

    server.route("GET", "/v1/debug/sessions",
                 [sessions](const net::HttpRequest&) {
                     json::Array rows;
                     if (sessions != nullptr) {
                         for (const reason::SessionManager::SessionInfo& s :
                              sessions->list()) {
                             json::Value row;
                             row["id"] = s.id;
                             row["asks"] = static_cast<std::int64_t>(s.asks);
                             row["lease_remaining_ms"] = s.leaseRemainingMs;
                             row["warm_started"] = s.warmStarted;
                             rows.push_back(std::move(row));
                         }
                     }
                     json::Value body;
                     body["count"] = static_cast<std::int64_t>(rows.size());
                     body["sessions"] = json::Value(std::move(rows));
                     return apiResponse(200, std::move(body));
                 });

    server.route("GET", "/v1/debug/faults", [](const net::HttpRequest&) {
        json::Array rows;
        for (const util::FaultInjector::SiteStatus& f :
             util::FaultInjector::global().snapshot()) {
            json::Value row;
            row["site"] = f.site;
            row["mode"] = f.mode;
            row["armed"] = f.armed;
            if (f.mode == "probability") row["probability"] = f.probability;
            if (f.nth > 0) row["nth"] = static_cast<std::int64_t>(f.nth);
            if (f.delayMs > 0) {
                row["delay_ms"] = static_cast<std::int64_t>(f.delayMs);
            }
            row["hits"] = static_cast<std::int64_t>(f.hits);
            rows.push_back(std::move(row));
        }
        json::Value body;
        body["count"] = static_cast<std::int64_t>(rows.size());
        body["faults"] = json::Value(std::move(rows));
        return apiResponse(200, std::move(body));
    });

    server.route("GET", "/statusz",
                 [&server, &service, sessions](const net::HttpRequest&) {
                     net::HttpResponse resp;
                     resp.contentType = "text/plain; charset=utf-8";
                     resp.body = renderStatusz(service, sessions,
                                               server.draining());
                     return resp;
                 });

    server.route("GET", "/version", [](const net::HttpRequest&) {
        return apiResponse(200, buildInfoJson());
    });
}

} // namespace lar::serve
