#include "serve/routes.hpp"

#include <exception>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "json/parse.hpp"
#include "obs/metrics.hpp"
#include "reason/problem_io.hpp"
#include "reason/service_io.hpp"
#include "serve/api.hpp"
#include "serve/session_io.hpp"
#include "util/error.hpp"

namespace lar::serve {

namespace {

int statusForVerdict(const reason::QueryResult& result) {
    switch (result.verdict) {
        case reason::Verdict::Shed: return 429;
        case reason::Verdict::Error: return 500;
        default: return 200;
    }
}

/// Parses the request body (empty body → null) and applies the "api"
/// envelope check. On failure `error` holds the ready 400 response.
std::optional<json::Value> parseBody(const net::HttpRequest& req,
                                     net::HttpResponse& error) {
    json::Value doc;
    if (!req.body.empty()) {
        try {
            doc = json::parse(req.body);
        } catch (const Error& e) {
            error = apiBadRequest(e);
            return std::nullopt;
        }
    }
    if (std::optional<net::HttpResponse> mismatch = rejectApiMismatch(doc)) {
        error = std::move(*mismatch);
        return std::nullopt;
    }
    return doc;
}

} // namespace

void registerServiceRoutes(net::HttpServer& server, reason::Service& service,
                           const kb::KnowledgeBase& kb) {
    server.route("POST", "/v1/query", [&service,
                                       &kb](const net::HttpRequest& req) {
        net::HttpResponse error;
        const std::optional<json::Value> doc = parseBody(req, error);
        if (!doc.has_value()) return error;
        reason::QueryRequest request;
        try {
            request = reason::queryRequestFromJson(*doc, kb,
                                                   reason::QueryOptions{},
                                                   /*index=*/0);
        } catch (const Error& e) {
            return apiBadRequest(e);
        }
        const reason::QueryResult result = service.run(request);
        net::HttpResponse resp = apiResponse(
            statusForVerdict(result),
            reason::resultToJson(result, request.options.collectTrace));
        if (resp.status == 429) {
            resp.extraHeaders.push_back({"Retry-After", "1"});
        }
        return resp;
    });

    server.route("POST", "/v1/batch", [&service,
                                       &kb](const net::HttpRequest& req) {
        net::HttpResponse error;
        const std::optional<json::Value> doc = parseBody(req, error);
        if (!doc.has_value()) return error;
        std::vector<reason::QueryRequest> requests;
        try {
            requests = reason::batchRequestsFromJson(*doc, kb,
                                                     /*serviceOptions=*/
                                                     nullptr);
        } catch (const Error& e) {
            return apiBadRequest(e);
        }
        const std::vector<reason::QueryResult> results =
            service.runBatch(requests);
        json::Value report =
            reason::batchReportToJson(results, requests, service);
        report["any_failed_or_infeasible"] =
            reason::anyFailedOrInfeasible(results);
        return apiResponse(200, std::move(report));
    });

    server.route("GET", "/metrics", [](const net::HttpRequest&) {
        net::HttpResponse resp;
        resp.contentType = "text/plain; version=0.0.4";
        resp.body = obs::Registry::global().renderPrometheus();
        return resp;
    });

    server.route("GET", "/healthz", [](const net::HttpRequest&) {
        return net::HttpResponse::text(200, "{\"ok\":true}\n");
    });

    server.route("GET", "/readyz", [&server](const net::HttpRequest&) {
        if (server.draining()) {
            return net::HttpResponse::errorJson(503, "draining",
                                                "shutting down");
        }
        return net::HttpResponse::text(200, "{\"ready\":true}\n");
    });
}

void registerSessionRoutes(net::HttpServer& server,
                           reason::SessionManager& sessions,
                           const kb::KnowledgeBase& kb) {
    server.route("POST", "/v1/session", [&sessions,
                                         &kb](const net::HttpRequest& req) {
        net::HttpResponse error;
        const std::optional<json::Value> doc = parseBody(req, error);
        if (!doc.has_value()) return error;
        reason::Problem problem;
        try {
            if (!doc->isObject() || !doc->asObject().contains("problem")) {
                throw ParseError("session create needs a \"problem\" object");
            }
            problem = reason::problemFromJson(doc->at("problem"), kb);
        } catch (const Error& e) {
            return apiBadRequest(e);
        }
        const reason::SessionManager::CreateResult created =
            sessions.create(problem);
        if (created.shed) {
            net::HttpResponse resp = apiError(
                429, "shed", "session capacity reached or server draining");
            resp.extraHeaders.push_back({"Retry-After", "1"});
            return resp;
        }
        json::Value body;
        body["id"] = created.id;
        body["lease_ttl_ms"] = created.leaseTtlMs;
        body["warm_started"] = created.warmStarted;
        body["warm_start_clauses"] =
            static_cast<std::int64_t>(created.warmStartClauses);
        body["cache_hit"] = created.cacheHit;
        body["compile_ms"] = created.compileMs;
        return apiResponse(200, std::move(body));
    });

    server.route(
        "POST", "/v1/session/{id}/ask",
        [&sessions](const net::HttpRequest& req,
                    const net::HttpServer::RouteParams& params) {
            net::HttpResponse error;
            const std::optional<json::Value> doc = parseBody(req, error);
            if (!doc.has_value()) return error;
            reason::Variation variation;
            try {
                variation = variationFromJson(*doc);
            } catch (const Error& e) {
                return apiBadRequest(e);
            }
            const std::string& id = params.at("id");
            std::optional<reason::SessionManager::AskOutcome> outcome =
                sessions.ask(id, variation);
            if (!outcome.has_value()) {
                return apiError(404, "unknown_session",
                                "no session '" + id +
                                    "' (never created, expired, or closed)");
            }
            // Verdict::Error here means the variation named entities the
            // compilation does not know — a client mistake, not a server
            // failure, so 400 with the offending names in the body.
            const int status =
                outcome->answer.verdict == reason::Verdict::Error ? 400 : 200;
            return apiResponse(
                status, answerToJson(outcome->answer, &outcome->trace));
        });

    server.route(
        "POST", "/v1/session/{id}/renew",
        [&sessions](const net::HttpRequest& req,
                    const net::HttpServer::RouteParams& params) {
            net::HttpResponse error;
            const std::optional<json::Value> doc = parseBody(req, error);
            if (!doc.has_value()) return error;
            const std::string& id = params.at("id");
            if (!sessions.renew(id)) {
                return apiError(404, "unknown_session",
                                "no session '" + id + "' to renew");
            }
            json::Value body;
            body["renewed"] = true;
            body["lease_ttl_ms"] = static_cast<std::int64_t>(
                sessions.options().leaseTtl.count());
            return apiResponse(200, std::move(body));
        });

    server.route("DELETE", "/v1/session/{id}",
                 [&sessions](const net::HttpRequest&,
                             const net::HttpServer::RouteParams& params) {
                     const std::string& id = params.at("id");
                     if (!sessions.close(id)) {
                         return apiError(404, "unknown_session",
                                         "no session '" + id + "' to close");
                     }
                     json::Value body;
                     body["closed"] = true;
                     return apiResponse(200, std::move(body));
                 });
}

} // namespace lar::serve
