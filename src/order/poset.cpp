#include "order/poset.hpp"

#include <algorithm>
#include <deque>
#include <functional>
#include <set>

namespace lar::order {

PreferenceGraph::PreferenceGraph(const kb::KnowledgeBase& kb,
                                 std::string objective)
    : objective_(std::move(objective)) {
    for (const kb::Ordering* o : kb.orderingsFor(objective_)) edges_.push_back(*o);
}

std::vector<const kb::Ordering*> PreferenceGraph::activeEdges(
    const Context& ctx) const {
    std::vector<const kb::Ordering*> out;
    for (const kb::Ordering& e : edges_)
        if (ctx.evaluate(e.condition)) out.push_back(&e);
    return out;
}

bool PreferenceGraph::betterThan(const std::string& a, const std::string& b,
                                 const Context& ctx) const {
    if (a == b) return false;
    // BFS over active edges from a.
    const auto active = activeEdges(ctx);
    std::map<std::string, std::vector<std::string>> adj;
    for (const kb::Ordering* e : active) adj[e->better].push_back(e->worse);
    std::set<std::string> seen{a};
    std::deque<std::string> queue{a};
    while (!queue.empty()) {
        const std::string cur = queue.front();
        queue.pop_front();
        for (const std::string& next : adj[cur]) {
            if (next == b) return true;
            if (seen.insert(next).second) queue.push_back(next);
        }
    }
    return false;
}

bool PreferenceGraph::strictlyBetter(const std::string& a, const std::string& b,
                                     const Context& ctx) const {
    return betterThan(a, b, ctx) && !betterThan(b, a, ctx);
}

bool PreferenceGraph::incomparable(const std::string& a, const std::string& b,
                                   const Context& ctx) const {
    if (a == b) return false;
    return !betterThan(a, b, ctx) && !betterThan(b, a, ctx);
}

std::vector<std::string> PreferenceGraph::maximalElements(
    const std::vector<std::string>& candidates, const Context& ctx) const {
    std::vector<std::string> out;
    for (const std::string& c : candidates) {
        const bool beaten = std::any_of(
            candidates.begin(), candidates.end(), [&](const std::string& other) {
                return other != c && strictlyBetter(other, c, ctx);
            });
        if (!beaten) out.push_back(c);
    }
    return out;
}

std::optional<std::vector<std::string>> PreferenceGraph::findCycle(
    const Context& ctx) const {
    const auto active = activeEdges(ctx);
    std::map<std::string, std::vector<std::string>> adj;
    std::set<std::string> nodes;
    for (const kb::Ordering* e : active) {
        adj[e->better].push_back(e->worse);
        nodes.insert(e->better);
        nodes.insert(e->worse);
    }
    std::map<std::string, int> state; // 0 unseen, 1 active, 2 done
    std::vector<std::string> stack;
    std::optional<std::vector<std::string>> cycle;

    const std::function<bool(const std::string&)> dfs =
        [&](const std::string& node) -> bool {
        state[node] = 1;
        stack.push_back(node);
        for (const std::string& next : adj[node]) {
            if (state[next] == 1) {
                // Extract the cycle from the stack.
                std::vector<std::string> found;
                auto it = std::find(stack.begin(), stack.end(), next);
                for (; it != stack.end(); ++it) found.push_back(*it);
                cycle = std::move(found);
                return true;
            }
            if (state[next] == 0 && dfs(next)) return true;
        }
        stack.pop_back();
        state[node] = 2;
        return false;
    };
    for (const std::string& node : nodes)
        if (state[node] == 0 && dfs(node)) return cycle;
    return std::nullopt;
}

std::vector<const kb::Ordering*> PreferenceGraph::explainPreference(
    const std::string& a, const std::string& b, const Context& ctx) const {
    if (a == b) return {};
    // BFS with parent-edge tracking to reconstruct one witness path.
    const auto active = activeEdges(ctx);
    std::map<std::string, const kb::Ordering*> parentEdge;
    std::set<std::string> seen{a};
    std::deque<std::string> queue{a};
    while (!queue.empty()) {
        const std::string cur = queue.front();
        queue.pop_front();
        for (const kb::Ordering* e : active) {
            if (e->better != cur || seen.count(e->worse) > 0) continue;
            parentEdge[e->worse] = e;
            if (e->worse == b) {
                std::vector<const kb::Ordering*> chain;
                std::string node = b;
                while (node != a) {
                    const kb::Ordering* edge = parentEdge.at(node);
                    chain.push_back(edge);
                    node = edge->better;
                }
                std::reverse(chain.begin(), chain.end());
                return chain;
            }
            seen.insert(e->worse);
            queue.push_back(e->worse);
        }
    }
    return {};
}

std::vector<std::string> PreferenceGraph::systems() const {
    std::set<std::string> names;
    for (const kb::Ordering& e : edges_) {
        names.insert(e.better);
        names.insert(e.worse);
    }
    return {names.begin(), names.end()};
}

std::string PreferenceGraph::toDot(const Context& ctx,
                                   const std::vector<std::string>& restrictTo) const {
    const auto included = [&restrictTo](const std::string& name) {
        return restrictTo.empty() ||
               std::find(restrictTo.begin(), restrictTo.end(), name) !=
                   restrictTo.end();
    };
    std::string out = "digraph \"" + objective_ + "\" {\n";
    out += "  label=\"" + objective_ + "\";\n";
    for (const kb::Ordering* e : activeEdges(ctx)) {
        if (!included(e->better) || !included(e->worse)) continue;
        out += "  \"" + e->better + "\" -> \"" + e->worse + "\"";
        if (!e->condition.isTrivial())
            out += " [label=\"" + e->condition.toString() + "\"]";
        out += ";\n";
    }
    out += "}\n";
    return out;
}

std::vector<std::pair<std::string, std::string>> PreferenceGraph::hasseEdges(
    const Context& ctx) const {
    // Direct active edges whose endpoints have no two-step witness.
    std::set<std::pair<std::string, std::string>> direct;
    for (const kb::Ordering* e : activeEdges(ctx)) direct.insert({e->better, e->worse});
    std::vector<std::pair<std::string, std::string>> hasse;
    for (const auto& [a, b] : direct) {
        if (a == b) continue;
        bool shortcut = false;
        for (const auto& [c, d] : direct) {
            if (c != a || d == b) continue;
            if (betterThan(d, b, ctx)) {
                shortcut = true; // a → d →⁺ b witnesses transitivity
                break;
            }
        }
        if (!shortcut) hasse.emplace_back(a, b);
    }
    return hasse;
}

std::vector<std::vector<std::string>> PreferenceGraph::levels(
    const Context& ctx) const {
    const std::vector<std::string> all = systems();
    // Level of s = length of the longest chain of strictly-better systems.
    std::map<std::string, int> level;
    const std::function<int(const std::string&)> depth =
        [&](const std::string& s) -> int {
        if (const auto it = level.find(s); it != level.end()) return it->second;
        level[s] = 0; // guards conditional cycles
        int best = 0;
        for (const std::string& other : all)
            if (other != s && strictlyBetter(other, s, ctx))
                best = std::max(best, depth(other) + 1);
        level[s] = best;
        return best;
    };
    int maxLevel = 0;
    for (const std::string& s : all) maxLevel = std::max(maxLevel, depth(s));
    std::vector<std::vector<std::string>> out(static_cast<std::size_t>(maxLevel) + 1);
    for (const std::string& s : all)
        out[static_cast<std::size_t>(level[s])].push_back(s);
    return out;
}

std::vector<std::pair<std::string, std::string>> knowledgeGaps(
    const PreferenceGraph& graph, const std::vector<std::string>& candidates,
    const std::vector<Context>& contexts) {
    std::vector<std::pair<std::string, std::string>> gaps;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        for (std::size_t j = i + 1; j < candidates.size(); ++j) {
            const bool alwaysIncomparable = std::all_of(
                contexts.begin(), contexts.end(), [&](const Context& ctx) {
                    return graph.incomparable(candidates[i], candidates[j], ctx);
                });
            if (alwaysIncomparable) gaps.emplace_back(candidates[i], candidates[j]);
        }
    }
    return gaps;
}

} // namespace lar::order
