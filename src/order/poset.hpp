// Conditional preference graph over systems, per objective (Figure 1).
//
// Edges come from the knowledge base's Ordering rules of thumb; each edge is
// active only when its condition holds in the evaluation context. Queries
// (better-than, comparability, maximal elements) operate on the transitive
// closure of the active edges. Incomparability is first-class: the paper
// stresses that rules-of-thumb are incomplete, and "no edge" means "no
// knowledge", not equality.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "kb/kb.hpp"
#include "order/context.hpp"

namespace lar::order {

class PreferenceGraph {
public:
    /// Builds the graph for one objective from the KB's orderings.
    PreferenceGraph(const kb::KnowledgeBase& kb, std::string objective);

    [[nodiscard]] const std::string& objective() const { return objective_; }

    /// Edges whose condition holds under `ctx`.
    [[nodiscard]] std::vector<const kb::Ordering*> activeEdges(
        const Context& ctx) const;

    /// True when `a` is transitively preferred to `b` under `ctx`.
    [[nodiscard]] bool betterThan(const std::string& a, const std::string& b,
                                  const Context& ctx) const;

    /// Preferred in one direction and not the other (guards against cycles
    /// introduced by conditional edges).
    [[nodiscard]] bool strictlyBetter(const std::string& a, const std::string& b,
                                      const Context& ctx) const;

    /// Neither direction is known: a knowledge gap (§3.1 — may warrant a
    /// measurement if it changes the design).
    [[nodiscard]] bool incomparable(const std::string& a, const std::string& b,
                                    const Context& ctx) const;

    /// Subset of `candidates` not strictly beaten by another candidate.
    [[nodiscard]] std::vector<std::string> maximalElements(
        const std::vector<std::string>& candidates, const Context& ctx) const;

    /// A preference cycle under `ctx` (contradictory rules of thumb), if any.
    [[nodiscard]] std::optional<std::vector<std::string>> findCycle(
        const Context& ctx) const;

    /// Why is `a` preferred to `b`? The chain of orderings (with their
    /// sources and any disputes) forming one active path a → … → b; empty
    /// when `a` is not transitively better than `b` under `ctx`.
    [[nodiscard]] std::vector<const kb::Ordering*> explainPreference(
        const std::string& a, const std::string& b, const Context& ctx) const;

    /// All systems mentioned by this objective's orderings.
    [[nodiscard]] std::vector<std::string> systems() const;

    /// Graphviz rendering of the active edges (Figure-1 style). When
    /// `restrictTo` is non-empty, only edges between the listed systems are
    /// rendered (e.g. just the six Figure-1 stacks).
    [[nodiscard]] std::string toDot(
        const Context& ctx, const std::vector<std::string>& restrictTo = {}) const;

    /// Hasse edges under `ctx`: the transitive reduction of the active
    /// preference relation (an edge a→b survives only when no intermediate
    /// c has a→c→b). This is the clutter-free Figure-1 view.
    [[nodiscard]] std::vector<std::pair<std::string, std::string>> hasseEdges(
        const Context& ctx) const;

    /// Systems ranked into levels by longest path from a maximal element
    /// (level 0 = best). Incomparable systems share a level.
    [[nodiscard]] std::vector<std::vector<std::string>> levels(
        const Context& ctx) const;

private:
    std::string objective_;
    std::vector<kb::Ordering> edges_;
};

/// All pairs of distinct `candidates` that are incomparable under every one
/// of the provided contexts — the knowledge gaps worth measuring.
[[nodiscard]] std::vector<std::pair<std::string, std::string>> knowledgeGaps(
    const PreferenceGraph& graph, const std::vector<std::string>& candidates,
    const std::vector<Context>& contexts);

} // namespace lar::order
