// A concrete deployment context for evaluating ordering conditions.
//
// Figure 1's edges are conditional ("network load ≥ 40 Gbps", "if Pony
// enabled"). Given a fully-specified context — chosen hardware models,
// deployed systems, facts, enabled options, and workload properties — every
// Requirement condition evaluates to a definite boolean.
#pragma once

#include <map>
#include <set>
#include <string>

#include "kb/hardware.hpp"
#include "kb/requirement.hpp"

namespace lar::order {

struct Context {
    /// Chosen hardware model per class (absent class → Hardware* nodes on it
    /// evaluate false).
    std::map<kb::HardwareClass, const kb::HardwareSpec*> hardware;
    std::set<std::string> presentSystems;
    std::set<std::string> facts;
    std::set<std::string> options;
    std::set<std::string> workloadProperties;

    /// Evaluates `requirement` under this context.
    [[nodiscard]] bool evaluate(const kb::Requirement& requirement) const;
};

} // namespace lar::order
