#include "order/context.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace lar::order {

bool Context::evaluate(const kb::Requirement& r) const {
    using Kind = kb::Requirement::Kind;
    switch (r.kind()) {
        case Kind::True: return true;
        case Kind::False: return false;
        case Kind::And:
            return std::all_of(r.children().begin(), r.children().end(),
                               [this](const kb::Requirement& c) { return evaluate(c); });
        case Kind::Or:
            return std::any_of(r.children().begin(), r.children().end(),
                               [this](const kb::Requirement& c) { return evaluate(c); });
        case Kind::Not: return !evaluate(r.children()[0]);
        case Kind::HardwareHas: {
            const auto it = hardware.find(r.hwClass());
            if (it == hardware.end() || it->second == nullptr) return false;
            return it->second->boolAttr(r.key()).value_or(false);
        }
        case Kind::HardwareCmp: {
            const auto it = hardware.find(r.hwClass());
            if (it == hardware.end() || it->second == nullptr) return false;
            const auto num = it->second->numAttr(r.key());
            if (!num.has_value()) return false;
            return kb::applyCmp(r.op(), *num, r.value());
        }
        case Kind::SystemPresent: return presentSystems.count(r.key()) > 0;
        case Kind::FactTrue: return facts.count(r.key()) > 0;
        case Kind::OptionTrue: return options.count(r.key()) > 0;
        case Kind::WorkloadHas: return workloadProperties.count(r.key()) > 0;
    }
    return false;
}

} // namespace lar::order
