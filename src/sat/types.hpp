// Core SAT types: variables, literals, and the three-valued lbool.
//
// Follows the MiniSat conventions: a variable is a dense non-negative index;
// a literal packs (variable, sign) into one int so literal-indexed arrays
// (watch lists, seen flags) are contiguous.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace lar::sat {

/// Variable index, 0-based and dense.
using Var = std::int32_t;

constexpr Var kUndefVar = -1;

/// A literal: variable plus sign. index() == 2*var + (negated ? 1 : 0).
class Lit {
public:
    constexpr Lit() : code_(-2) {}
    constexpr Lit(Var v, bool negated) : code_(2 * v + (negated ? 1 : 0)) {}

    /// The underlying variable.
    [[nodiscard]] constexpr Var var() const { return code_ >> 1; }
    /// True for a negative literal (¬x).
    [[nodiscard]] constexpr bool sign() const { return (code_ & 1) != 0; }
    /// Dense index usable for literal-indexed arrays.
    [[nodiscard]] constexpr std::int32_t index() const { return code_; }

    /// Negation.
    [[nodiscard]] constexpr Lit operator~() const { return fromIndex(code_ ^ 1); }

    constexpr bool operator==(const Lit& o) const = default;
    constexpr auto operator<=>(const Lit& o) const = default;

    [[nodiscard]] constexpr bool isDefined() const { return code_ >= 0; }

    /// Rebuilds a literal from its dense index.
    static constexpr Lit fromIndex(std::int32_t idx) {
        Lit l;
        l.code_ = idx;
        return l;
    }

    /// 1-based DIMACS form: +v+1 or -(v+1).
    [[nodiscard]] int toDimacs() const { return sign() ? -(var() + 1) : (var() + 1); }

    [[nodiscard]] std::string toString() const {
        return (sign() ? "~x" : "x") + std::to_string(var());
    }

private:
    std::int32_t code_;
};

constexpr Lit kUndefLit{};

/// Positive literal of `v`.
constexpr Lit mkLit(Var v) { return Lit(v, false); }
/// Literal of `v` with explicit sign; negated==true yields ¬v.
constexpr Lit mkLit(Var v, bool negated) { return Lit(v, negated); }

/// Three-valued boolean.
enum class lbool : std::uint8_t { False = 0, True = 1, Undef = 2 };

constexpr lbool fromBool(bool b) { return b ? lbool::True : lbool::False; }

/// Negation on lbool; Undef is a fixed point.
constexpr lbool operator~(lbool v) {
    if (v == lbool::Undef) return lbool::Undef;
    return v == lbool::True ? lbool::False : lbool::True;
}

} // namespace lar::sat

template <>
struct std::hash<lar::sat::Lit> {
    std::size_t operator()(const lar::sat::Lit& l) const noexcept {
        return std::hash<std::int32_t>()(l.index());
    }
};
