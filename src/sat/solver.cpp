#include "sat/solver.hpp"

#include <algorithm>

#include "sat/simplify/simplify.hpp"
#include "util/error.hpp"

namespace lar::sat {

const char* toString(StopReason reason) {
    switch (reason) {
    case StopReason::None: return "none";
    case StopReason::ConflictBudget: return "conflict_budget";
    case StopReason::PropagationBudget: return "propagation_budget";
    case StopReason::MemoryBudget: return "memory_budget";
    case StopReason::Deadline: return "deadline";
    case StopReason::Cancelled: return "cancelled";
    }
    return "none";
}

const char* toString(SimplifyStop stop) {
    switch (stop) {
    case SimplifyStop::None: return "none";
    case SimplifyStop::Ticks: return "ticks";
    case SimplifyStop::Memory: return "memory";
    }
    return "none";
}

// ---------------------------------------------------------------------------
// Variable / clause creation
// ---------------------------------------------------------------------------

Var Solver::newVar() {
    const Var v = static_cast<Var>(assigns_.size());
    assigns_.push_back(lbool::Undef);
    varData_.push_back({});
    if (opts_.randomSeed == 0) {
        polarity_.push_back(1); // default phase: assign false first
    } else {
        // Deterministic per-(seed, var) phase: splitmix64 of the pair.
        std::uint64_t state =
            opts_.randomSeed ^ (static_cast<std::uint64_t>(v) * 0x9e3779b97f4a7c15ULL);
        state += 0x9e3779b97f4a7c15ULL;
        std::uint64_t z = state;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        polarity_.push_back(static_cast<char>((z ^ (z >> 31)) & 1));
    }
    activity_.push_back(0.0);
    heapIndex_.push_back(-1);
    seen_.push_back(0);
    frozen_.push_back(0);
    eliminated_.push_back(0);
    watches_.emplace_back();
    watches_.emplace_back();
    binWatches_.emplace_back();
    binWatches_.emplace_back();
    heapInsert(v);
    return v;
}

bool Solver::addClause(std::vector<Lit> lits) {
    expects(decisionLevel() == 0, "addClause: only valid at decision level 0");
    ++addClauseCalls_;
    if (!ok_) return false;
    // A new clause may mention a variable that bounded elimination removed:
    // re-activate it (and transitively, anything its stashed clauses mention)
    // before integrating the clause, so incremental growth stays sound.
    if (numEliminated_ > 0) restoreForLits(lits);
    if (!ok_) return false;
    return addClauseInternal(std::move(lits));
}

bool Solver::addClauseInternal(std::vector<Lit> lits) {
    if (!ok_) return false;

    // Simplify: sort, drop duplicates and false literals, detect tautologies
    // and literals already true at level 0.
    std::sort(lits.begin(), lits.end());
    std::vector<Lit>& out = simplifyScratch_;
    out.clear();
    Lit prev = kUndefLit;
    for (const Lit l : lits) {
        expects(l.var() >= 0 && l.var() < numVars(), "addClause: unknown variable");
        if (l == prev) continue;
        if (prev.isDefined() && l == ~prev) return true; // tautology: x ∨ ¬x
        const lbool v = value(l);
        if (v == lbool::True) return true; // satisfied at level 0
        if (v == lbool::False) continue;   // falsified at level 0: drop
        out.push_back(l);
        prev = l;
    }

    if (out.empty()) {
        ok_ = false;
        return false;
    }
    if (out.size() == 1) {
        if (!enqueue(out[0], Reason::none())) {
            ok_ = false;
            return false;
        }
        ok_ = !propagate().found();
        return ok_;
    }

    storeClause(out, /*learnt=*/false, /*lbd=*/0);
    return true;
}

void Solver::storeClause(std::span<const Lit> lits, bool learnt, int lbd) {
    expects(lits.size() >= 2, "storeClause: clause too short");
    if (lits.size() == 2) {
        attachBinary(lits[0], lits[1], learnt);
        return;
    }
    const ClauseRef ref = arena_.alloc(lits, learnt, lbd);
    (learnt ? learnts_ : clauses_).push_back(ref);
    attachClause(ref);
    if (learnt) learntBytes_ += arena_.footprintBytes(ref);
}

void Solver::attachClause(ClauseRef ref) {
    expects(arena_.size(ref) >= 3, "attachClause: binaries live in the graph");
    const Lit c0 = arena_.lit(ref, 0);
    const Lit c1 = arena_.lit(ref, 1);
    watches_[static_cast<std::size_t>((~c0).index())].push_back({ref, c1});
    watches_[static_cast<std::size_t>((~c1).index())].push_back({ref, c0});
}

void Solver::detachClause(ClauseRef ref) {
    for (const Lit w : {arena_.lit(ref, 0), arena_.lit(ref, 1)}) {
        auto& list = watches_[static_cast<std::size_t>((~w).index())];
        auto it = std::find_if(list.begin(), list.end(),
                               [ref](const Watcher& wt) { return wt.ref == ref; });
        if (it != list.end()) {
            *it = list.back();
            list.pop_back();
        }
    }
}

void Solver::attachBinary(Lit a, Lit b, bool learnt) {
    // Clause (a ∨ b): each literal's falsification list gets the other side.
    binWatches_[static_cast<std::size_t>((~a).index())].push_back(
        {b, learnt ? 1u : 0u});
    binWatches_[static_cast<std::size_t>((~b).index())].push_back(
        {a, learnt ? 1u : 0u});
    ++stats_.binaryClauses;
    if (learnt)
        learntBytes_ += kBinaryBytes;
    else
        ++binaryProblem_;
}

// ---------------------------------------------------------------------------
// Trail management
// ---------------------------------------------------------------------------

bool Solver::enqueue(Lit l, Reason from) {
    const lbool v = value(l);
    if (v != lbool::Undef) return v == lbool::True;
    assigns_[static_cast<std::size_t>(l.var())] = fromBool(!l.sign());
    varData_[static_cast<std::size_t>(l.var())] = {from, decisionLevel()};
    trail_.push_back(l);
    return true;
}

void Solver::newDecisionLevel(Lit decision) {
    trailLim_.push_back(static_cast<int>(trail_.size()));
    frames_.push_back({decision, false});
    stats_.maxDecisionLevel = std::max(
        stats_.maxDecisionLevel, static_cast<std::uint64_t>(decisionLevel()));
}

void Solver::backtrackTo(int level) {
    if (decisionLevel() <= level) return;
    const int limit = trailLim_[static_cast<std::size_t>(level)];
    for (int i = static_cast<int>(trail_.size()) - 1; i >= limit; --i) {
        const Var v = trail_[static_cast<std::size_t>(i)].var();
        if (opts_.usePhaseSaving)
            polarity_[static_cast<std::size_t>(v)] =
                trail_[static_cast<std::size_t>(i)].sign() ? 1 : 0;
        assigns_[static_cast<std::size_t>(v)] = lbool::Undef;
        varData_[static_cast<std::size_t>(v)].reason = Reason::none();
        if (heapIndex_[static_cast<std::size_t>(v)] < 0) heapInsert(v);
    }
    trail_.resize(static_cast<std::size_t>(limit));
    trailLim_.resize(static_cast<std::size_t>(level));
    frames_.resize(static_cast<std::size_t>(level));
    qhead_ = trail_.size();
}

// ---------------------------------------------------------------------------
// Propagation
// ---------------------------------------------------------------------------

Solver::Conflict Solver::propagate() {
    Conflict conflict;
    while (qhead_ < trail_.size()) {
        // Long propagation streaks between decisions/conflicts must still
        // honour budgets, the deadline, and cancellation: poll every 1024
        // propagations (and exactly at the propagation budget) and let
        // search() unwind via pendingStop_. The poll runs BEFORE the literal
        // is dequeued so an interrupted propagation keeps its queue position:
        // at decision level 0 backtrackTo(0) cannot rewind qhead_, so a
        // literal dequeued-but-unprocessed here would never have its watchers
        // examined again, and an incremental re-solve (the anytime paths)
        // could report Sat against an unpropagated clause.
        if ((propagationLimit_ >= 0 &&
             static_cast<std::int64_t>(stats_.propagations) >=
                 propagationLimit_) ||
            (stats_.propagations & 1023U) == 0) {
            const StopReason stop = limitExceeded();
            if (stop != StopReason::None) {
                pendingStop_ = stop;
                return conflict;
            }
        }
        const Lit p = trail_[qhead_++];
        ++stats_.propagations;

        // Binary pass first: every entry here is a complete implication
        // (clause ¬p ∨ other) — no blocker probing, no watch migration, and
        // a false `other` is immediately a conflict.
        for (const BinWatcher& bw :
             binWatches_[static_cast<std::size_t>(p.index())]) {
            const lbool v = value(bw.other);
            if (v == lbool::True) continue;
            if (v == lbool::False) {
                conflict.binA = ~p;
                conflict.binB = bw.other;
                qhead_ = trail_.size();
                return conflict;
            }
            enqueue(bw.other, Reason::binary(~p));
        }

        auto& list = watches_[static_cast<std::size_t>(p.index())];
        std::size_t keep = 0;
        std::size_t i = 0;
        for (; i < list.size(); ++i) {
            const Watcher w = list[i];
            // Fast path: blocker already true — the clause is satisfied
            // without touching its arena words.
            if (value(w.blocker) == lbool::True) {
                list[keep++] = w;
                continue;
            }
            const ClauseRef cr = w.ref;
            const Lit falseLit = ~p;
            // Normalize: put the falsified watch at position 1.
            if (arena_.lit(cr, 0) == falseLit) arena_.swapLits(cr, 0, 1);
            const Lit first = arena_.lit(cr, 0);
            if (first != w.blocker && value(first) == lbool::True) {
                list[keep++] = {cr, first};
                continue;
            }
            // Look for a new literal to watch.
            bool found = false;
            const std::uint32_t size = arena_.size(cr);
            for (std::uint32_t k = 2; k < size; ++k) {
                if (value(arena_.lit(cr, k)) != lbool::False) {
                    arena_.swapLits(cr, 1, k);
                    watches_[static_cast<std::size_t>((~arena_.lit(cr, 1)).index())]
                        .push_back({cr, first});
                    found = true;
                    break;
                }
            }
            if (found) continue;
            // Clause is unit or conflicting.
            list[keep++] = {cr, first};
            if (value(first) == lbool::False) {
                conflict.ref = cr;
                qhead_ = trail_.size();
                // Copy the remaining watchers and stop.
                for (++i; i < list.size(); ++i) list[keep++] = list[i];
                break;
            }
            enqueue(first, Reason::clause(cr));
        }
        list.resize(keep);
        if (conflict.found()) break;
    }
    return conflict;
}

// ---------------------------------------------------------------------------
// Conflict analysis (1UIP + minimization)
// ---------------------------------------------------------------------------

int Solver::computeLbd(const std::vector<Lit>& lits) {
    // Number of distinct decision levels among the literals.
    std::vector<int> levels;
    levels.reserve(lits.size());
    for (const Lit l : lits) levels.push_back(levelOf(l.var()));
    std::sort(levels.begin(), levels.end());
    return static_cast<int>(
        std::unique(levels.begin(), levels.end()) - levels.begin());
}

void Solver::analyze(const Conflict& conflict, std::vector<Lit>& learnt,
                     int& backtrackLevel, int& lbd) {
    learnt.clear();
    learnt.push_back(kUndefLit); // slot for the asserting literal
    int counter = 0;             // literals at the current level still to resolve
    Lit p = kUndefLit;
    std::size_t trailIndex = trail_.size();

    const auto visit = [&](Lit q) {
        const Var v = q.var();
        if (seen_[static_cast<std::size_t>(v)] || levelOf(v) == 0) return;
        seen_[static_cast<std::size_t>(v)] = 1;
        varBumpActivity(v);
        if (levelOf(v) >= decisionLevel()) {
            ++counter;
        } else {
            learnt.push_back(q);
        }
    };
    // Resolve with one reason side: an arena clause (its first literal is the
    // implied one, skipped) or the single other literal of a binary clause.
    const auto resolveWith = [&](Reason r) {
        if (r.isBinary()) {
            visit(r.otherLit());
            return;
        }
        expects(r.isClause(), "analyze: missing reason clause");
        const ClauseRef cr = r.ref();
        if (arena_.learnt(cr)) clauseBumpActivity(cr);
        const std::uint32_t size = arena_.size(cr);
        for (std::uint32_t i = 1; i < size; ++i) visit(arena_.lit(cr, i));
    };

    // Seed with the conflicting clause (all of its literals).
    if (conflict.isBinary()) {
        visit(conflict.binA);
        visit(conflict.binB);
    } else {
        const ClauseRef cr = conflict.ref;
        if (arena_.learnt(cr)) clauseBumpActivity(cr);
        const std::uint32_t size = arena_.size(cr);
        for (std::uint32_t i = 0; i < size; ++i) visit(arena_.lit(cr, i));
    }

    while (true) {
        // Select the next literal on the trail to resolve on.
        while (!seen_[static_cast<std::size_t>(trail_[trailIndex - 1].var())])
            --trailIndex;
        --trailIndex;
        p = trail_[trailIndex];
        const Reason reason = reasonOf(p.var());
        seen_[static_cast<std::size_t>(p.var())] = 0;
        if (--counter == 0) break; // p is the first UIP
        resolveWith(reason);
    }
    learnt[0] = ~p;

    // Minimize: drop literals implied by the rest of the learned clause.
    analyzeToClear_.assign(learnt.begin(), learnt.end());
    std::uint32_t abstractLevels = 0;
    for (std::size_t i = 1; i < learnt.size(); ++i)
        abstractLevels |= abstractLevel(learnt[i].var());
    std::size_t keep = 1;
    for (std::size_t i = 1; i < learnt.size(); ++i) {
        if (reasonOf(learnt[i].var()).isNone() ||
            !litRedundant(learnt[i], abstractLevels))
            learnt[keep++] = learnt[i];
    }
    learnt.resize(keep);
    for (const Lit l : analyzeToClear_) seen_[static_cast<std::size_t>(l.var())] = 0;

    // Compute the backtrack level: highest level below the current one.
    if (learnt.size() == 1) {
        backtrackLevel = 0;
    } else {
        std::size_t maxIdx = 1;
        for (std::size_t i = 2; i < learnt.size(); ++i)
            if (levelOf(learnt[i].var()) > levelOf(learnt[maxIdx].var())) maxIdx = i;
        std::swap(learnt[1], learnt[maxIdx]);
        backtrackLevel = levelOf(learnt[1].var());
    }
    lbd = computeLbd(learnt);
    stats_.learntLiterals += learnt.size();
    stats_.lbdSum += static_cast<std::uint64_t>(lbd);
}

bool Solver::litRedundant(Lit l, std::uint32_t abstractLevels) {
    analyzeStack_.clear();
    analyzeStack_.push_back(l);
    const std::size_t clearTop = analyzeToClear_.size();
    // Antecedent check shared by both reason kinds; false → not redundant.
    const auto follow = [&](Lit q) {
        const Var v = q.var();
        if (seen_[static_cast<std::size_t>(v)] || levelOf(v) == 0) return true;
        if (!reasonOf(v).isNone() && (abstractLevel(v) & abstractLevels) != 0) {
            seen_[static_cast<std::size_t>(v)] = 1;
            analyzeStack_.push_back(q);
            analyzeToClear_.push_back(q);
            return true;
        }
        return false;
    };
    const auto abort = [&] {
        // Not redundant: undo the marks added during this call.
        for (std::size_t j = clearTop; j < analyzeToClear_.size(); ++j)
            seen_[static_cast<std::size_t>(analyzeToClear_[j].var())] = 0;
        analyzeToClear_.resize(clearTop);
        return false;
    };
    while (!analyzeStack_.empty()) {
        const Lit cur = analyzeStack_.back();
        analyzeStack_.pop_back();
        const Reason reason = reasonOf(cur.var());
        expects(!reason.isNone(), "litRedundant: literal without reason");
        if (reason.isBinary()) {
            if (!follow(reason.otherLit())) return abort();
            continue;
        }
        const ClauseRef cr = reason.ref();
        const std::uint32_t size = arena_.size(cr);
        for (std::uint32_t i = 1; i < size; ++i) {
            if (!follow(arena_.lit(cr, i))) return abort();
        }
    }
    return true;
}

void Solver::analyzeFinal(Lit falsifiedAssumption) {
    core_.clear();
    core_.push_back(falsifiedAssumption);
    if (decisionLevel() == 0) return;
    seen_[static_cast<std::size_t>(falsifiedAssumption.var())] = 1;
    const auto mark = [&](Var v) {
        if (levelOf(v) > 0) seen_[static_cast<std::size_t>(v)] = 1;
    };
    for (int i = static_cast<int>(trail_.size()) - 1;
         i >= trailLim_[0]; --i) {
        const Var x = trail_[static_cast<std::size_t>(i)].var();
        if (!seen_[static_cast<std::size_t>(x)]) continue;
        const Reason reason = reasonOf(x);
        if (reason.isNone()) {
            // A decision: under assumptions-first ordering this is an
            // assumption literal contributing to the failure.
            core_.push_back(trail_[static_cast<std::size_t>(i)]);
        } else if (reason.isBinary()) {
            mark(reason.otherLit().var());
        } else {
            const ClauseRef cr = reason.ref();
            const std::uint32_t size = arena_.size(cr);
            for (std::uint32_t k = 1; k < size; ++k) mark(arena_.lit(cr, k).var());
        }
        seen_[static_cast<std::size_t>(x)] = 0;
    }
    seen_[static_cast<std::size_t>(falsifiedAssumption.var())] = 0;
}

// ---------------------------------------------------------------------------
// Activity
// ---------------------------------------------------------------------------

void Solver::varBumpActivity(Var v) {
    auto& act = activity_[static_cast<std::size_t>(v)];
    act += varInc_;
    if (act > 1e100) {
        for (auto& a : activity_) a *= 1e-100;
        varInc_ *= 1e-100;
    }
    if (heapIndex_[static_cast<std::size_t>(v)] >= 0) heapUpdate(v);
}

void Solver::varDecayActivity() { varInc_ /= opts_.varDecay; }

void Solver::clauseBumpActivity(ClauseRef ref) {
    arena_.setActivity(ref, arena_.activity(ref) + static_cast<float>(claInc_));
    if (arena_.activity(ref) > 1e20f) {
        for (const ClauseRef l : learnts_)
            arena_.setActivity(l, arena_.activity(l) * 1e-20f);
        claInc_ *= 1e-20;
    }
}

void Solver::clauseDecayActivity() { claInc_ /= opts_.clauseDecay; }

// ---------------------------------------------------------------------------
// Order heap
// ---------------------------------------------------------------------------

void Solver::heapInsert(Var v) {
    heapIndex_[static_cast<std::size_t>(v)] = static_cast<int>(heap_.size());
    heap_.push_back(v);
    heapSiftUp(heap_.size() - 1);
}

void Solver::heapUpdate(Var v) {
    heapSiftUp(static_cast<std::size_t>(heapIndex_[static_cast<std::size_t>(v)]));
}

Var Solver::heapPopMax() {
    const Var top = heap_[0];
    heapIndex_[static_cast<std::size_t>(top)] = -1;
    heap_[0] = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
        heapIndex_[static_cast<std::size_t>(heap_[0])] = 0;
        heapSiftDown(0);
    }
    return top;
}

void Solver::heapSiftUp(std::size_t i) {
    const Var v = heap_[i];
    while (i > 0) {
        const std::size_t parent = (i - 1) / 2;
        if (!heapLess(heap_[parent], v)) break;
        heap_[i] = heap_[parent];
        heapIndex_[static_cast<std::size_t>(heap_[i])] = static_cast<int>(i);
        i = parent;
    }
    heap_[i] = v;
    heapIndex_[static_cast<std::size_t>(v)] = static_cast<int>(i);
}

void Solver::heapSiftDown(std::size_t i) {
    const Var v = heap_[i];
    while (true) {
        std::size_t child = 2 * i + 1;
        if (child >= heap_.size()) break;
        if (child + 1 < heap_.size() && heapLess(heap_[child], heap_[child + 1]))
            ++child;
        if (!heapLess(v, heap_[child])) break;
        heap_[i] = heap_[child];
        heapIndex_[static_cast<std::size_t>(heap_[i])] = static_cast<int>(i);
        i = child;
    }
    heap_[i] = v;
    heapIndex_[static_cast<std::size_t>(v)] = static_cast<int>(i);
}

// ---------------------------------------------------------------------------
// Learned-clause database reduction + arena compaction
// ---------------------------------------------------------------------------

void Solver::reduceLearntDb() {
    // Sort worst-first: high LBD, then low activity. Binary learnt clauses
    // live in the implication graph, not in learnts_, so they are never
    // reduced — same policy as keeping glue (LBD <= 2) clauses forever.
    std::vector<ClauseRef> sorted = learnts_;
    std::sort(sorted.begin(), sorted.end(), [this](ClauseRef a, ClauseRef b) {
        if (arena_.lbd(a) != arena_.lbd(b)) return arena_.lbd(a) > arena_.lbd(b);
        return arena_.activity(a) < arena_.activity(b);
    });

    std::size_t removed = 0;
    const std::size_t target = learnts_.size() / 2;
    for (const ClauseRef ref : sorted) {
        if (removed >= target) break;
        if (arena_.lbd(ref) <= 2 || lockedReason(ref)) continue;
        detachClause(ref);
        learntBytes_ -= arena_.footprintBytes(ref);
        arena_.free(ref);
        ++removed;
    }
    // free() marked them; drop the refs (the words wait for compaction).
    std::erase_if(learnts_,
                  [this](ClauseRef ref) { return arena_.deleted(ref); });
    stats_.removedClauses += removed;
}

void Solver::garbageCollect() {
    // Every live clause is reachable from clauses_/learnts_ (attach always
    // registers there), so relocating those lists establishes every
    // forwarding ref; watchers and trail reasons then rewrite via forward().
    // Freed clauses are never a watcher (detach before free) nor a reason
    // (reduceLearntDb skips locked clauses; removeSatisfiedAtLevelZero
    // clears level-0 trail reasons before freeing), so nothing dangles.
    ClauseArena to;
    to.reserveWords(arena_.liveWords());
    for (ClauseRef& ref : clauses_) ref = arena_.relocate(ref, to);
    for (ClauseRef& ref : learnts_) ref = arena_.relocate(ref, to);
    for (auto& list : watches_)
        for (Watcher& w : list) w.ref = arena_.forward(w.ref);
    for (const Lit l : trail_) {
        Reason& r = varData_[static_cast<std::size_t>(l.var())].reason;
        if (r.isClause()) r = Reason::clause(arena_.forward(r.ref()));
    }
    arena_ = std::move(to);
    ++stats_.arenaGcs;
}

void Solver::maybeGarbageCollect() {
    if (arena_.wastedWords() > 0 &&
        static_cast<double>(arena_.wastedWords()) >=
            kGcWasteFraction * static_cast<double>(arena_.totalWords()))
        garbageCollect();
}

void Solver::removeSatisfiedAtLevelZero() {
    expects(decisionLevel() == 0, "removeSatisfied: requires level 0");
    // The whole trail is level 0 here; level-0 facts never participate in
    // conflict analysis again, so their reasons can be dropped. This is what
    // makes freeing a satisfied clause safe: nothing references it anymore.
    for (const Lit l : trail_)
        varData_[static_cast<std::size_t>(l.var())].reason = Reason::none();

    const auto satisfied = [this](ClauseRef ref) {
        const std::uint32_t size = arena_.size(ref);
        for (std::uint32_t i = 0; i < size; ++i)
            if (value(arena_.lit(ref, i)) == lbool::True) return true;
        return false;
    };
    for (auto* vec : {&clauses_, &learnts_}) {
        std::erase_if(*vec, [&](ClauseRef ref) {
            if (!satisfied(ref)) return false;
            detachClause(ref);
            if (arena_.learnt(ref)) learntBytes_ -= arena_.footprintBytes(ref);
            arena_.free(ref);
            return true;
        });
    }

    // Sweep the binary implication graph: entry {other} in list j belongs to
    // the clause (¬Lit(j) ∨ other); both mirrored entries of a satisfied
    // clause meet the same predicate, so entry counts stay even.
    std::size_t removedProblem = 0;
    std::size_t removedLearnt = 0;
    for (std::size_t j = 0; j < binWatches_.size(); ++j) {
        const Lit w = Lit::fromIndex(static_cast<std::int32_t>(j));
        std::erase_if(binWatches_[j], [&](const BinWatcher& bw) {
            if (value(~w) != lbool::True && value(bw.other) != lbool::True)
                return false;
            ++(bw.learnt != 0 ? removedLearnt : removedProblem);
            return true;
        });
    }
    stats_.binaryClauses -= (removedProblem + removedLearnt) / 2;
    binaryProblem_ -= removedProblem / 2;
    learntBytes_ -= (removedLearnt / 2) * kBinaryBytes;

    maybeGarbageCollect();
}

bool Solver::importSharedClauses() {
    expects(decisionLevel() == 0, "importSharedClauses: requires level 0");
    if (!ok_) return false;
    importScratch_.clear();
    opts_.importClausesFn(importScratch_);
    std::vector<Lit>& out = simplifyScratch_;
    for (ImportedClause& imp : importScratch_) {
        // Same simplification as addClause, but a rejected clause (satisfied,
        // tautological, or from a diverged variable space) is just skipped.
        // Clauses mentioning a variable this solver eliminated are skipped
        // too: learnt clauses must never resurrect an eliminated variable.
        std::sort(imp.lits.begin(), imp.lits.end());
        out.clear();
        bool skip = imp.lits.empty();
        Lit prev = kUndefLit;
        for (const Lit l : imp.lits) {
            if (l.var() < 0 || l.var() >= numVars() ||
                eliminated_[static_cast<std::size_t>(l.var())] != 0) {
                skip = true;
                break;
            }
            if (l == prev) continue;
            if (prev.isDefined() && l == ~prev) { // tautology: x ∨ ¬x
                skip = true;
                break;
            }
            const lbool v = value(l);
            if (v == lbool::True) { // already satisfied at level 0
                skip = true;
                break;
            }
            if (v == lbool::False) continue; // falsified at level 0: drop
            out.push_back(l);
            prev = l;
        }
        if (skip) continue;
        ++stats_.importedClauses;
        if (out.empty()) { // empty under the level-0 assignment: Unsat
            ok_ = false;
            return false;
        }
        if (out.size() == 1) {
            if (!enqueue(out[0], Reason::none())) {
                ok_ = false;
                return false;
            }
            continue; // propagated by the next propagate() call
        }
        storeClause(out, /*learnt=*/true,
                    std::clamp(imp.lbd, 2, static_cast<int>(out.size())));
    }
    return true;
}

// ---------------------------------------------------------------------------
// Warm-start snapshots
// ---------------------------------------------------------------------------

void Solver::markSnapshotBaseline() {
    baselineVars_ = numVars();
    baselineClauseCalls_ = addClauseCalls_;
}

SolverSnapshot Solver::exportSnapshot(std::size_t maxClauses) const {
    SolverSnapshot snap;
    // Refuse when no baseline was marked, when any addClause() happened after
    // it (the invocation counter also catches unit and satisfied clauses that
    // never reach clauses_, e.g. optimization bound assertions), or when the
    // solver is already Unsat at level 0.
    if (baselineVars_ < 0 || addClauseCalls_ != baselineClauseCalls_ || !ok_)
        return snap;

    const auto baseline = static_cast<std::size_t>(baselineVars_);
    snap.numVars = static_cast<int>(baseline);
    snap.polarity.assign(polarity_.begin(),
                         polarity_.begin() + static_cast<std::ptrdiff_t>(
                                                 std::min(baseline, polarity_.size())));
    snap.polarity.resize(baseline, 0);

    // Normalize activities so the importer is immune to this solver's rescale
    // epoch (varInc_ grows geometrically and is rescaled at 1e100).
    snap.activity.resize(baseline, 0.0);
    double maxActivity = 0.0;
    for (std::size_t v = 0; v < baseline && v < activity_.size(); ++v)
        maxActivity = std::max(maxActivity, activity_[v]);
    if (maxActivity > 0.0) {
        for (std::size_t v = 0; v < baseline && v < activity_.size(); ++v)
            snap.activity[v] = activity_[v] / maxActivity;
    }

    // Level-0 trail literals are facts derived from the problem clauses alone
    // (assumptions only ever sit at levels >= 1) — export them as units.
    const std::size_t levelZeroEnd =
        trailLim_.empty() ? trail_.size()
                          : static_cast<std::size_t>(trailLim_[0]);
    for (std::size_t i = 0; i < levelZeroEnd; ++i) {
        const Lit l = trail_[i];
        if (static_cast<std::size_t>(l.var()) >= baseline) continue;
        if (snap.clauses.size() >= maxClauses) return snap;
        snap.clauses.push_back(ImportedClause{{l}, 1});
    }

    // Short learnt clauses, same quality filter as portfolio exchange. Learnt
    // clauses can mention assumption-compilation variables created after the
    // baseline; those are meaningless in a fresh replay, so skip them.
    for (const ClauseRef ref : learnts_) {
        if (snap.clauses.size() >= maxClauses) break;
        const int lbd = arena_.lbd(ref);
        const std::uint32_t size = arena_.size(ref);
        if (lbd > opts_.shareLbdMax &&
            static_cast<int>(size) > opts_.shareSizeMax)
            continue;
        ImportedClause imp;
        imp.lbd = lbd;
        imp.lits.reserve(size);
        bool inBaseline = true;
        for (std::uint32_t i = 0; i < size; ++i) {
            const Lit l = arena_.lit(ref, i);
            if (static_cast<std::size_t>(l.var()) >= baseline) {
                inBaseline = false;
                break;
            }
            imp.lits.push_back(l);
        }
        if (!inBaseline) continue;
        snap.clauses.push_back(std::move(imp));
    }

    // Learnt binaries export straight from the implication graph: the entry
    // {other} in list j is the clause (¬Lit(j) ∨ other), mirrored once in
    // each direction — emit the ordered one of the pair.
    if (!(2 > opts_.shareLbdMax && 2 > opts_.shareSizeMax)) {
        for (std::size_t j = 0; j < binWatches_.size(); ++j) {
            if (snap.clauses.size() >= maxClauses) break;
            const Lit a = ~Lit::fromIndex(static_cast<std::int32_t>(j));
            for (const BinWatcher& bw : binWatches_[j]) {
                if (snap.clauses.size() >= maxClauses) break;
                if (bw.learnt == 0 || a.index() >= bw.other.index()) continue;
                if (static_cast<std::size_t>(a.var()) >= baseline ||
                    static_cast<std::size_t>(bw.other.var()) >= baseline)
                    continue;
                snap.clauses.push_back(ImportedClause{{a, bw.other}, 2});
            }
        }
    }
    return snap;
}

std::size_t Solver::importSnapshot(const SolverSnapshot& snapshot) {
    expects(decisionLevel() == 0, "importSnapshot: requires level 0");
    // Refuse on any shape mismatch: warm-start is only sound into a solver
    // built from the identical newVar()/addClause() replay.
    if (snapshot.empty() || snapshot.numVars != numVars() || !ok_) return 0;

    // Heuristic state first: saved phases and normalized activities.
    const auto baseline = static_cast<std::size_t>(snapshot.numVars);
    for (std::size_t v = 0; v < baseline && v < polarity_.size(); ++v)
        polarity_[v] = v < snapshot.polarity.size() ? snapshot.polarity[v] : 0;
    for (std::size_t v = 0; v < baseline && v < activity_.size(); ++v)
        activity_[v] = v < snapshot.activity.size() ? snapshot.activity[v] : 0.0;
    varInc_ = 1.0;
    // Activities changed under the heap wholesale; rebuild with a bottom-up
    // heapify (heapUpdate only sifts up, which is wrong for decreased keys).
    for (std::size_t i = heap_.size() / 2; i-- > 0;) heapSiftDown(i);

    // Clauses: the same validation as importSharedClauses — skip anything
    // tautological, out of range, or already satisfied at level 0.
    std::size_t integrated = 0;
    std::vector<Lit>& out = simplifyScratch_;
    for (const ImportedClause& imp : snapshot.clauses) {
        std::vector<Lit> lits = imp.lits;
        std::sort(lits.begin(), lits.end());
        out.clear();
        bool skip = lits.empty();
        Lit prev = kUndefLit;
        for (const Lit l : lits) {
            if (l.var() < 0 || l.var() >= numVars() ||
                eliminated_[static_cast<std::size_t>(l.var())] != 0) {
                skip = true;
                break;
            }
            if (l == prev) continue;
            if (prev.isDefined() && l == ~prev) { // tautology: x ∨ ¬x
                skip = true;
                break;
            }
            const lbool v = value(l);
            if (v == lbool::True) { // already satisfied at level 0
                skip = true;
                break;
            }
            if (v == lbool::False) continue; // falsified at level 0: drop
            out.push_back(l);
            prev = l;
        }
        if (skip) continue;
        ++stats_.importedClauses;
        ++integrated;
        if (out.empty()) { // empty under the level-0 assignment: Unsat
            ok_ = false;
            return integrated;
        }
        if (out.size() == 1) {
            if (!enqueue(out[0], Reason::none())) {
                ok_ = false;
                return integrated;
            }
            continue; // propagated by the next propagate() call
        }
        storeClause(out, /*learnt=*/true,
                    std::clamp(imp.lbd, 2, static_cast<int>(out.size())));
    }
    return integrated;
}

// ---------------------------------------------------------------------------
// Branching
// ---------------------------------------------------------------------------

Lit Solver::pickBranchLit() {
    // Eliminated variables are skipped: they have no clauses left, so any
    // branch on them is wasted work, and assigning them would leak into
    // snapshots. restoreEliminated() re-inserts them into the heap.
    if (opts_.useVsids) {
        while (!heapEmpty()) {
            const Var v = heapPopMax();
            if (value(v) == lbool::Undef &&
                eliminated_[static_cast<std::size_t>(v)] == 0)
                return mkLit(v, polarity_[static_cast<std::size_t>(v)] != 0);
        }
        return kUndefLit;
    }
    // Static order: lowest-index unassigned variable (ablation mode).
    for (Var v = 0; v < numVars(); ++v)
        if (value(v) == lbool::Undef &&
            eliminated_[static_cast<std::size_t>(v)] == 0)
            return mkLit(v, polarity_[static_cast<std::size_t>(v)] != 0);
    return kUndefLit;
}

// ---------------------------------------------------------------------------
// DPLL fallback (learning disabled)
// ---------------------------------------------------------------------------

bool Solver::handleConflictDpll() {
    // Flip the deepest unflipped non-assumption decision; fail when none.
    const int assumptionLevels = static_cast<int>(assumptions_.size());
    int flipLevel = -1;
    for (int lvl = decisionLevel(); lvl > assumptionLevels; --lvl) {
        if (!frames_[static_cast<std::size_t>(lvl - 1)].flipped) {
            flipLevel = lvl;
            break;
        }
    }
    if (flipLevel < 0) {
        // Exhausted: unsatisfiable under the assumptions. For DPLL mode the
        // reported core is the full assumption set (no resolution proof to
        // shrink it).
        core_ = assumptions_;
        return false;
    }
    const Lit flipped = ~frames_[static_cast<std::size_t>(flipLevel - 1)].decision;
    backtrackTo(flipLevel - 1);
    newDecisionLevel(flipped);
    frames_.back().flipped = true;
    enqueue(flipped, Reason::none());
    return true;
}

// ---------------------------------------------------------------------------
// Main search
// ---------------------------------------------------------------------------

std::int64_t Solver::luby(std::int64_t i) {
    // Luby sequence 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 … (0-indexed), via the
    // MiniSat formulation: find the subsequence containing index i.
    std::int64_t size = 1;
    std::int64_t seq = 0;
    while (size < i + 1) {
        ++seq;
        size = 2 * size + 1;
    }
    while (size - 1 != i) {
        size = (size - 1) / 2;
        --seq;
        i %= size;
    }
    return 1LL << seq;
}

SolveResult Solver::solve(std::span<const Lit> assumptions) {
    // Threading contract (see SolverOptions): one solve() at a time.
    expects(!solveActive_.exchange(true, std::memory_order_acq_rel),
            "solve: concurrent solve() on one Solver instance");
    struct ActiveGuard {
        std::atomic<bool>& flag;
        ~ActiveGuard() { flag.store(false, std::memory_order_release); }
    } activeGuard{solveActive_};

    ++stats_.solves;
    core_.clear();
    if (!ok_) return SolveResult::Unsat;
    assumptions_.assign(assumptions.begin(), assumptions.end());
    for (const Lit a : assumptions_)
        expects(a.var() >= 0 && a.var() < numVars(), "solve: unknown assumption var");
    // Assumption variables must keep their identity across simplification:
    // freeze them (restoring any that bounded elimination already removed) so
    // elimination never touches them and unsat cores stay honest.
    for (const Lit a : assumptions_) freeze(a.var());
    if (!ok_) return SolveResult::Unsat;

    removeSatisfiedAtLevelZero();
    if (opts_.importClausesFn && !importSharedClauses()) return SolveResult::Unsat;
    maxLearnts_ = std::max(1000.0, static_cast<double>(numClauses()) * 0.3);
    restartCount_ = 0;
    restartLimit_ = opts_.restartBase * luby(restartCount_);
    conflictsSinceRestart_ = 0;
    hasDeadline_ = opts_.timeBudgetMs >= 0;
    solveStart_ = std::chrono::steady_clock::now();
    propagationsAtSolveStart_ = stats_.propagations;
    if (hasDeadline_)
        deadline_ = solveStart_ + std::chrono::milliseconds(opts_.timeBudgetMs);

    // Budgets are per-solve: convert relative budgets into absolute caps
    // against the cumulative counters.
    stopReason_ = StopReason::None;
    pendingStop_ = StopReason::None;
    conflictLimit_ =
        opts_.conflictBudget < 0
            ? -1
            : static_cast<std::int64_t>(stats_.conflicts) + opts_.conflictBudget;
    propagationLimit_ = opts_.propagationBudget < 0
                            ? -1
                            : static_cast<std::int64_t>(stats_.propagations) +
                                  opts_.propagationBudget;
    memoryBudgetBytes_ =
        opts_.memoryBudgetMb < 0 ? -1 : opts_.memoryBudgetMb * 1024 * 1024;
    if (opts_.cancelFlag && opts_.cancelFlag->load(std::memory_order_relaxed)) {
        stopReason_ = StopReason::Cancelled;
        return SolveResult::Unknown;
    }

    // Imports (snapshot warm-start or portfolio exchange) can arrive already
    // over the learnt-memory cap: reclaim before searching rather than carry
    // an oversized learnt DB into the search loop.
    if (memoryBudgetBytes_ >= 0 &&
        static_cast<std::int64_t>(learntBytes_) > memoryBudgetBytes_) {
        reduceLearntDb();
        garbageCollect();
        if (static_cast<std::int64_t>(learntBytes_) > memoryBudgetBytes_) {
            stopReason_ = StopReason::MemoryBudget;
            return SolveResult::Unknown;
        }
    }

    // Inprocessing round at solve() start; search() schedules further rounds
    // at restart boundaries. Runs after the budget setup so a round respects
    // the deadline/cancellation of the solve it belongs to.
    if (opts_.simplify.enable && simplifyDue()) {
        switch (runSimplifyRound()) {
        case SimplifyOutcome::Unsat:
            return SolveResult::Unsat;
        case SimplifyOutcome::Stop:
            backtrackTo(0);
            stats_.arenaWasteBytes = arena_.wastedWords() * sizeof(std::uint32_t);
            return SolveResult::Unknown;
        case SimplifyOutcome::Done:
            break;
        }
    }

    const SolveResult result = search();
    if (result == SolveResult::Sat) {
        model_ = assigns_;
        extendModel();
    }
    backtrackTo(0);
    stats_.arenaWasteBytes = arena_.wastedWords() * sizeof(std::uint32_t);
    return result;
}

bool Solver::deadlineExpired() const {
    return hasDeadline_ && std::chrono::steady_clock::now() >= deadline_;
}

StopReason Solver::limitExceeded() const {
    if (opts_.cancelFlag && opts_.cancelFlag->load(std::memory_order_relaxed))
        return StopReason::Cancelled;
    if (deadlineExpired()) return StopReason::Deadline;
    if (conflictLimit_ >= 0 &&
        static_cast<std::int64_t>(stats_.conflicts) >= conflictLimit_)
        return StopReason::ConflictBudget;
    if (propagationLimit_ >= 0 &&
        static_cast<std::int64_t>(stats_.propagations) >= propagationLimit_)
        return StopReason::PropagationBudget;
    return StopReason::None;
}

void Solver::reportProgress() {
    SolverProgress progress;
    progress.conflicts = stats_.conflicts;
    progress.propagations = stats_.propagations;
    progress.decisions = stats_.decisions;
    progress.restarts = stats_.restarts;
    progress.decisionLevel = decisionLevel();
    progress.learntClauses = learnts_.size();
    progress.elapsedMs = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - solveStart_)
                             .count();
    const double seconds = progress.elapsedMs / 1e3;
    if (seconds > 0.0)
        progress.propagationsPerSec =
            static_cast<double>(stats_.propagations - propagationsAtSolveStart_) /
            seconds;
    opts_.progressFn(progress);
}

SolveResult Solver::search() {
    std::vector<Lit> learnt;

    while (true) {
        const Conflict conflict = propagate();
        if (pendingStop_ != StopReason::None) {
            // A limit tripped mid-propagation; the queue is left partially
            // processed (the next solve() resumes it from qhead_).
            stopReason_ = pendingStop_;
            pendingStop_ = StopReason::None;
            backtrackTo(0);
            return SolveResult::Unknown;
        }
        if (conflict.found()) {
            ++stats_.conflicts;
            ++conflictsSinceRestart_;
            if (opts_.progressEvery > 0 && opts_.progressFn &&
                stats_.conflicts %
                        static_cast<std::uint64_t>(opts_.progressEvery) ==
                    0)
                reportProgress();
            // Every conflict polls every limit: budgets, deadline, and the
            // cancellation flag share one cadence.
            if (const StopReason stop = limitExceeded();
                stop != StopReason::None) {
                stopReason_ = stop;
                backtrackTo(0);
                return SolveResult::Unknown;
            }
            if (!opts_.useLearning) {
                if (decisionLevel() <= static_cast<int>(assumptions_.size())) {
                    if (decisionLevel() == 0) {
                        ok_ = false;
                        return SolveResult::Unsat;
                    }
                    core_ = assumptions_;
                    return SolveResult::Unsat;
                }
                if (!handleConflictDpll()) return SolveResult::Unsat;
                continue;
            }
            if (decisionLevel() == 0) {
                ok_ = false;
                return SolveResult::Unsat;
            }
            int backtrackLevel = 0;
            int lbd = 0;
            analyze(conflict, learnt, backtrackLevel, lbd);
            // Learnt clauses are implied by the clause database alone (never
            // by the assumptions), so sharing them with a portfolio sibling
            // built from the same database is sound.
            if (opts_.exportClauseFn &&
                (lbd <= opts_.shareLbdMax ||
                 static_cast<int>(learnt.size()) <= opts_.shareSizeMax)) {
                opts_.exportClauseFn(learnt, lbd);
                ++stats_.exportedClauses;
            }
            backtrackTo(backtrackLevel);
            if (learnt.size() == 1) {
                enqueue(learnt[0], Reason::none());
            } else if (learnt.size() == 2) {
                attachBinary(learnt[0], learnt[1], /*learnt=*/true);
                enqueue(learnt[0], Reason::binary(learnt[1]));
            } else {
                const ClauseRef ref = arena_.alloc(learnt, /*learnt=*/true, lbd);
                learnts_.push_back(ref);
                attachClause(ref);
                clauseBumpActivity(ref);
                learntBytes_ += arena_.footprintBytes(ref);
                enqueue(learnt[0], Reason::clause(ref));
            }
            varDecayActivity();
            clauseDecayActivity();

            if (memoryBudgetBytes_ >= 0 &&
                static_cast<std::int64_t>(learntBytes_) > memoryBudgetBytes_) {
                // Over the learnt-memory cap: reduce the DB and compact the
                // arena (the budget caps live bytes, but reclaiming the freed
                // words is the point of capping); if everything left is glue
                // or locked, give up rather than grow further.
                reduceLearntDb();
                garbageCollect();
                if (static_cast<std::int64_t>(learntBytes_) >
                    memoryBudgetBytes_) {
                    stopReason_ = StopReason::MemoryBudget;
                    backtrackTo(0);
                    return SolveResult::Unknown;
                }
            }

            if (opts_.useRestarts && conflictsSinceRestart_ >= restartLimit_) {
                ++stats_.restarts;
                ++restartCount_;
                restartLimit_ = opts_.restartBase * luby(restartCount_);
                conflictsSinceRestart_ = 0;
                backtrackTo(0);
                if (opts_.importClausesFn && !importSharedClauses())
                    return SolveResult::Unsat;
                // Inprocessing between restarts, once enough conflicts have
                // accumulated since the previous round.
                if (opts_.simplify.enable && simplifyDue()) {
                    switch (runSimplifyRound()) {
                    case SimplifyOutcome::Unsat:
                        return SolveResult::Unsat;
                    case SimplifyOutcome::Stop:
                        backtrackTo(0);
                        return SolveResult::Unknown;
                    case SimplifyOutcome::Done:
                        break;
                    }
                }
            }
            if (opts_.reduceDb &&
                static_cast<double>(learnts_.size()) >= maxLearnts_) {
                reduceLearntDb();
                maybeGarbageCollect();
                maxLearnts_ *= 1.3;
            }
            continue;
        }

        // No conflict: place assumptions, then decide.
        if (decisionLevel() < static_cast<int>(assumptions_.size())) {
            const Lit a = assumptions_[static_cast<std::size_t>(decisionLevel())];
            const lbool v = value(a);
            if (v == lbool::True) {
                newDecisionLevel(a); // dummy level to keep alignment
                continue;
            }
            if (v == lbool::False) {
                analyzeFinal(a);
                return SolveResult::Unsat;
            }
            ++stats_.decisions;
            newDecisionLevel(a);
            enqueue(a, Reason::none());
            continue;
        }

        if ((stats_.decisions & 255) == 0) {
            if (const StopReason stop = limitExceeded();
                stop != StopReason::None) {
                stopReason_ = stop;
                backtrackTo(0);
                return SolveResult::Unknown;
            }
        }
        const Lit next = pickBranchLit();
        if (!next.isDefined()) return SolveResult::Sat;
        ++stats_.decisions;
        newDecisionLevel(next);
        enqueue(next, Reason::none());
    }
}

// ---------------------------------------------------------------------------
// Inprocessing (see src/sat/simplify/)
// ---------------------------------------------------------------------------

void Solver::freeze(Var v) {
    expects(v >= 0 && v < numVars(), "freeze: unknown variable");
    frozen_[static_cast<std::size_t>(v)] = 1;
    // Freezing an already-eliminated variable re-activates it: the caller is
    // about to rely on its identity (assumption, exported literal).
    if (eliminated_[static_cast<std::size_t>(v)] != 0) restoreEliminated(v);
}

bool Solver::simplifyDue() const {
    if (!simplifiedOnce_) return true;
    return static_cast<std::int64_t>(stats_.conflicts -
                                     conflictsAtLastSimplify_) >=
           opts_.simplify.conflictInterval;
}

Solver::SimplifyOutcome Solver::runSimplifyRound() {
    expects(decisionLevel() == 0, "simplify: requires decision level 0");
    if (!ok_) return SimplifyOutcome::Unsat;
    const auto start = std::chrono::steady_clock::now();
    // Effort-proportional scheduling: a round's tick budget grows with the
    // search effort since the previous round, so a query the search answers
    // in milliseconds pays only a cheap first round while a long-running
    // solve earns progressively larger ones. simplify.tickBudget stays the
    // hard per-round cap (< 0 = unlimited, and then no scaling either).
    constexpr std::int64_t kRoundBaseTicks = 200'000;
    constexpr std::int64_t kRoundTicksPerConflict = 400;
    std::int64_t tickLimit = opts_.simplify.tickBudget;
    if (tickLimit >= 0) {
        const std::int64_t sinceLast =
            simplifiedOnce_ ? static_cast<std::int64_t>(
                                  stats_.conflicts - conflictsAtLastSimplify_)
                            : 0;
        tickLimit = std::min(
            tickLimit, kRoundBaseTicks + kRoundTicksPerConflict * sinceLast);
    }
    simplifiedOnce_ = true;
    conflictsAtLastSimplify_ = stats_.conflicts;
    // Probing/vivification open temporary decision levels; those are working
    // state, not search depth — keep the stat honest.
    const std::uint64_t savedMaxLevel = stats_.maxDecisionLevel;
    Simplifier simplifier(*this, tickLimit);
    const SimplifyOutcome outcome = simplifier.run();
    stats_.maxDecisionLevel = savedMaxLevel;
    stats_.simplifyMs += std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    ++stats_.simplifyRounds;
    if (outcome == SimplifyOutcome::Done) maybeGarbageCollect();
    return outcome;
}

bool Solver::simplify() {
    expects(!solveActive_.load(std::memory_order_acquire),
            "simplify: called while solve() is active");
    expects(decisionLevel() == 0, "simplify: requires decision level 0");
    if (!ok_) return false;
    // This entry runs outside any solve(): clear leftover per-solve limits so
    // the round is bounded only by its tick budget, the configured memory
    // budget, and the cancellation flag.
    conflictLimit_ = -1;
    propagationLimit_ = -1;
    hasDeadline_ = false;
    pendingStop_ = StopReason::None;
    stopReason_ = StopReason::None;
    memoryBudgetBytes_ =
        opts_.memoryBudgetMb < 0 ? -1 : opts_.memoryBudgetMb * 1024 * 1024;
    removeSatisfiedAtLevelZero();
    if (!ok_) return false;
    const SimplifyOutcome outcome = runSimplifyRound();
    backtrackTo(0);
    return outcome != SimplifyOutcome::Unsat && ok_;
}

void Solver::restoreForLits(std::span<const Lit> lits) {
    for (const Lit l : lits) {
        if (l.var() < 0 || l.var() >= numVars()) continue; // addClause rejects
        if (eliminated_[static_cast<std::size_t>(l.var())] != 0)
            restoreEliminated(l.var());
        if (!ok_) return;
    }
}

void Solver::restoreEliminated(Var v) {
    // Re-activate `v`: drop its reconstruction entries, re-add its original
    // clauses, and cascade to any other eliminated variables those clauses
    // mention (their reconstruction entries would otherwise disagree with the
    // re-added clauses). The previously added resolvents stay — they are
    // implied by the originals, so the formula remains equivalent.
    std::vector<Var> work{v};
    std::vector<std::vector<Lit>> toAdd;
    while (!work.empty()) {
        const Var x = work.back();
        work.pop_back();
        if (eliminated_[static_cast<std::size_t>(x)] == 0) continue;
        eliminated_[static_cast<std::size_t>(x)] = 0;
        --numEliminated_;
        ++stats_.restoredVars;
        extender_.removeVar(x);
        if (heapIndex_[static_cast<std::size_t>(x)] < 0 &&
            value(x) == lbool::Undef)
            heapInsert(x);
        const auto it = elimStash_.find(x);
        if (it == elimStash_.end()) continue;
        for (std::vector<Lit>& clause : it->second) {
            for (const Lit l : clause)
                if (eliminated_[static_cast<std::size_t>(l.var())] != 0)
                    work.push_back(l.var());
            toAdd.push_back(std::move(clause));
        }
        elimStash_.erase(it);
    }
    // Integrate through the internal path: restoration is not a formula
    // change, so the snapshot baseline counter must not move.
    for (std::vector<Lit>& clause : toAdd)
        if (!addClauseInternal(std::move(clause))) return; // ok_ cleared
}

void Solver::extendModel() {
    if (!extender_.empty()) extender_.extend(model_);
}

bool Solver::modelValue(Var v) const {
    expects(static_cast<std::size_t>(v) < model_.size(),
            "modelValue: no model for variable");
    // Variables never assigned in the model are free; report false.
    return model_[static_cast<std::size_t>(v)] == lbool::True;
}

void Solver::setOptions(const SolverOptions& options) {
    // Enforced half of the threading contract: options are immutable while a
    // solve() is in flight (the search reads them without synchronization).
    if (solveActive_.load(std::memory_order_acquire))
        throw LogicError("Solver::setOptions: called while solve() is active");
    opts_ = options;
}

} // namespace lar::sat
