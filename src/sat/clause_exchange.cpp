#include "sat/clause_exchange.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace lar::sat {

ClauseExchange::ClauseExchange(int workers, std::size_t slotsPerWorker)
    : rings_(static_cast<std::size_t>(std::max(workers, 1))),
      cursors_(rings_.size(), std::vector<std::uint64_t>(rings_.size(), 0)) {
    expects(slotsPerWorker > 0, "ClauseExchange: need at least one slot");
    for (Ring& ring : rings_) ring.slots = std::vector<Slot>(slotsPerWorker);
}

void ClauseExchange::publish(int worker, std::span<const Lit> lits, int lbd) {
    expects(worker >= 0 && worker < workers(), "publish: bad worker index");
    if (lits.empty() || lits.size() > kMaxLits) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    Ring& ring = rings_[static_cast<std::size_t>(worker)];
    const std::uint64_t head = ring.head.load(std::memory_order_relaxed);
    Slot& slot = ring.slots[head % ring.slots.size()];

    // Atomic-payload seqlock write: version goes odd, then the payload (all
    // relaxed — the release fence orders them after the odd version), then
    // version lands on the next even value.
    const std::uint32_t v = slot.version.load(std::memory_order_relaxed);
    slot.version.store(v + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    const int clampedLbd = std::clamp(lbd, 0, 255);
    slot.meta.store(static_cast<std::uint32_t>(lits.size()) |
                        (static_cast<std::uint32_t>(clampedLbd) << 8),
                    std::memory_order_relaxed);
    for (std::size_t i = 0; i < lits.size(); ++i)
        slot.lits[i].store(lits[i].index(), std::memory_order_relaxed);
    slot.version.store(v + 2, std::memory_order_release);

    ring.head.store(head + 1, std::memory_order_release);
    published_.fetch_add(1, std::memory_order_relaxed);
}

void ClauseExchange::collect(int worker, std::vector<ImportedClause>& out) {
    expects(worker >= 0 && worker < workers(), "collect: bad worker index");
    auto& cursors = cursors_[static_cast<std::size_t>(worker)];
    for (std::size_t producer = 0; producer < rings_.size(); ++producer) {
        if (producer == static_cast<std::size_t>(worker)) continue;
        const Ring& ring = rings_[producer];
        const std::size_t slots = ring.slots.size();
        const std::uint64_t head = ring.head.load(std::memory_order_acquire);
        std::uint64_t cursor = cursors[producer];
        if (head > slots && cursor < head - slots) {
            // Lapped: everything below head - slots is already overwritten.
            lost_.fetch_add(head - slots - cursor, std::memory_order_relaxed);
            cursor = head - slots;
        }
        for (; cursor < head; ++cursor) {
            const Slot& slot = ring.slots[cursor % slots];
            // The slot holds generation `cursor` iff its version matches the
            // write count for that generation exactly; anything else means
            // the producer lapped us mid-read — count the clause as lost
            // (a newer generation will be read at its own cursor position).
            const std::uint32_t expected =
                static_cast<std::uint32_t>(cursor / slots + 1) * 2;
            const std::uint32_t v1 = slot.version.load(std::memory_order_acquire);
            if (v1 != expected) {
                lost_.fetch_add(1, std::memory_order_relaxed);
                continue;
            }
            const std::uint32_t meta = slot.meta.load(std::memory_order_relaxed);
            const std::size_t size = meta & 0xff;
            std::array<std::int32_t, kMaxLits> codes{};
            for (std::size_t i = 0; i < size && i < kMaxLits; ++i)
                codes[i] = slot.lits[i].load(std::memory_order_relaxed);
            std::atomic_thread_fence(std::memory_order_acquire);
            const std::uint32_t v2 = slot.version.load(std::memory_order_relaxed);
            if (v2 != expected || size == 0 || size > kMaxLits) {
                lost_.fetch_add(1, std::memory_order_relaxed);
                continue;
            }
            ImportedClause clause;
            clause.lbd = static_cast<int>((meta >> 8) & 0xff);
            clause.lits.reserve(size);
            for (std::size_t i = 0; i < size; ++i)
                clause.lits.push_back(Lit::fromIndex(codes[i]));
            out.push_back(std::move(clause));
            collected_.fetch_add(1, std::memory_order_relaxed);
        }
        cursors[producer] = cursor;
    }
}

ClauseExchange::Stats ClauseExchange::stats() const {
    Stats s;
    s.published = published_.load(std::memory_order_relaxed);
    s.rejected = rejected_.load(std::memory_order_relaxed);
    s.collected = collected_.load(std::memory_order_relaxed);
    s.lost = lost_.load(std::memory_order_relaxed);
    return s;
}

} // namespace lar::sat
