// DIMACS CNF reader/writer, used by tests and the solver bench harness.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sat/types.hpp"

namespace lar::sat {

class Solver;

/// A CNF formula in memory: clause list over variables [0, numVars).
struct Cnf {
    int numVars = 0;
    std::vector<std::vector<Lit>> clauses;
};

/// Parses DIMACS CNF text ("p cnf V C" header, comment lines with 'c').
/// Throws ParseError on malformed input.
[[nodiscard]] Cnf parseDimacs(const std::string& text);

/// Renders `cnf` as DIMACS text.
[[nodiscard]] std::string writeDimacs(const Cnf& cnf);

/// Loads `cnf` into `solver`, creating variables as needed.
/// Returns false when the formula is trivially unsatisfiable.
bool loadCnf(Solver& solver, const Cnf& cnf);

} // namespace lar::sat
