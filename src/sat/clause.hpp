// Clause references and tagged reasons for the arena-based clause store.
//
// Long clauses (>= 3 literals) live in a ClauseArena (arena.hpp) and are
// named by a 32-bit ClauseRef — the word offset of the clause header inside
// the arena. Binary clauses never materialize as stored clauses at all: they
// live in the solver's binary implication graph (two mirrored entries per
// clause, one in each literal's list). A variable's reason is therefore a
// tagged 32-bit word (Reason): either "none" (decision / level-0 fact), an
// arena reference, or the *other* literal of the implying binary clause.
//
// Keeping all three in one machine word halves watcher and reason storage
// relative to the previous Clause* representation and removes one pointer
// indirection from every propagation step.
#pragma once

#include <cstdint>

#include "sat/types.hpp"

namespace lar::sat {

/// Word offset of a clause inside a ClauseArena. Valid refs are even-ish
/// dense indices < 2^31 (the Reason tag bit needs the headroom).
using ClauseRef = std::uint32_t;

constexpr ClauseRef kClauseRefUndef = 0xFFFFFFFFu;

/// Tagged reason of an assigned variable:
///   * none   — a decision, an assumption, or a level-0 fact;
///   * clause — the arena clause that unit-propagated the variable;
///   * binary — the variable was implied by a binary clause; the tag stores
///              the clause's other (falsified) literal, which is the entire
///              reason side of the resolution step.
class Reason {
public:
    constexpr Reason() = default;

    [[nodiscard]] static constexpr Reason none() { return Reason(); }
    [[nodiscard]] static constexpr Reason clause(ClauseRef ref) {
        return Reason((ref << 1) | 0u);
    }
    [[nodiscard]] static constexpr Reason binary(Lit other) {
        return Reason((static_cast<std::uint32_t>(other.index()) << 1) | 1u);
    }

    [[nodiscard]] constexpr bool isNone() const { return code_ == kNone; }
    [[nodiscard]] constexpr bool isBinary() const {
        return code_ != kNone && (code_ & 1u) != 0;
    }
    [[nodiscard]] constexpr bool isClause() const {
        return code_ != kNone && (code_ & 1u) == 0;
    }

    /// The arena reference; only meaningful when isClause().
    [[nodiscard]] constexpr ClauseRef ref() const { return code_ >> 1; }
    /// The binary clause's other literal; only meaningful when isBinary().
    [[nodiscard]] constexpr Lit otherLit() const {
        return Lit::fromIndex(static_cast<std::int32_t>(code_ >> 1));
    }

    constexpr bool operator==(const Reason&) const = default;

private:
    static constexpr std::uint32_t kNone = 0xFFFFFFFFu;
    explicit constexpr Reason(std::uint32_t code) : code_(code) {}
    std::uint32_t code_ = kNone;
};

} // namespace lar::sat
