// Lock-free learnt-clause exchange between portfolio solver workers.
//
// One bounded single-producer broadcast ring per worker: worker `i` alone
// publishes into ring `i`; every other worker reads all rings it does not
// own, each with its own private cursor per ring. Slots use the atomic-
// payload seqlock recipe (version word goes odd while a write is in flight,
// payload literals live in relaxed std::atomic words), so readers never
// block writers, torn reads are impossible, and the whole structure is
// clean under ThreadSanitizer. A slow reader that gets lapped clamps its
// cursor forward and counts the overwritten clauses as `lost` — sharing is
// best-effort by design; dropping a clause only costs pruning power, never
// soundness.
//
// Soundness contract (enforced by the callers, see smt::PortfolioBackend):
// published clauses must be learnt from the identical clause database the
// importing solver holds, because learnt clauses are implied by the clause
// set alone. Literal codes are exchanged verbatim, so all workers must also
// share one variable numbering.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "sat/solver.hpp"
#include "sat/types.hpp"

namespace lar::sat {

class ClauseExchange {
public:
    /// Clauses longer than this are never exchanged (they prune little and
    /// would bloat the fixed-size slots).
    static constexpr std::size_t kMaxLits = 12;

    /// `workers` rings of `slotsPerWorker` clause slots each.
    explicit ClauseExchange(int workers, std::size_t slotsPerWorker = 256);

    [[nodiscard]] int workers() const { return static_cast<int>(rings_.size()); }

    /// Publishes a clause into `worker`'s ring. Must only be called from the
    /// thread currently running that worker (single producer per ring).
    /// Over-long or empty clauses are counted and dropped.
    void publish(int worker, std::span<const Lit> lits, int lbd);

    /// Appends every clause published by the *other* workers since `worker`'s
    /// previous collect() call. Must only be called from the thread currently
    /// running `worker` (the per-ring cursors are unsynchronized).
    void collect(int worker, std::vector<ImportedClause>& out);

    struct Stats {
        std::uint64_t published = 0; ///< clauses accepted into a ring
        std::uint64_t rejected = 0;  ///< too long / empty, never published
        std::uint64_t collected = 0; ///< clause copies handed to readers
        std::uint64_t lost = 0;      ///< overwritten before a reader caught up
    };
    [[nodiscard]] Stats stats() const;

private:
    struct Slot {
        /// Seqlock word: odd while the producer is writing; after the write
        /// of generation g (0-based) it equals 2·(g / slots + 1).
        std::atomic<std::uint32_t> version{0};
        std::atomic<std::uint32_t> meta{0}; ///< size | (lbd << 8)
        std::array<std::atomic<std::int32_t>, kMaxLits> lits{};
    };
    struct Ring {
        std::atomic<std::uint64_t> head{0}; ///< generations published so far
        std::vector<Slot> slots;
    };

    std::vector<Ring> rings_;
    /// cursors_[reader][producer] = next generation to read; only ever
    /// touched by the reader's own thread.
    std::vector<std::vector<std::uint64_t>> cursors_;

    std::atomic<std::uint64_t> published_{0};
    std::atomic<std::uint64_t> rejected_{0};
    std::atomic<std::uint64_t> collected_{0};
    std::atomic<std::uint64_t> lost_{0};
};

} // namespace lar::sat
