// Typed clause arena: long clauses packed into one contiguous word buffer.
//
// Every clause is a header plus its literals, laid out inline in a single
// std::vector<uint32_t>; a ClauseRef is the word offset of the header. The
// layout per clause is
//
//   word 0   size << 3 | learnt << 0 | deleted << 1 | reloced << 2
//   word 1   LBD (learnt clauses), or the forwarding ClauseRef after this
//            clause has been relocated by a compaction pass
//   word 2   activity bits (IEEE float, learnt clauses)
//   word 3+  literal codes (Lit::index()), one word each
//
// freeing a clause only flips the deleted bit and books the words as waste;
// the space is reclaimed by relocating every live clause into a fresh arena
// (Solver::garbageCollect), which the solver triggers once the wasted
// fraction crosses a threshold. Allocation is bump-pointer; there is no
// per-clause malloc, no destructor walk, and clause memory accounting is
// exact integer arithmetic (footprintBytes).
//
// Literal access goes through Lit::fromIndex on the raw words, so the arena
// never type-puns its buffer.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "sat/clause.hpp"
#include "sat/types.hpp"

namespace lar::sat {

class ClauseArena {
public:
    /// Words of header before the literals of every clause.
    static constexpr std::uint32_t kHeaderWords = 3;

    /// Allocates a clause; the literal order is preserved. O(size) copy,
    /// amortized O(1) growth.
    ClauseRef alloc(std::span<const Lit> lits, bool learnt, int lbd) {
        const auto ref = static_cast<ClauseRef>(mem_.size());
        mem_.push_back((static_cast<std::uint32_t>(lits.size()) << 3) |
                       (learnt ? 1u : 0u));
        mem_.push_back(static_cast<std::uint32_t>(lbd));
        mem_.push_back(std::bit_cast<std::uint32_t>(0.0f));
        for (const Lit l : lits)
            mem_.push_back(static_cast<std::uint32_t>(l.index()));
        return ref;
    }

    /// Marks the clause deleted and books its words as waste. The ref stays
    /// readable (header intact) until the next compaction.
    void free(ClauseRef ref) {
        mem_[ref] |= 2u;
        wastedWords_ += kHeaderWords + size(ref);
    }

    /// Shrinks a clause in place to its first `newSize` literals; the tail
    /// words are booked as waste (reclaimed at the next compaction) and the
    /// ref stays valid. Used by in-place clause strengthening.
    void truncate(ClauseRef ref, std::uint32_t newSize) {
        wastedWords_ += size(ref) - newSize;
        mem_[ref] = (newSize << 3) | (mem_[ref] & 7u);
    }

    [[nodiscard]] std::uint32_t size(ClauseRef ref) const {
        return mem_[ref] >> 3;
    }
    [[nodiscard]] bool learnt(ClauseRef ref) const { return (mem_[ref] & 1u) != 0; }
    [[nodiscard]] bool deleted(ClauseRef ref) const { return (mem_[ref] & 2u) != 0; }

    [[nodiscard]] int lbd(ClauseRef ref) const {
        return static_cast<int>(mem_[ref + 1]);
    }
    void setLbd(ClauseRef ref, int lbd) {
        mem_[ref + 1] = static_cast<std::uint32_t>(lbd);
    }

    [[nodiscard]] float activity(ClauseRef ref) const {
        return std::bit_cast<float>(mem_[ref + 2]);
    }
    void setActivity(ClauseRef ref, float activity) {
        mem_[ref + 2] = std::bit_cast<std::uint32_t>(activity);
    }

    [[nodiscard]] Lit lit(ClauseRef ref, std::uint32_t i) const {
        return Lit::fromIndex(
            static_cast<std::int32_t>(mem_[ref + kHeaderWords + i]));
    }
    void setLit(ClauseRef ref, std::uint32_t i, Lit l) {
        mem_[ref + kHeaderWords + i] = static_cast<std::uint32_t>(l.index());
    }
    void swapLits(ClauseRef ref, std::uint32_t i, std::uint32_t j) {
        std::swap(mem_[ref + kHeaderWords + i], mem_[ref + kHeaderWords + j]);
    }

    /// Exact footprint of one clause in bytes (header + literals).
    [[nodiscard]] std::size_t footprintBytes(ClauseRef ref) const {
        return (kHeaderWords + size(ref)) * sizeof(std::uint32_t);
    }

    [[nodiscard]] std::size_t totalWords() const { return mem_.size(); }
    [[nodiscard]] std::size_t wastedWords() const { return wastedWords_; }
    [[nodiscard]] std::size_t liveWords() const {
        return mem_.size() - wastedWords_;
    }

    void reserveWords(std::size_t words) { mem_.reserve(words); }

    // -- compaction support --------------------------------------------------
    // relocate() moves a live clause into `to` on first call and stores a
    // forwarding ref in the old header (reloced bit + word 1); later calls —
    // and forward() — just follow the forwarding ref. The solver relocates
    // its clause lists first, then rewrites watchers/reasons via forward().

    ClauseRef relocate(ClauseRef ref, ClauseArena& to) {
        if ((mem_[ref] & 4u) != 0) return mem_[ref + 1]; // already forwarded
        const std::uint32_t sz = size(ref);
        const auto fwd = static_cast<ClauseRef>(to.mem_.size());
        to.mem_.insert(to.mem_.end(), mem_.begin() + ref,
                       mem_.begin() + ref + kHeaderWords + sz);
        mem_[ref] |= 4u;
        mem_[ref + 1] = fwd;
        return fwd;
    }

    [[nodiscard]] ClauseRef forward(ClauseRef ref) const {
        return (mem_[ref] & 4u) != 0 ? mem_[ref + 1] : ref;
    }

private:
    std::vector<std::uint32_t> mem_;
    std::size_t wastedWords_ = 0;
};

} // namespace lar::sat
