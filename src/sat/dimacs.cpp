#include "sat/dimacs.hpp"

#include <sstream>

#include "sat/solver.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace lar::sat {

namespace {

// std::stoi throws std::invalid_argument / std::out_of_range; callers of
// parseDimacs expect every malformed input to surface as ParseError.
int parseIntToken(const std::string& tok, const char* what) {
    std::size_t used = 0;
    int value = 0;
    try {
        value = std::stoi(tok, &used);
    } catch (const std::exception&) {
        throw ParseError(std::string("dimacs: ") + what + " is not an integer: " + tok);
    }
    if (used != tok.size())
        throw ParseError(std::string("dimacs: ") + what + " has trailing garbage: " + tok);
    return value;
}

} // namespace

Cnf parseDimacs(const std::string& text) {
    Cnf cnf;
    bool sawHeader = false;
    int declaredClauses = 0;
    std::vector<Lit> current;

    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        const std::string_view trimmed = util::trim(line);
        if (trimmed.empty() || trimmed[0] == 'c') continue;
        if (trimmed[0] == 'p') {
            const auto fields = util::splitWhitespace(trimmed);
            if (fields.size() != 4 || fields[1] != "cnf")
                throw ParseError("dimacs: malformed problem line: " + line);
            cnf.numVars = parseIntToken(fields[2], "variable count");
            declaredClauses = parseIntToken(fields[3], "clause count");
            if (cnf.numVars < 0 || declaredClauses < 0)
                throw ParseError("dimacs: negative count in problem line: " + line);
            sawHeader = true;
            continue;
        }
        if (!sawHeader) throw ParseError("dimacs: clause before problem line");
        for (const std::string& tok : util::splitWhitespace(trimmed)) {
            const int v = parseIntToken(tok, "literal");
            if (v == 0) {
                cnf.clauses.push_back(current);
                current.clear();
                continue;
            }
            const Var var = std::abs(v) - 1;
            if (var >= cnf.numVars)
                throw ParseError("dimacs: literal exceeds declared variables: " + tok);
            current.push_back(mkLit(var, v < 0));
        }
    }
    if (!current.empty()) cnf.clauses.push_back(current);
    if (!sawHeader) throw ParseError("dimacs: missing problem line");
    if (declaredClauses != static_cast<int>(cnf.clauses.size()))
        throw ParseError("dimacs: clause count mismatch");
    return cnf;
}

std::string writeDimacs(const Cnf& cnf) {
    std::ostringstream out;
    out << "p cnf " << cnf.numVars << ' ' << cnf.clauses.size() << '\n';
    for (const auto& clause : cnf.clauses) {
        for (const Lit l : clause) out << l.toDimacs() << ' ';
        out << "0\n";
    }
    return out.str();
}

bool loadCnf(Solver& solver, const Cnf& cnf) {
    while (solver.numVars() < cnf.numVars) solver.newVar();
    bool ok = true;
    for (const auto& clause : cnf.clauses) ok = solver.addClause(clause) && ok;
    return ok;
}

} // namespace lar::sat
