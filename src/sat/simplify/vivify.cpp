// Clause vivification (distillation).
//
// For a clause C = (l1 ∨ … ∨ lk): detach C, then assume ¬l1, ¬l2, …
// one literal at a time, propagating after each assumption (C itself is
// detached so it cannot propagate against the probe):
//
//   * value(li) == True under the prefix  → C is implied by (l1…li): shrink.
//   * value(li) == False under the prefix → li is redundant in C: drop it.
//   * propagation conflicts after ¬li     → the prefix (l1…li) is already
//     a consequence: shrink C to it.
//
// Every shrink replaces C by a clause that implies it and is itself implied
// by the rest of the formula, so the solver state stays equivalent.

#include <vector>

#include "sat/simplify/simplify.hpp"

namespace lar::sat {

bool Simplifier::vivify() {
    const std::vector<ClauseRef> snapshot = s_.clauses_;
    std::vector<Lit> lits;
    std::vector<Lit> kept;

    for (const ClauseRef ref : snapshot) {
        if (halted()) return true;
        if (s_.arena_.deleted(ref)) continue;
        const std::uint32_t size = s_.arena_.size(ref);
        if (!budget(4 * static_cast<std::int64_t>(size))) return true;

        lits.clear();
        bool satisfied = false;
        for (std::uint32_t i = 0; i < size; ++i) {
            const Lit l = s_.arena_.lit(ref, i);
            if (s_.value(l) == lbool::True) {
                satisfied = true;
                break;
            }
            lits.push_back(l); // keep level-0-false lits: the walk drops them
        }
        if (satisfied) {
            removeLongClause(ref, /*countRemoved=*/false);
            continue;
        }

        s_.detachClause(ref);
        kept.clear();
        bool conflicted = false;
        bool aborted = false;
        const std::uint64_t propsBefore = s_.stats_.propagations;
        for (const Lit l : lits) {
            const lbool v = s_.value(l);
            if (v == lbool::True) {
                // Implied by the kept prefix: C shrinks to kept + l.
                kept.push_back(l);
                break;
            }
            if (v == lbool::False) continue; // redundant under the prefix
            kept.push_back(l);
            s_.newDecisionLevel(~l);
            s_.enqueue(~l, Reason::none());
            const Solver::Conflict conflict = s_.propagate();
            if (s_.pendingStop_ != StopReason::None) {
                solveStop_ = s_.pendingStop_;
                s_.pendingStop_ = StopReason::None;
                aborted = true;
                break;
            }
            if (conflict.found()) {
                conflicted = true;
                break;
            }
        }
        s_.backtrackTo(0);
        // Propagation under the assumed prefix dominates vivification cost
        // (each assumption can sweep the whole watch structure); charge it
        // so the tick budget bounds wall time, not just clause count.
        (void)budget(2 * static_cast<std::int64_t>(s_.stats_.propagations -
                                                   propsBefore));
        if (aborted) {
            s_.attachClause(ref); // unchanged
            return true;
        }
        (void)conflicted; // a conflict just means the walk ended early
        if (kept.size() == lits.size() &&
            static_cast<std::uint32_t>(lits.size()) == size) {
            s_.attachClause(ref); // nothing learned
            continue;
        }
        ++s_.stats_.vivifiedClauses;
        if (!rewriteLongClause(ref, kept)) return false;
        if (halted()) return true;
    }
    return true;
}

} // namespace lar::sat
