#pragma once

#include <cstdint>

namespace lar::sat {

// Knobs for the inprocessing pipeline. Embedded in SolverOptions as
// `simplify`; guarded by the same mid-solve setOptions() rules as every
// other solver option.
struct SimplifyOptions {
  bool enable = true;        // master switch for inprocessing rounds
  bool subsumption = true;   // backward subsumption + self-subsuming resolution
  bool vivification = true;  // clause vivification (distillation)
  bool probing = true;       // failed-literal probing over the binary graph
  bool equivalence = true;   // SCC-based equivalent-literal substitution
  bool elimination = true;   // bounded variable elimination with extender

  // Per-round work budget in abstract ticks (clause-literal touches,
  // propagation steps charged by the simplifier). < 0 means unlimited.
  // When exhausted the round stops cleanly and the search continues.
  //
  // This is a hard CAP: the scheduler further scales each round's budget
  // with the search effort (conflicts) since the previous round, so cheap
  // queries pay only a small first round while long solves earn larger
  // ones. Within a round the budget is sliced evenly across the enabled
  // techniques so an expensive early step cannot starve the later ones.
  std::int64_t tickBudget = 4'000'000;

  // Run a round at a restart boundary only after this many conflicts have
  // accumulated since the previous round. The first round is always due.
  std::int64_t conflictInterval = 2000;

  // Bounded variable elimination limits: a variable is a candidate only if
  // each phase occurs in at most elimOccLimit clauses, no resolvent may
  // exceed elimClauseLimit literals, and the resolvent count may exceed the
  // deleted clause count by at most elimGrowth.
  int elimOccLimit = 12;
  int elimGrowth = 0;
  int elimClauseLimit = 16;
};

}  // namespace lar::sat
