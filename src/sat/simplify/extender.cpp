#include "sat/simplify/extender.hpp"

#include <algorithm>
#include <cassert>

namespace lar::sat {

namespace {

// Undef counts as false, matching Solver::modelValue.
bool litTrue(const std::vector<lbool>& model, Lit l) {
    const auto v = static_cast<std::size_t>(l.var());
    const bool assignedTrue = v < model.size() && model[v] == lbool::True;
    return assignedTrue != l.sign();
}

} // namespace

void Extender::pushClause(Var v, std::span<const Lit> lits) {
    assert(!lits.empty() && lits[0].var() == v);
    Entry e;
    e.var = v;
    e.clause.assign(lits.begin(), lits.end());
    entries_.push_back(std::move(e));
}

void Extender::pushUnit(Lit l) {
    Entry e;
    e.var = l.var();
    e.clause.push_back(l);
    entries_.push_back(std::move(e));
}

void Extender::removeVar(Var v) {
    std::erase_if(entries_, [v](const Entry& e) { return e.var == v; });
}

void Extender::extend(std::vector<lbool>& model) const {
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
        const Entry& e = *it;
        bool satisfied = false;
        for (const Lit l : e.clause) {
            if (litTrue(model, l)) {
                satisfied = true;
                break;
            }
        }
        if (satisfied) continue;
        const Lit witness = e.clause[0];
        const auto v = static_cast<std::size_t>(witness.var());
        if (v < model.size()) model[v] = fromBool(!witness.sign());
    }
}

} // namespace lar::sat
