// Inprocessing driver + helpers shared by the technique TUs.
//
// Everything here runs at decision level 0, between propagation fixpoints.
// The one invariant worth calling out: after every level-0 propagation the
// trail reasons are cleared (propagateTop). Level-0 facts never participate
// in conflict analysis again, so the reasons carry no information — and
// clearing them means a technique may free any clause (subsumed, satisfied,
// strengthened away) without leaving a dangling reason ref for
// garbageCollect() to forward.

#include "sat/simplify/simplify.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace lar::sat {

Simplifier::Simplifier(Solver& s, std::int64_t tickLimit)
    : s_(s),
      tickLimit_(tickLimit),
      stamp_(static_cast<std::size_t>(2 * s.numVars()), 0u) {}

bool Simplifier::budget(std::int64_t cost) {
    if (stopped_ || solveStop_ != StopReason::None) return false;
    ticks_ += cost;
    if (tickLimit_ >= 0 && ticks_ > tickLimit_) {
        stopped_ = true;
        return false;
    }
    // Poll the solve-level limits (deadline, cancellation, budgets) on a
    // coarse cadence so a round never outlives the solve it belongs to.
    if (--pollCountdown_ <= 0) {
        pollCountdown_ = 256;
        const StopReason stop = s_.limitExceeded();
        if (stop != StopReason::None) {
            solveStop_ = stop;
            return false;
        }
    }
    return true;
}

bool Simplifier::propagateTop() {
    expects(s_.decisionLevel() == 0, "simplify: propagateTop requires level 0");
    const Solver::Conflict conflict = s_.propagate();
    if (s_.pendingStop_ != StopReason::None) {
        solveStop_ = s_.pendingStop_;
        s_.pendingStop_ = StopReason::None;
    }
    // Clear level-0 trail reasons — see the file comment.
    for (const Lit l : s_.trail_)
        s_.varData_[static_cast<std::size_t>(l.var())].reason = Reason::none();
    if (conflict.found()) {
        s_.ok_ = false;
        return false;
    }
    return true;
}

void Simplifier::removeLongClause(ClauseRef ref, bool countRemoved) {
    s_.detachClause(ref);
    if (s_.arena_.learnt(ref))
        s_.learntBytes_ -= s_.arena_.footprintBytes(ref);
    s_.arena_.free(ref);
    if (countRemoved) ++s_.stats_.removedClauses;
}

bool Simplifier::rewriteLongClause(ClauseRef ref, const std::vector<Lit>& lits) {
    // Re-filter against the current level-0 assignment so the surviving
    // watches always sit on unassigned literals.
    std::vector<Lit> out;
    out.reserve(lits.size());
    for (const Lit l : lits) {
        const lbool v = s_.value(l);
        if (v == lbool::True) {
            removeLongClause(ref);
            return true;
        }
        if (v == lbool::False) continue;
        out.push_back(l);
    }
    const bool learnt = s_.arena_.learnt(ref);
    if (out.empty()) {
        removeLongClause(ref, /*countRemoved=*/false);
        s_.ok_ = false;
        return false;
    }
    if (out.size() == 1) {
        removeLongClause(ref, /*countRemoved=*/false);
        if (!s_.enqueue(out[0], Reason::none())) {
            s_.ok_ = false;
            return false;
        }
        return propagateTop();
    }
    if (out.size() == 2) {
        removeLongClause(ref, /*countRemoved=*/false);
        s_.attachBinary(out[0], out[1], learnt);
        return true;
    }
    // Shrink in place: the ref stays stable, so occ_ and the clause lists
    // remain valid (the dropped tail is booked as arena waste).
    s_.detachClause(ref);
    if (learnt) s_.learntBytes_ -= s_.arena_.footprintBytes(ref);
    for (std::size_t i = 0; i < out.size(); ++i)
        s_.arena_.setLit(ref, static_cast<std::uint32_t>(i), out[i]);
    s_.arena_.truncate(ref, static_cast<std::uint32_t>(out.size()));
    if (learnt) s_.learntBytes_ += s_.arena_.footprintBytes(ref);
    s_.attachClause(ref);
    return true;
}

bool Simplifier::addCheckedBinary(Lit a, Lit b, bool learnt) {
    const auto unit = [this](Lit l) {
        if (!s_.enqueue(l, Reason::none())) {
            s_.ok_ = false;
            return false;
        }
        return propagateTop();
    };
    if (a == ~b) return true; // tautology
    if (a == b) return unit(a);
    const lbool va = s_.value(a);
    const lbool vb = s_.value(b);
    if (va == lbool::True || vb == lbool::True) return true;
    if (va == lbool::False && vb == lbool::False) {
        s_.ok_ = false;
        return false;
    }
    if (va == lbool::False) return unit(b);
    if (vb == lbool::False) return unit(a);
    s_.attachBinary(a, b, learnt);
    // Learnt binaries (hyper-binary resolution) grow learnt memory; honour
    // the solver memory budget by stopping the round rather than the solve.
    if (learnt && s_.memoryBudgetBytes_ >= 0 &&
        static_cast<std::int64_t>(s_.learntBytes_) > s_.memoryBudgetBytes_) {
        stopped_ = true;
        memStop_ = true;
    }
    return true;
}

void Simplifier::buildOcc() {
    if (occBuilt_) return;
    occBuilt_ = true;
    occ_.assign(static_cast<std::size_t>(2 * s_.numVars()), {});
    std::int64_t pushed = 0;
    for (const ClauseRef ref : s_.clauses_) {
        if (s_.arena_.deleted(ref)) continue;
        const std::uint32_t size = s_.arena_.size(ref);
        for (std::uint32_t i = 0; i < size; ++i)
            occ_[static_cast<std::size_t>(s_.arena_.lit(ref, i).index())]
                .push_back(ref);
        pushed += size;
    }
    // Charged after the fact: consumers need a COMPLETE occurrence map, so
    // the build never stops halfway — it may overshoot the slice by one
    // build's worth of ticks, and the next budget() call notices.
    (void)budget(pushed);
    // occ_ is maintained as a SUPERSET from here on: strengthening leaves
    // stale entries behind, elimination appends entries for new resolvents.
    // Every consumer re-validates (deleted bit + actual membership scan).
}

void Simplifier::collectBinaries(
    std::vector<std::tuple<Lit, Lit, bool>>& out) const {
    out.clear();
    // Entry {other} in list j belongs to the clause (¬Lit(j) ∨ other) and is
    // mirrored once in each direction; emit the ordered one of the pair.
    for (std::size_t j = 0; j < s_.binWatches_.size(); ++j) {
        const Lit a = ~Lit::fromIndex(static_cast<std::int32_t>(j));
        for (const Solver::BinWatcher& bw : s_.binWatches_[j]) {
            if (a.index() < bw.other.index())
                out.emplace_back(a, bw.other, bw.learnt != 0);
        }
    }
}

std::uint32_t Simplifier::nextStamp() {
    if (++stampGen_ == 0) {
        std::fill(stamp_.begin(), stamp_.end(), 0u);
        stampGen_ = 1;
    }
    return stampGen_;
}

Solver::SimplifyOutcome Simplifier::run() {
    using Outcome = Solver::SimplifyOutcome;
    const SimplifyOptions& so = s_.opts_.simplify;

    const Outcome outcome = [&]() -> Outcome {
        if (!propagateTop()) return Outcome::Unsat;
        if (solveStop_ != StopReason::None) return Outcome::Stop;

        struct Step {
            bool enabled;
            bool (Simplifier::*fn)();
        };
        const Step steps[] = {
            {so.equivalence, &Simplifier::equivalence},
            {so.probing, &Simplifier::probe},
            {so.subsumption, &Simplifier::subsume},
            {so.vivification, &Simplifier::vivify},
            {so.elimination, &Simplifier::eliminate},
        };
        // Budget slicing: each step gets an equal share of the ticks still
        // unspent (unused ticks roll forward). Without this an expensive
        // early step — vivification, typically — eats the whole round and
        // starves elimination behind it. A slice-stopped step truncates
        // only itself; the round goes on and reports a Ticks stop at the
        // end. A memory stop halts the round outright.
        const std::int64_t totalLimit = tickLimit_;
        bool truncated = false;
        int stepsLeft = 0;
        for (const Step& step : steps) stepsLeft += step.enabled ? 1 : 0;
        for (const Step& step : steps) {
            if (!step.enabled) continue;
            if (totalLimit >= 0) {
                const std::int64_t remaining = totalLimit - ticks_;
                if (remaining <= 0) {
                    truncated = true;
                    break;
                }
                tickLimit_ = ticks_ + remaining / stepsLeft;
                stopped_ = false; // fresh slice for this step
            }
            --stepsLeft;
            (void)(this->*step.fn)();
            if (!s_.ok_) return Outcome::Unsat;
            if (solveStop_ != StopReason::None) return Outcome::Stop;
            if (stopped_) {
                truncated = true;
                if (memStop_) break;
            }
        }
        tickLimit_ = totalLimit;
        stopped_ = truncated;
        return Outcome::Done;
    }();

    // Sweep freed refs out of the clause lists (free() only marks).
    std::erase_if(s_.clauses_,
                  [this](ClauseRef r) { return s_.arena_.deleted(r); });
    std::erase_if(s_.learnts_,
                  [this](ClauseRef r) { return s_.arena_.deleted(r); });

    if (outcome == Outcome::Stop) {
        s_.stopReason_ = solveStop_;
    } else if (outcome == Outcome::Done) {
        if (stopped_) {
            ++s_.stats_.simplifyStops;
            s_.stats_.lastSimplifyStop =
                memStop_ ? SimplifyStop::Memory : SimplifyStop::Ticks;
        } else {
            s_.stats_.lastSimplifyStop = SimplifyStop::None;
        }
    }
    return outcome;
}

} // namespace lar::sat
