// Equivalent-literal substitution.
//
// The binary implication graph (u → w for every binary clause ¬u ∨ w) is
// decomposed into strongly connected components with an iterative Tarjan
// walk over the 2N literal nodes. Every literal in an SCC is equivalent; a
// component containing both phases of a variable makes the formula Unsat.
// Each non-representative literal is substituted by its component's
// representative (the minimum literal index — components mirror under
// negation, so this choice is consistent across the pair).
//
// Substitution turns the defining binaries (¬l ∨ r), (l ∨ ¬r) into
// tautologies, which the graph rebuild drops — so they are explicitly
// re-added afterwards as problem binaries. That keeps every substituted
// variable constrained to equal its representative: models assign it
// correctly with no extender entry, assumptions on it keep working, and no
// variable silently loses its meaning.

#include <algorithm>
#include <unordered_map>

#include "sat/simplify/simplify.hpp"
#include "util/error.hpp"

namespace lar::sat {

bool Simplifier::equivalence() {
    const std::size_t numLits = static_cast<std::size_t>(2 * s_.numVars());
    if (numLits == 0) return true;

    const auto skipVar = [this](Var v) {
        return s_.value(v) != lbool::Undef ||
               s_.eliminated_[static_cast<std::size_t>(v)] != 0;
    };

    // -- Tarjan SCC over literal nodes --------------------------------------
    std::vector<std::uint32_t> index(numLits, 0);
    std::vector<std::uint32_t> lowlink(numLits, 0);
    std::vector<char> onStack(numLits, 0);
    std::vector<std::int32_t> stack;
    std::uint32_t nextIndex = 1;

    // lastSccOfVar detects both-phases-in-one-component (→ Unsat).
    std::vector<std::int32_t> lastSccOfVar(
        static_cast<std::size_t>(s_.numVars()), -1);
    std::int32_t sccCount = 0;

    // subst[v] = the literal mkLit(v) is replaced by (undef = no change).
    std::vector<Lit> subst(static_cast<std::size_t>(s_.numVars()), kUndefLit);
    std::vector<Lit> members;

    struct Frame {
        std::int32_t node;
        std::size_t child;
    };
    std::vector<Frame> dfs;

    for (std::size_t root = 0; root < numLits; ++root) {
        if (index[root] != 0) continue;
        if (skipVar(Lit::fromIndex(static_cast<std::int32_t>(root)).var()))
            continue;
        const auto r = static_cast<std::int32_t>(root);
        index[root] = lowlink[root] = nextIndex++;
        stack.push_back(r);
        onStack[root] = 1;
        dfs.push_back({r, 0});
        while (!dfs.empty()) {
            Frame& f = dfs.back();
            const auto node = static_cast<std::size_t>(f.node);
            const auto& succ = s_.binWatches_[node];
            if (f.child < succ.size()) {
                if (!budget(1)) return true; // abort before substituting
                const Lit w = succ[f.child++].other;
                if (skipVar(w.var())) continue;
                const auto wi = static_cast<std::size_t>(w.index());
                if (index[wi] == 0) {
                    index[wi] = lowlink[wi] = nextIndex++;
                    stack.push_back(static_cast<std::int32_t>(wi));
                    onStack[wi] = 1;
                    dfs.push_back({static_cast<std::int32_t>(wi), 0});
                } else if (onStack[wi] != 0) {
                    lowlink[node] = std::min(lowlink[node], index[wi]);
                }
                continue;
            }
            const std::int32_t n = f.node;
            dfs.pop_back(); // invalidates f
            if (!dfs.empty()) {
                const auto parent = static_cast<std::size_t>(dfs.back().node);
                lowlink[parent] = std::min(lowlink[parent], lowlink[node]);
            }
            if (lowlink[node] != index[node]) continue;
            // Close the component rooted at `n`.
            members.clear();
            while (true) {
                const std::int32_t m = stack.back();
                stack.pop_back();
                onStack[static_cast<std::size_t>(m)] = 0;
                members.push_back(Lit::fromIndex(m));
                if (m == n) break;
            }
            if (members.size() < 2) {
                ++sccCount;
                continue;
            }
            Lit rep = members[0];
            for (const Lit m : members) {
                if (m.index() < rep.index()) rep = m;
                auto& last = lastSccOfVar[static_cast<std::size_t>(m.var())];
                if (last == sccCount) {
                    // l and ~l equivalent: the formula is unsatisfiable.
                    s_.ok_ = false;
                    return false;
                }
                last = sccCount;
            }
            for (const Lit m : members) {
                if (m.var() == rep.var()) continue;
                subst[static_cast<std::size_t>(m.var())] =
                    m.sign() ? ~rep : rep;
            }
            ++sccCount;
        }
    }

    // -- Apply the substitution ---------------------------------------------
    std::size_t substituted = 0;
    for (const Lit r : subst)
        if (r.isDefined()) ++substituted;
    if (substituted == 0) return true;
    s_.stats_.equivalentLiterals += substituted;

    const auto mapLit = [&subst](Lit l) {
        const Lit r = subst[static_cast<std::size_t>(l.var())];
        if (!r.isDefined()) return l;
        return l.sign() ? ~r : r;
    };

    // Long clauses (problem only — learnt clauses are implied either way and
    // elimination deletes any learnt clause that still mentions an old var).
    std::vector<Lit> mapped;
    const std::vector<ClauseRef> snapshot = s_.clauses_;
    for (const ClauseRef ref : snapshot) {
        if (s_.arena_.deleted(ref)) continue;
        const std::uint32_t size = s_.arena_.size(ref);
        if (!budget(size)) break;
        bool changed = false;
        mapped.clear();
        for (std::uint32_t i = 0; i < size; ++i) {
            const Lit l = s_.arena_.lit(ref, i);
            const Lit m = mapLit(l);
            changed = changed || m != l;
            mapped.push_back(m);
        }
        if (!changed) continue;
        std::sort(mapped.begin(), mapped.end());
        bool tautology = false;
        std::size_t keep = 0;
        for (std::size_t i = 0; i < mapped.size(); ++i) {
            if (keep > 0 && mapped[i] == mapped[keep - 1]) continue;
            if (keep > 0 && mapped[i] == ~mapped[keep - 1]) {
                tautology = true;
                break;
            }
            mapped[keep++] = mapped[i];
        }
        if (tautology) {
            removeLongClause(ref, /*countRemoved=*/false);
            continue;
        }
        mapped.resize(keep);
        if (!rewriteLongClause(ref, mapped)) return false;
        if (solveStop_ != StopReason::None) return true;
    }

    // Binary implication graph: collect, clear, re-add mapped + deduped.
    std::vector<std::tuple<Lit, Lit, bool>> bins;
    collectBinaries(bins);
    // Problem binaries first so a problem/learnt duplicate keeps the
    // stronger (problem) status.
    std::stable_partition(bins.begin(), bins.end(),
                          [](const auto& t) { return !std::get<2>(t); });
    std::size_t learntCount = 0;
    for (const auto& [a, b, learnt] : bins)
        if (learnt) ++learntCount;
    for (auto& list : s_.binWatches_) list.clear();
    s_.stats_.binaryClauses -= bins.size();
    s_.binaryProblem_ -= bins.size() - learntCount;
    s_.learntBytes_ -= learntCount * Solver::kBinaryBytes;

    const auto key = [](Lit a, Lit b) {
        const auto lo = static_cast<std::uint64_t>(std::min(a.index(), b.index()));
        const auto hi = static_cast<std::uint64_t>(std::max(a.index(), b.index()));
        return (hi << 32) | lo;
    };
    // The rebuild below is ATOMIC: once the watch lists are cleared, every
    // surviving binary plus the defining equivalences MUST be re-attached
    // before this function yields to any budget or solve-level stop. An
    // early exit here would silently drop clauses from the database — the
    // formula would get weaker, not just less simplified. The only
    // permitted abort is ok_ == false (a genuine level-0 conflict: the
    // formula is Unsat from the clauses already present, so the missing
    // rest cannot un-prove it). The work is charged post-hoc; an overshoot
    // is noticed by the next budget() call.
    std::unordered_map<std::uint64_t, char> seen;
    seen.reserve(bins.size());
    for (const auto& [a0, b0, learnt] : bins) {
        const Lit a = mapLit(a0);
        const Lit b = mapLit(b0);
        if (a == ~b) continue; // tautology (includes the defining binaries)
        if (a != b && !seen.emplace(key(a, b), 1).second) continue;
        if (!addCheckedBinary(a, b, learnt)) return false;
    }

    // Re-add the defining equivalences as problem binaries: (¬l ∨ r) and
    // (l ∨ ¬r) for every substituted l. Without them the substituted
    // variables would be unconstrained — models, snapshots, and assumptions
    // over them would silently break.
    for (Var v = 0; v < s_.numVars(); ++v) {
        const Lit r = subst[static_cast<std::size_t>(v)];
        if (!r.isDefined()) continue;
        const Lit l = mkLit(v);
        if (!addCheckedBinary(~l, r, /*learnt=*/false)) return false;
        if (!addCheckedBinary(l, ~r, /*learnt=*/false)) return false;
    }
    (void)budget(static_cast<std::int64_t>(bins.size() + 2 * substituted));

    return propagateTop();
}

} // namespace lar::sat
