// Failed-literal probing over the binary implication graph, with lazy
// hyper-binary resolution and literal lifting.
//
// Probing a literal l means: decide l at a temporary level 1, propagate, and
// look at what happened. A conflict proves ¬l at level 0 (a failed literal).
// Implied literals whose reason is a LONG clause expose missing binary
// shortcuts: l → m holds, so the binary (¬l ∨ m) is added to the graph
// (hyper-binary resolution) — future propagations take the O(1) binary path
// and conflict analysis gets shorter reasons. When both phases of a root
// variable are probed, literals implied by both are implied outright
// (lifting) and enqueue at level 0.
//
// Only roots of the binary graph are probed (unassigned literal with
// successors but no predecessors): probing a non-root u is subsumed by
// probing the roots above it.

#include <algorithm>

#include "sat/simplify/simplify.hpp"
#include "util/error.hpp"

namespace lar::sat {

namespace {
constexpr std::size_t kMaxHyperBinariesPerProbe = 8;
} // namespace

bool Simplifier::probe() {
    const std::size_t numLits = static_cast<std::size_t>(2 * s_.numVars());
    if (numLits == 0) return true;

    // In-degrees over the implication graph (entry {other} in list j is the
    // edge Lit(j) → other).
    std::vector<std::uint32_t> indeg(numLits, 0);
    for (const auto& list : s_.binWatches_)
        for (const Solver::BinWatcher& bw : list)
            ++indeg[static_cast<std::size_t>(bw.other.index())];

    const auto isRoot = [&](Lit l) {
        const auto i = static_cast<std::size_t>(l.index());
        return s_.value(l.var()) == lbool::Undef &&
               s_.eliminated_[static_cast<std::size_t>(l.var())] == 0 &&
               indeg[i] == 0 && !s_.binWatches_[i].empty();
    };

    // One probe: decide l at level 1, propagate, harvest. Returns false on
    // a solve-level stop (solveStop_ set). `failed` reports a conflict.
    // Implied literals are stamped with `gen` (0 = don't stamp) and those
    // already stamped with `liftGen` are collected into `lifted`.
    std::vector<Lit> hyper;
    std::vector<Lit> lifted;
    const auto probeOne = [&](Lit l, std::uint32_t gen, std::uint32_t liftGen,
                              bool& failed) {
        failed = false;
        hyper.clear();
        ++s_.stats_.probedLiterals;
        s_.newDecisionLevel(l);
        s_.enqueue(l, Reason::none());
        const std::uint64_t propsBefore = s_.stats_.propagations;
        const Solver::Conflict conflict = s_.propagate();
        // Propagation is the real cost of a probe; charge it so the tick
        // budget bounds wall time (the caller's halted() checks pick the
        // stop up after this probe completes).
        (void)budget(2 * static_cast<std::int64_t>(s_.stats_.propagations -
                                                   propsBefore));
        if (s_.pendingStop_ != StopReason::None) {
            solveStop_ = s_.pendingStop_;
            s_.pendingStop_ = StopReason::None;
            s_.backtrackTo(0);
            return false;
        }
        if (conflict.found()) {
            failed = true;
            s_.backtrackTo(0);
            return true;
        }
        const auto levelOneStart =
            static_cast<std::size_t>(s_.trailLim_[0]) + 1; // skip l itself
        for (std::size_t i = levelOneStart; i < s_.trail_.size(); ++i) {
            const Lit m = s_.trail_[i];
            const auto mi = static_cast<std::size_t>(m.index());
            if (liftGen != 0 && stamp_[mi] == liftGen) lifted.push_back(m);
            if (gen != 0) stamp_[mi] = gen;
            if (hyper.size() < kMaxHyperBinariesPerProbe &&
                s_.reasonOf(m.var()).isClause())
                hyper.push_back(m);
        }
        s_.backtrackTo(0);
        return true;
    };

    // Attach the harvested hyper-binaries (¬l ∨ m), skipping duplicates:
    // that clause would sit as entry {m} in list l.index().
    const auto attachHyper = [&](Lit l) {
        for (const Lit m : hyper) {
            const auto& list = s_.binWatches_[static_cast<std::size_t>(l.index())];
            const bool dup = std::any_of(
                list.begin(), list.end(),
                [m](const Solver::BinWatcher& bw) { return bw.other == m; });
            if (dup) continue;
            if (!addCheckedBinary(~l, m, /*learnt=*/true)) return false;
            ++s_.stats_.hyperBinaries;
            if (halted()) return true;
        }
        return true;
    };

    for (std::size_t i = 0; i < numLits; ++i) {
        const Lit l = Lit::fromIndex(static_cast<std::int32_t>(i));
        if (!isRoot(l)) continue;
        if (!budget(8 + static_cast<std::int64_t>(
                            s_.binWatches_[i].size())))
            break;
        const bool paired = isRoot(~l) && l.index() < (~l).index();

        bool failed = false;
        const std::uint32_t gen = paired ? nextStamp() : 0;
        if (!probeOne(l, gen, 0, failed)) return true; // solve-level stop
        if (failed) {
            ++s_.stats_.failedLiterals;
            if (!s_.enqueue(~l, Reason::none())) {
                s_.ok_ = false;
                return false;
            }
            if (!propagateTop()) return false;
            if (halted()) return true;
            continue;
        }
        if (!attachHyper(l)) return false;
        if (halted()) return true;

        if (!paired || s_.value(l.var()) != lbool::Undef) continue;
        lifted.clear();
        if (!probeOne(~l, 0, gen, failed)) return true;
        if (failed) {
            ++s_.stats_.failedLiterals;
            if (!s_.enqueue(l, Reason::none())) {
                s_.ok_ = false;
                return false;
            }
            if (!propagateTop()) return false;
            if (halted()) return true;
            continue;
        }
        if (!attachHyper(~l)) return false;
        if (halted()) return true;
        // Lifting: implied by l AND by ¬l → implied outright.
        for (const Lit m : lifted) {
            if (s_.value(m) == lbool::True) continue;
            ++s_.stats_.failedLiterals;
            if (!s_.enqueue(m, Reason::none())) {
                s_.ok_ = false;
                return false;
            }
        }
        if (!lifted.empty() && !propagateTop()) return false;
        if (halted()) return true;
    }
    return true;
}

} // namespace lar::sat
