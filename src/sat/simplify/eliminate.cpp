// Bounded variable elimination (SatELite-style, restricted).
//
// A variable v is eliminated by replacing every problem clause containing v
// with the non-tautological resolvents of the v-positive × v-negative
// clause pairs. Bounds keep it cheap: each phase may occur in at most
// elimOccLimit problem clauses, no resolvent may exceed elimClauseLimit
// literals, and the clause count may grow by at most elimGrowth.
//
// Safety under incremental solving:
//   * frozen variables (assumptions, exported literals) are never touched;
//   * LEARNT clauses mentioning v are deleted, never resolved — they are
//     implied by the problem clauses, so dropping them loses nothing;
//   * the original problem clauses are stashed (elimStash_) so a later
//     addClause()/assumption mentioning v can restore it exactly;
//   * the model-reconstruction stack (Extender) receives the smaller phase's
//     clauses (witness literal first) followed by the opposite-phase unit,
//     so extend() recovers a value for v from any model of the resolvents.

#include <algorithm>

#include "sat/simplify/simplify.hpp"
#include "util/error.hpp"

namespace lar::sat {

namespace {
constexpr std::size_t kMaxLearntOcc = 16;
} // namespace

bool Simplifier::eliminate() {
    buildOcc();
    const SimplifyOptions& so = s_.opts_.simplify;
    const auto numVars = static_cast<std::size_t>(s_.numVars());
    const auto occLimit = static_cast<std::size_t>(std::max(0, so.elimOccLimit));

    // Candidate prefilter: unassigned, unfrozen, not yet eliminated, and not
    // obviously too connected (occ_ is a superset, so 2× slack).
    std::vector<char> cand(numVars, 0);
    for (std::size_t v = 0; v < numVars; ++v) {
        if (s_.value(static_cast<Var>(v)) != lbool::Undef) continue;
        if (s_.frozen_[v] != 0 || s_.eliminated_[v] != 0) continue;
        const Lit pos = mkLit(static_cast<Var>(v));
        if (occ_[static_cast<std::size_t>(pos.index())].size() >
                2 * occLimit ||
            occ_[static_cast<std::size_t>((~pos).index())].size() >
                2 * occLimit)
            continue;
        cand[v] = 1;
    }

    // Learnt long clauses touching each candidate (deleted at commit time).
    std::vector<std::vector<ClauseRef>> learntOcc(numVars);
    for (const ClauseRef ref : s_.learnts_) {
        if (s_.arena_.deleted(ref)) continue;
        const std::uint32_t size = s_.arena_.size(ref);
        for (std::uint32_t i = 0; i < size; ++i) {
            const auto v =
                static_cast<std::size_t>(s_.arena_.lit(ref, i).var());
            if (cand[v] == 0) continue;
            if (learntOcc[v].size() >= kMaxLearntOcc) {
                cand[v] = 0; // too entangled with the learnt DB
                learntOcc[v].clear();
            } else {
                learntOcc[v].push_back(ref);
            }
        }
    }

    std::vector<std::vector<Lit>> resolvents;
    std::vector<Lit> merged;

    // Gathers the problem long clauses containing `lit` (validated against
    // occ_ staleness); satisfied clauses are removed on sight. Returns false
    // when the phase exceeds the occurrence bound.
    const auto gatherLong = [&](Lit lit, std::size_t bound,
                                std::vector<std::vector<Lit>>& out,
                                std::vector<ClauseRef>& refs) {
        for (const ClauseRef ref :
             occ_[static_cast<std::size_t>(lit.index())]) {
            if (s_.arena_.deleted(ref)) continue;
            const std::uint32_t size = s_.arena_.size(ref);
            bool contains = false;
            bool satisfied = false;
            std::vector<Lit> current;
            current.reserve(size);
            for (std::uint32_t i = 0; i < size; ++i) {
                const Lit l = s_.arena_.lit(ref, i);
                if (l == lit) contains = true;
                if (s_.value(l) == lbool::True) {
                    satisfied = true;
                    break;
                }
                if (s_.value(l) == lbool::False) continue;
                current.push_back(l);
            }
            if (satisfied) {
                removeLongClause(ref, /*countRemoved=*/false);
                continue;
            }
            if (!contains) continue; // stale occ entry (strengthened away)
            if (out.size() >= bound) return false;
            out.push_back(std::move(current));
            refs.push_back(ref);
        }
        return true;
    };

    for (std::size_t vi = 0; vi < numVars; ++vi) {
        if (halted()) return true;
        if (cand[vi] == 0) continue;
        const auto v = static_cast<Var>(vi);
        if (s_.value(v) != lbool::Undef) continue; // assigned since prefilter
        if (!budget(16)) return true;

        const Lit pos = mkLit(v);
        const Lit neg = ~pos;

        // Problem binaries: clause (pos ∨ other) is entry {other} in the
        // list of ¬pos (= successors of neg), and symmetrically.
        std::vector<Lit> posBinOther;
        std::vector<Lit> negBinOther;
        bool over = false;
        for (const Solver::BinWatcher& bw :
             s_.binWatches_[static_cast<std::size_t>(neg.index())]) {
            if (bw.learnt != 0) continue;
            if (s_.value(bw.other) == lbool::True) continue; // satisfied
            posBinOther.push_back(bw.other);
            if (posBinOther.size() > occLimit) {
                over = true;
                break;
            }
        }
        if (over) continue;
        for (const Solver::BinWatcher& bw :
             s_.binWatches_[static_cast<std::size_t>(pos.index())]) {
            if (bw.learnt != 0) continue;
            if (s_.value(bw.other) == lbool::True) continue;
            negBinOther.push_back(bw.other);
            if (negBinOther.size() > occLimit) {
                over = true;
                break;
            }
        }
        if (over) continue;

        std::vector<ClauseRef> posRefs;
        std::vector<ClauseRef> negRefs;
        std::vector<std::vector<Lit>> posClauses;
        std::vector<std::vector<Lit>> negClauses;
        for (const Lit other : posBinOther)
            posClauses.push_back({pos, other});
        for (const Lit other : negBinOther)
            negClauses.push_back({neg, other});
        if (!gatherLong(pos, occLimit, posClauses, posRefs)) continue;
        if (!gatherLong(neg, occLimit, negClauses, negRefs)) continue;
        const std::size_t np = posClauses.size();
        const std::size_t nn = negClauses.size();

        // Enumerate resolvents.
        resolvents.clear();
        bool skip = false;
        for (const auto& p : posClauses) {
            for (const auto& n : negClauses) {
                if (!budget(static_cast<std::int64_t>(p.size() + n.size()))) {
                    skip = true;
                    break;
                }
                const std::uint32_t gen = nextStamp();
                merged.clear();
                for (const Lit l : p) {
                    if (l == pos) continue;
                    stamp_[static_cast<std::size_t>(l.index())] = gen;
                    merged.push_back(l);
                }
                bool tautology = false;
                for (const Lit l : n) {
                    if (l == neg) continue;
                    if (stamp_[static_cast<std::size_t>((~l).index())] ==
                        gen) {
                        tautology = true;
                        break;
                    }
                    if (stamp_[static_cast<std::size_t>(l.index())] == gen)
                        continue; // duplicate
                    merged.push_back(l);
                }
                if (tautology) continue;
                if (merged.size() >
                    static_cast<std::size_t>(std::max(0, so.elimClauseLimit))) {
                    skip = true;
                    break;
                }
                resolvents.push_back(merged);
                if (resolvents.size() >
                    np + nn + static_cast<std::size_t>(
                                  std::max(0, so.elimGrowth))) {
                    skip = true;
                    break;
                }
            }
            if (skip || halted()) break;
        }
        if (halted()) return true;
        if (skip) continue;

        // ---- Commit --------------------------------------------------------

        // Stash every problem clause (both phases, current literals) for
        // restoration, and feed the smaller phase to the extender.
        auto& stash = s_.elimStash_[v];
        stash.clear();
        for (const auto& c : posClauses) stash.push_back(c);
        for (const auto& c : negClauses) stash.push_back(c);

        const bool storePos = np <= nn;
        const Lit witness = storePos ? pos : neg;
        const auto& stored = storePos ? posClauses : negClauses;
        std::vector<Lit> reordered;
        for (const auto& c : stored) {
            reordered.clear();
            reordered.push_back(witness);
            for (const Lit l : c)
                if (l != witness) reordered.push_back(l);
            s_.extender_.pushClause(v, reordered);
        }
        s_.extender_.pushUnit(~witness);

        // Delete learnt long clauses mentioning v.
        for (const ClauseRef ref : learntOcc[vi]) {
            if (s_.arena_.deleted(ref)) continue;
            const std::uint32_t size = s_.arena_.size(ref);
            bool contains = false;
            for (std::uint32_t i = 0; i < size; ++i)
                if (s_.arena_.lit(ref, i).var() == v) {
                    contains = true;
                    break;
                }
            if (contains) removeLongClause(ref, /*countRemoved=*/false);
        }

        // Delete ALL binaries touching v (problem + learnt), mirrored sides.
        for (const Lit side : {pos, neg}) {
            auto& list =
                s_.binWatches_[static_cast<std::size_t>((~side).index())];
            for (const Solver::BinWatcher& bw : list) {
                // Clause (side ∨ bw.other): erase the mirror entry {side}.
                auto& mirror = s_.binWatches_[static_cast<std::size_t>(
                    (~bw.other).index())];
                const auto it = std::find_if(
                    mirror.begin(), mirror.end(),
                    [&](const Solver::BinWatcher& m) {
                        return m.other == side && m.learnt == bw.learnt;
                    });
                expects(it != mirror.end(),
                        "eliminate: unmirrored binary entry");
                *it = mirror.back();
                mirror.pop_back();
                --s_.stats_.binaryClauses;
                if (bw.learnt != 0)
                    s_.learntBytes_ -= Solver::kBinaryBytes;
                else
                    --s_.binaryProblem_;
            }
            list.clear();
        }

        // Delete problem long clauses of both phases.
        for (const ClauseRef ref : posRefs)
            if (!s_.arena_.deleted(ref))
                removeLongClause(ref, /*countRemoved=*/false);
        for (const ClauseRef ref : negRefs)
            if (!s_.arena_.deleted(ref))
                removeLongClause(ref, /*countRemoved=*/false);

        // Add the resolvents as problem clauses.
        bool unsat = false;
        for (const auto& r : resolvents) {
            merged.clear();
            bool satisfied = false;
            for (const Lit l : r) {
                const lbool val = s_.value(l);
                if (val == lbool::True) {
                    satisfied = true;
                    break;
                }
                if (val == lbool::False) continue;
                merged.push_back(l);
            }
            if (satisfied) continue;
            if (merged.empty()) {
                unsat = true;
                break;
            }
            if (merged.size() == 1) {
                if (!s_.enqueue(merged[0], Reason::none())) {
                    unsat = true;
                    break;
                }
                if (!propagateTop()) {
                    unsat = true;
                    break;
                }
                continue;
            }
            if (merged.size() == 2) {
                if (!addCheckedBinary(merged[0], merged[1],
                                      /*learnt=*/false)) {
                    unsat = true;
                    break;
                }
                continue;
            }
            const ClauseRef ref =
                s_.arena_.alloc(merged, /*learnt=*/false, /*lbd=*/0);
            s_.clauses_.push_back(ref);
            s_.attachClause(ref);
            for (const Lit l : merged)
                occ_[static_cast<std::size_t>(l.index())].push_back(ref);
        }

        s_.eliminated_[vi] = 1;
        ++s_.numEliminated_;
        ++s_.stats_.eliminatedVars;
        if (unsat) {
            s_.ok_ = false;
            return false;
        }
        if (!propagateTop()) return false;
        if (halted()) return true;
    }
    return true;
}

} // namespace lar::sat
