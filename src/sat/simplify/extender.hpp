#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "sat/types.hpp"

namespace lar::sat {

// Model-reconstruction stack for bounded variable elimination.
//
// When variable v is eliminated, the clauses of one phase are pushed here
// (each with its v-literal first, as the witness) followed by a unit entry
// asserting the opposite phase. extend() walks the stack in reverse push
// order: if an entry's clause is unsatisfied under the partial model, the
// witness literal is flipped true. Because the resolvents added at
// elimination time are satisfied by any model of the simplified formula,
// flipping the witness can never falsify a later (= earlier-pushed) entry
// of the same variable, so a single reverse pass reconstructs a model of
// the original formula.
class Extender {
 public:
  struct Entry {
    Var var = kUndefVar;
    std::vector<Lit> clause;  // clause[0] is the witness literal of `var`
  };

  // Push one stashed clause for an eliminated variable. lits[0] must be the
  // literal of `v` contained in the clause.
  void pushClause(Var v, std::span<const Lit> lits);

  // Push the default-phase unit for an eliminated variable.
  void pushUnit(Lit l);

  // Physically remove every entry for `v` (used when the variable is
  // restored because a new clause mentions it).
  void removeVar(Var v);

  // Extend a model of the simplified formula to the original formula.
  // Unassigned variables are treated as false, matching Solver::modelValue.
  void extend(std::vector<lbool>& model) const;

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }

 private:
  std::vector<Entry> entries_;
};

}  // namespace lar::sat
