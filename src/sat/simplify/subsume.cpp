// Backward subsumption and self-subsuming resolution (strengthening).
//
// Sources are PROBLEM clauses only (binaries from the implication graph,
// long clauses up to a size cap); targets are the problem long clauses
// reached through the occurrence lists. Restricting sources to problem
// clauses keeps deletion sound without a promotion mechanism: a learnt
// clause may be dropped later (DB reduction, elimination), so it must never
// be the only thing standing in for a removed problem clause.
//
// Subset checks use a stamp array: stamp the source literals with a fresh
// generation, then one scan of the candidate counts how many of its
// literals are stamped (hits) and whether exactly one appears negated
// (self-subsumption). hits == |C| → C ⊆ D, remove D. hits == |C|-1 with one
// negated match → resolve C and D on that literal and strengthen D in place.

#include <algorithm>

#include "sat/simplify/simplify.hpp"

namespace lar::sat {

namespace {
constexpr std::uint32_t kMaxSourceSize = 16;
} // namespace

bool Simplifier::subsume() {
    buildOcc();

    std::vector<Lit> source;
    std::vector<Lit> shrunk;

    // Scans occ list `cands` against the stamped source (generation `gen`,
    // |source| = srcSize, source ref `self` or kClauseRefUndef for binaries).
    // Returns false when the formula became Unsat.
    const auto sweep = [&](const std::vector<ClauseRef>& cands,
                           std::uint32_t gen, std::uint32_t srcSize,
                           ClauseRef self) {
        // Iterate by index: strengthening can append to occ lists? (It does
        // not — only elimination appends — but stay defensive about
        // invalidation by copying the size up front.)
        const std::size_t count = cands.size();
        for (std::size_t ci = 0; ci < count; ++ci) {
            const ClauseRef d = cands[ci];
            if (d == self || s_.arena_.deleted(d)) continue;
            const std::uint32_t dSize = s_.arena_.size(d);
            if (dSize < srcSize) continue;
            if (!budget(dSize)) return true;
            std::uint32_t hits = 0;
            Lit negMatch = kUndefLit;
            bool multiNeg = false;
            for (std::uint32_t i = 0; i < dSize; ++i) {
                const Lit l = s_.arena_.lit(d, i);
                if (stamp_[static_cast<std::size_t>(l.index())] == gen) {
                    ++hits;
                } else if (stamp_[static_cast<std::size_t>((~l).index())] ==
                           gen) {
                    if (negMatch.isDefined()) {
                        multiNeg = true;
                        break;
                    }
                    negMatch = l;
                }
            }
            if (multiNeg) continue;
            if (hits == srcSize) {
                // C ⊆ D: D is redundant.
                removeLongClause(d);
                ++s_.stats_.subsumedClauses;
            } else if (hits == srcSize - 1 && negMatch.isDefined()) {
                // Self-subsuming resolution: drop ¬x from D.
                shrunk.clear();
                for (std::uint32_t i = 0; i < dSize; ++i) {
                    const Lit l = s_.arena_.lit(d, i);
                    if (l != negMatch) shrunk.push_back(l);
                }
                ++s_.stats_.strengthenedClauses;
                if (!rewriteLongClause(d, shrunk)) return false;
            }
            if (halted()) return true;
        }
        return true;
    };

    const auto stampSource = [&]() {
        const std::uint32_t gen = nextStamp();
        for (const Lit l : source)
            stamp_[static_cast<std::size_t>(l.index())] = gen;
        return gen;
    };

    // -- binary sources ------------------------------------------------------
    std::vector<std::tuple<Lit, Lit, bool>> bins;
    collectBinaries(bins);
    for (const auto& [a, b, learnt] : bins) {
        if (learnt) continue;
        if (halted()) return true;
        if (s_.value(a) != lbool::Undef || s_.value(b) != lbool::Undef)
            continue; // satisfied/unit binaries are the propagator's job
        if (!budget(4)) return true;
        source.assign({a, b});
        const std::uint32_t gen = stampSource();
        // Both occ lists: occ[a] finds D ⊇ {a, ·}, occ[b] finds D ⊇ {·, b} —
        // together they cover subsumption and both strengthening patterns.
        for (const Lit probe : {a, b}) {
            if (!sweep(occ_[static_cast<std::size_t>(probe.index())], gen, 2,
                       kClauseRefUndef))
                return false;
            if (halted()) return true;
        }
    }

    // -- long sources --------------------------------------------------------
    const std::vector<ClauseRef> snapshot = s_.clauses_;
    for (const ClauseRef ref : snapshot) {
        if (halted()) return true;
        if (s_.arena_.deleted(ref)) continue;
        const std::uint32_t size = s_.arena_.size(ref);
        if (size > kMaxSourceSize) continue;
        if (!budget(size)) return true;
        source.clear();
        bool satisfied = false;
        for (std::uint32_t i = 0; i < size; ++i) {
            const Lit l = s_.arena_.lit(ref, i);
            if (s_.value(l) == lbool::True) {
                satisfied = true;
                break;
            }
            if (s_.value(l) == lbool::False) continue;
            source.push_back(l);
        }
        if (satisfied) {
            removeLongClause(ref, /*countRemoved=*/false);
            continue;
        }
        if (source.size() < 2) continue; // unit/empty: propagation handles it
        const std::uint32_t gen = stampSource();

        // Probe the literal with the shortest occ list — every D ⊇ C
        // contains it, so its list sees all subsumption candidates.
        Lit minLit = source[0];
        for (const Lit l : source) {
            if (occ_[static_cast<std::size_t>(l.index())].size() <
                occ_[static_cast<std::size_t>(minLit.index())].size())
                minLit = l;
        }
        if (!sweep(occ_[static_cast<std::size_t>(minLit.index())], gen,
                   static_cast<std::uint32_t>(source.size()), ref))
            return false;
        if (halted()) return true;
        // Strengthening where minLit itself is the flipped literal: D ⊇
        // (C \ {minLit}) ∪ {¬minLit} lives in occ[¬minLit], not occ[minLit].
        if (!sweep(occ_[static_cast<std::size_t>((~minLit).index())], gen,
                   static_cast<std::uint32_t>(source.size()), ref))
            return false;
    }
    return true;
}

} // namespace lar::sat
