#pragma once

#include <cstdint>
#include <tuple>
#include <vector>

#include "sat/clause.hpp"
#include "sat/solver.hpp"
#include "sat/types.hpp"

namespace lar::sat {

// One inprocessing round over a Solver at decision level 0. Constructed and
// driven by Solver::runSimplifyRound(); split across several translation
// units (scc.cpp, probe.cpp, subsume.cpp, vivify.cpp, eliminate.cpp) by
// technique. The class is a friend of Solver and manipulates its clause
// database directly.
//
// Budget protocol: every technique charges abstract ticks through budget();
// when the per-round tick budget runs out the round stops cleanly
// (stopped_) and the search continues on the partially simplified formula.
// Solve-level limits (deadline, cancellation, propagation budget) are
// polled on the same cadence; when one trips, solveStop_ records it and
// run() returns Stop so the enclosing solve() can return Unknown.
//
// Invariant maintained throughout: after every level-0 propagation all
// trail reasons are cleared (propagateTop), so freeing a clause can never
// leave a dangling reason for garbageCollect() to forward.
class Simplifier {
public:
    /// `tickLimit` is this round's tick budget (< 0 = unlimited), already
    /// scaled by the scheduler — see Solver::runSimplifyRound().
    Simplifier(Solver& s, std::int64_t tickLimit);

    /// Runs the full pipeline once. See Solver::SimplifyOutcome.
    Solver::SimplifyOutcome run();

private:
    // -- techniques (one TU each) -------------------------------------------
    bool equivalence(); ///< scc.cpp: equivalent-literal substitution
    bool probe();       ///< probe.cpp: failed literals + hyper-binary resolution
    bool subsume();     ///< subsume.cpp: subsumption + self-subsuming resolution
    bool vivify();      ///< vivify.cpp: clause vivification
    bool eliminate();   ///< eliminate.cpp: bounded variable elimination

    // -- shared helpers (simplify.cpp) --------------------------------------
    /// Charges `cost` ticks and polls solve-level limits; false once the
    /// round must stop (tick budget, memory, or a solve-level limit).
    bool budget(std::int64_t cost);
    [[nodiscard]] bool halted() const {
        return stopped_ || solveStop_ != StopReason::None || !s_.ok_;
    }
    /// Propagates to fixpoint at level 0 and clears all trail reasons.
    /// Returns false on conflict (formula Unsat; s_.ok_ cleared).
    bool propagateTop();
    /// Detaches + frees a long clause and counts it removed.
    void removeLongClause(ClauseRef ref, bool countRemoved = true);
    /// Rewrites a long clause to `lits` (already value-filtered literals may
    /// remain; the helper re-checks values at level 0). Handles every
    /// resulting size: empty → Unsat, unit → enqueue + propagate, binary →
    /// implication graph, ≥3 → in-place truncate keeping the ref stable.
    /// Returns false when the formula became Unsat.
    bool rewriteLongClause(ClauseRef ref, const std::vector<Lit>& lits);
    /// Adds a value-checked binary clause (a ∨ b) at level 0. Handles
    /// degenerate cases (tautology, satisfied, unit, empty). Returns false
    /// when the formula became Unsat.
    bool addCheckedBinary(Lit a, Lit b, bool learnt);
    /// Rebuilds occ_ (problem long clauses only) if not yet built this round.
    void buildOcc();
    /// Collects live binaries as ordered (a, b, learnt) triples, each once.
    void collectBinaries(std::vector<std::tuple<Lit, Lit, bool>>& out) const;
    /// Fresh stamp generation for the subset-check scratch array.
    std::uint32_t nextStamp();

    Solver& s_;
    std::int64_t ticks_ = 0;
    std::int64_t tickLimit_ = -1;
    bool stopped_ = false;        ///< tick/memory budget exhausted (benign)
    bool memStop_ = false;        ///< the stop was the memory budget
    StopReason solveStop_ = StopReason::None; ///< solve-level limit tripped
    int pollCountdown_ = 0;

    bool occBuilt_ = false;
    std::vector<std::vector<ClauseRef>> occ_; ///< Lit::index() → problem refs
    std::vector<std::uint32_t> stamp_;        ///< Lit::index() → generation
    std::uint32_t stampGen_ = 0;
};

} // namespace lar::sat
