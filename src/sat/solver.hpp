// CDCL SAT solver.
//
// A from-scratch conflict-driven clause-learning solver in the MiniSat
// lineage, providing the substrate the paper's "shim layer over SAT solvers"
// builds on. Features:
//
//   * clause storage split by length: long clauses packed in a 32-bit-ref
//     ClauseArena with inline headers (size/LBD/activity), binary clauses in
//     a dedicated implication graph that never touches the watch lists,
//   * two-watched-literal propagation with blocker literals and {ClauseRef,
//     blocker} watcher entries (8 bytes each),
//   * first-UIP conflict analysis over tagged reasons (arena ref or binary
//     implying literal) with learned-clause minimization,
//   * EVSIDS variable activities on a binary heap, phase saving,
//   * Luby restarts, LBD-based learned-clause database reduction, arena
//     compaction (garbage collection) once the freed fraction crosses a
//     threshold, exact learnt-memory accounting for the memory budget,
//   * incremental solving under assumptions with unsat-core extraction
//     (failed-assumption analysis), and
//   * ablation switches (disable learning / VSIDS / restarts / phase saving)
//     used by the solver-ablation bench.
//
// With learning disabled the solver falls back to a sound DPLL search that
// flips the deepest unflipped decision on conflict.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "sat/arena.hpp"
#include "sat/clause.hpp"
#include "sat/simplify/extender.hpp"
#include "sat/simplify/options.hpp"
#include "sat/types.hpp"

namespace lar::sat {

/// Outcome of a solve() call. Unknown is only returned when a budget,
/// deadline, or cancellation flag is set (see Solver::stopReason()).
enum class SolveResult { Sat, Unsat, Unknown };

/// Why the last solve() returned Unknown (None after Sat/Unsat).
enum class StopReason {
    None,
    ConflictBudget,
    PropagationBudget,
    MemoryBudget,
    Deadline,
    Cancelled,
};

/// Human-readable StopReason name ("conflict_budget", "deadline", …).
[[nodiscard]] const char* toString(StopReason reason);

/// Why the most recent inprocessing round stopped early (None when every
/// scheduled round ran to completion). A budget-stopped round is not an
/// error — the search simply continues on the partially simplified formula.
enum class SimplifyStop : std::uint8_t { None, Ticks, Memory };

/// Human-readable SimplifyStop name ("none", "ticks", "memory").
[[nodiscard]] const char* toString(SimplifyStop stop);

/// Search statistics, reset per solver instance.
struct SolverStats {
    std::uint64_t decisions = 0;
    std::uint64_t propagations = 0;
    std::uint64_t conflicts = 0;
    std::uint64_t restarts = 0;
    std::uint64_t learntLiterals = 0;
    std::uint64_t removedClauses = 0;
    std::uint64_t solves = 0;
    std::uint64_t maxDecisionLevel = 0; ///< deepest decision level reached
    /// LIVE binary clauses in the implication graph (problem + learnt).
    /// Grows on attach and shrinks when level-0 simplification removes
    /// satisfied binaries — a gauge, not the historic creation counter.
    std::uint64_t binaryClauses = 0;
    std::uint64_t lbdSum = 0; ///< Σ LBD over learned clauses (avg = lbdSum/conflicts)
    std::uint64_t exportedClauses = 0; ///< learnt clauses offered via exportClauseFn
    std::uint64_t importedClauses = 0; ///< foreign clauses integrated via importClausesFn
    std::uint64_t arenaGcs = 0; ///< clause-arena compaction passes performed

    // -- inprocessing (see src/sat/simplify/) -------------------------------
    std::uint64_t simplifyRounds = 0;      ///< completed or budget-stopped rounds
    std::uint64_t subsumedClauses = 0;     ///< clauses removed by subsumption
    std::uint64_t strengthenedClauses = 0; ///< self-subsuming resolution hits
    std::uint64_t vivifiedClauses = 0;     ///< clauses shrunk/removed by vivification
    std::uint64_t probedLiterals = 0;      ///< failed-literal probes attempted
    std::uint64_t failedLiterals = 0;      ///< probes that yielded a level-0 unit
    std::uint64_t hyperBinaries = 0;       ///< binaries added by hyper-binary resolution
    std::uint64_t equivalentLiterals = 0;  ///< literals substituted by their SCC root
    std::uint64_t eliminatedVars = 0;      ///< variables removed by bounded elimination
    std::uint64_t restoredVars = 0;        ///< eliminated vars re-activated by new clauses
    std::uint64_t simplifyStops = 0;       ///< rounds halted by the tick/memory budget
    double simplifyMs = 0.0;               ///< total wall time spent simplifying
    SimplifyStop lastSimplifyStop = SimplifyStop::None;
    /// Arena words freed but not yet compacted, in bytes (gauge, sampled at
    /// the end of each solve()).
    std::uint64_t arenaWasteBytes = 0;
};

/// A learnt clause received from another solver in a portfolio (see
/// SolverOptions::importClausesFn). Literals use this solver's variable
/// numbering — sharing is only sound between solvers built from the
/// identical clause database (same variables, same addClause sequence).
struct ImportedClause {
    std::vector<Lit> lits;
    int lbd = 0;
};

/// Warm-start state exported from one solver and importable into another
/// built from the IDENTICAL clause database (the same newVar()/addClause()
/// sequence — e.g. a deterministic replay of the same compilation, which is
/// exactly what a fingerprint-keyed compilation cache guarantees). The
/// soundness argument mirrors portfolio clause exchange: learnt clauses are
/// derived by resolution over the clause database alone — assumption
/// literals may appear in them but never condition them — so they are
/// implied by the problem clauses and preserve every verdict when replayed
/// into an identically-built solver. Phase polarity and branching activity
/// are pure heuristic state and can never change semantics. Snapshots are
/// only exportable while the clause database still equals the baseline
/// (see Solver::markSnapshotBaseline); a solver that grew clauses past it
/// (optimization counters, bound assertions, blocking clauses) refuses.
struct SolverSnapshot {
    int numVars = 0;                     ///< variable count at the baseline
    std::vector<ImportedClause> clauses; ///< short learnt clauses + level-0 units
    std::vector<char> polarity;          ///< saved phases, one per baseline var
    std::vector<double> activity;        ///< activities normalized to max 1.0

    /// An empty snapshot means "nothing to warm-start from" (export refused
    /// or the solver had learnt nothing exportable).
    [[nodiscard]] bool empty() const { return numVars == 0; }
};

/// Snapshot handed to SolverOptions::progressFn every `progressEvery`
/// conflicts while search() runs — the raw feed for progress dashboards and
/// stall/timeout early warning.
struct SolverProgress {
    std::uint64_t conflicts = 0;
    std::uint64_t propagations = 0;
    std::uint64_t decisions = 0;
    std::uint64_t restarts = 0;
    int decisionLevel = 0;          ///< at the probed conflict
    std::size_t learntClauses = 0;  ///< learnt-DB size
    double elapsedMs = 0.0;         ///< since the enclosing solve() began
    double propagationsPerSec = 0.0; ///< over the current solve() call
};

/// Feature switches; defaults are the full CDCL configuration.
struct SolverOptions {
    bool useLearning = true;    ///< false → DPLL with decision flipping
    bool useVsids = true;       ///< false → lowest-index unassigned variable
    bool useRestarts = true;    ///< Luby restarts (ignored when !useLearning)
    bool usePhaseSaving = true; ///< remember last polarity per variable
    bool reduceDb = true;       ///< periodically drop high-LBD learnt clauses
    double varDecay = 0.95;
    double clauseDecay = 0.999;
    int restartBase = 100;          ///< conflicts per Luby unit
    std::int64_t conflictBudget = -1; ///< -1 = unlimited; else Unknown on exhaustion
    /// Propagation budget per solve() call; -1 = unlimited. Bounds work even
    /// on instances that propagate heavily without conflicting or deciding.
    std::int64_t propagationBudget = -1;
    /// Cap on live learnt-clause memory (arena clauses + learnt binaries) in
    /// MiB; -1 = unlimited. Accounting is exact arena arithmetic. When
    /// learning pushes past the cap the solver forces a database reduction
    /// and an arena compaction; if still over (everything left is glue or
    /// locked), it stops with Unknown.
    std::int64_t memoryBudgetMb = -1;
    /// Wall-clock budget per solve() call in milliseconds; -1 = unlimited.
    /// Checked at conflicts and periodically at decisions, so exhaustion
    /// returns Unknown within a few propagation batches of the deadline.
    std::int64_t timeBudgetMs = -1;
    /// Cooperative cancellation: when non-null, the solver polls this flag on
    /// the same cadence as the deadline (every conflict, every 256 decisions,
    /// and periodically inside long propagation streaks) and returns Unknown
    /// with StopReason::Cancelled shortly after it becomes true. The flag is
    /// owned by the caller and may be flipped from any thread.
    const std::atomic<bool>* cancelFlag = nullptr;
    /// Nonzero: initial phase of each variable is drawn deterministically
    /// from this seed instead of the all-false default. The search stays
    /// reproducible for a fixed seed; 0 keeps the classic polarity.
    std::uint64_t randomSeed = 0;
    /// Fire `progressFn` every this many conflicts (0 = never). Observation
    /// only — the callback cannot influence the search, so verdicts and
    /// models are identical with probes on or off.
    std::int64_t progressEvery = 0;
    std::function<void(const SolverProgress&)> progressFn;

    // -- portfolio clause sharing (see smt::PortfolioBackend) ---------------
    //
    // Threading contract: a Solver is strictly single-threaded. solve() must
    // never run concurrently on one instance (asserted), options must not be
    // mutated while a solve() is in flight (setOptions() enforces this), and
    // every callback — progressFn, exportClauseFn, importClausesFn — is
    // invoked on the thread that called solve(). The only member safely
    // touched from other threads during a solve is the atomic behind
    // `cancelFlag`. Cross-thread clause exchange therefore happens inside
    // the callbacks (e.g. through a lock-free sat::ClauseExchange), never by
    // poking the solver directly.

    /// Called (on the solving thread) for each learnt clause that passes the
    /// sharing filter `lbd <= shareLbdMax || size <= shareSizeMax`. The span
    /// is only valid for the duration of the call.
    std::function<void(std::span<const Lit>, int)> exportClauseFn;
    /// Called (on the solving thread) at solve() start and at every restart
    /// boundary, always at decision level 0. Appends foreign learnt clauses;
    /// each is checked against the current level-0 assignment before being
    /// attached (satisfied → skipped, falsified literals → dropped, empty
    /// remainder → Unsat, unit → enqueued at level 0). Binary imports land
    /// in the implication graph.
    std::function<void(std::vector<ImportedClause>&)> importClausesFn;
    /// Sharing filter: export learnt clauses with LBD at most this…
    int shareLbdMax = 4;
    /// …or with at most this many literals (short clauses prune a lot even
    /// when their LBD is poor).
    int shareSizeMax = 2;

    /// Inprocessing pipeline knobs (subsumption, vivification, probing,
    /// equivalence substitution, bounded variable elimination). Rounds run
    /// at solve() start and at restart boundaries, budgeted by
    /// simplify.tickBudget and the solver memory budget.
    SimplifyOptions simplify;
};

class Solver {
public:
    Solver() = default;
    explicit Solver(const SolverOptions& options) : opts_(options) {}

    Solver(const Solver&) = delete;
    Solver& operator=(const Solver&) = delete;

    /// Creates a fresh variable and returns it.
    Var newVar();

    /// Number of variables created so far.
    [[nodiscard]] int numVars() const { return static_cast<int>(assigns_.size()); }

    /// Number of problem (non-learnt) clauses currently held (long clauses
    /// in the arena plus problem binaries in the implication graph).
    [[nodiscard]] std::size_t numClauses() const {
        return clauses_.size() + binaryProblem_;
    }

    /// Adds a clause (vector is consumed). Returns false when the clause
    /// makes the formula trivially unsatisfiable (empty after simplification
    /// or contradicting a level-0 assignment); the solver is then unusable
    /// except for solve(), which reports Unsat.
    bool addClause(std::vector<Lit> lits);

    /// Convenience overloads.
    bool addClause(Lit a) { return addClause(std::vector<Lit>{a}); }
    bool addClause(Lit a, Lit b) { return addClause(std::vector<Lit>{a, b}); }
    bool addClause(Lit a, Lit b, Lit c) { return addClause(std::vector<Lit>{a, b, c}); }

    /// Solves the formula under the given assumptions (may be empty). The
    /// solver stays usable afterwards: more clauses/vars can be added and
    /// solve() called again (incremental use). Strictly single-threaded:
    /// concurrent solve() calls on one instance are rejected (LogicError) —
    /// see the threading contract above the sharing hooks in SolverOptions.
    SolveResult solve(std::span<const Lit> assumptions = {});

    /// Model access after Sat: value assigned to `v` in the last model.
    [[nodiscard]] bool modelValue(Var v) const;
    [[nodiscard]] bool modelValue(Lit l) const { return modelValue(l.var()) != l.sign(); }

    /// After Unsat under assumptions: a subset of the assumptions that is
    /// already unsatisfiable with the clauses (the "failed assumptions").
    [[nodiscard]] const std::vector<Lit>& unsatCore() const { return core_; }

    /// True when the clause set became unsatisfiable at level 0.
    [[nodiscard]] bool inconsistent() const { return !ok_; }

    [[nodiscard]] const SolverStats& stats() const { return stats_; }

    /// Why the most recent solve() returned Unknown; None after Sat/Unsat.
    [[nodiscard]] StopReason stopReason() const { return stopReason_; }

    [[nodiscard]] const SolverOptions& options() const { return opts_; }

    /// Replaces the solver options wholesale. Throws LogicError when a
    /// solve() is in flight on this instance — the threading contract
    /// (options are immutable during a solve) is enforced here, not merely
    /// documented. Call strictly between solver calls.
    void setOptions(const SolverOptions& options);

    /// Exact bytes of live learnt state (arena clauses + learnt binaries);
    /// this is what `memoryBudgetMb` caps.
    [[nodiscard]] std::size_t learntMemoryBytes() const { return learntBytes_; }

    // -- warm-start snapshots ----------------------------------------------

    /// Marks the current formula as the snapshot baseline: exportSnapshot()
    /// only succeeds while no addClause() has happened past this point.
    /// Clauses added later (PB counters, optimization bound assertions,
    /// blocking clauses) would make subsequently-learnt clauses conditional
    /// on them, so exporting then would be unsound for a solver that only
    /// replays the baseline. Call it right after the initial encoding.
    void markSnapshotBaseline();

    /// Exports warm-start state for a solver built from the identical clause
    /// database. Returns an empty snapshot when no baseline was marked, the
    /// clause database grew past the baseline, or the formula is already
    /// inconsistent. Exported learnt clauses pass the sharing filter
    /// (shareLbdMax/shareSizeMax), mention baseline variables only, and are
    /// capped at `maxClauses`; learnt binaries export straight from the
    /// implication graph; level-0 implied literals are exported as unit
    /// clauses (they are consequences of the clause set — assumptions only
    /// ever sit at decision levels >= 1).
    [[nodiscard]] SolverSnapshot exportSnapshot(std::size_t maxClauses = 4096) const;

    /// Imports warm-start state at decision level 0, before solving starts.
    /// Clauses are validated exactly like portfolio imports (unknown vars
    /// skip the clause, tautologies and satisfied clauses are skipped,
    /// falsified literals are dropped, units enqueue at level 0, an empty
    /// remainder makes the formula Unsat); polarity/activity prefixes are
    /// adopted and the branching heap is rebuilt. A snapshot from a
    /// different variable space (numVars mismatch) is refused. Returns the
    /// number of clauses integrated (0 on refusal).
    std::size_t importSnapshot(const SolverSnapshot& snapshot);

    /// Current value of a variable/literal in the solver trail (Undef when
    /// unassigned). Exposed for encoder-level propagation checks in tests.
    [[nodiscard]] lbool value(Var v) const { return assigns_[static_cast<std::size_t>(v)]; }
    [[nodiscard]] lbool value(Lit l) const {
        const lbool v = value(l.var());
        return l.sign() ? ~v : v;
    }

    // -- inprocessing -------------------------------------------------------

    /// Marks `v` as ineligible for variable elimination, permanently. Callers
    /// freeze every variable whose identity must survive simplification:
    /// assumption variables (done automatically by solve()), literals exported
    /// to the outside world (KB nodes, selectors), warm-start variables.
    void freeze(Var v);
    [[nodiscard]] bool isFrozen(Var v) const {
        return frozen_[static_cast<std::size_t>(v)] != 0;
    }
    /// True while `v` is eliminated from the active formula. An eliminated
    /// variable is restored automatically when a new clause or assumption
    /// mentions it.
    [[nodiscard]] bool isEliminated(Var v) const {
        return eliminated_[static_cast<std::size_t>(v)] != 0;
    }
    /// Runs one inprocessing round immediately (outside any solve()). Returns
    /// false when the formula became trivially unsatisfiable. Exposed for
    /// tests and offline preprocessing; solve() schedules rounds itself.
    bool simplify();

private:
    friend class Simplifier;
    /// Watcher entry for a long (arena) clause: the clause plus a blocker
    /// literal whose truth proves the clause satisfied without touching it.
    struct Watcher {
        ClauseRef ref = kClauseRefUndef;
        Lit blocker = kUndefLit;
    };
    /// One half of a binary clause (x ∨ other), stored in x's falsification
    /// list: when ~x lands on the trail, `other` is implied outright.
    struct BinWatcher {
        Lit other = kUndefLit;
        std::uint32_t learnt = 0;
    };
    struct VarData {
        Reason reason;
        int level = 0;
    };
    struct DecisionFrame {
        Lit decision = kUndefLit;
        bool flipped = false; ///< DPLL mode: both phases tried?
    };
    /// A falsified clause found by propagate(): an arena clause, or a binary
    /// clause given by its two (both false) literals.
    struct Conflict {
        ClauseRef ref = kClauseRefUndef;
        Lit binA = kUndefLit;
        Lit binB = kUndefLit;
        [[nodiscard]] bool found() const {
            return ref != kClauseRefUndef || binA.isDefined();
        }
        [[nodiscard]] bool isBinary() const {
            return ref == kClauseRefUndef && binA.isDefined();
        }
    };

    // -- search ------------------------------------------------------------
    SolveResult search();
    Lit pickBranchLit();
    bool enqueue(Lit l, Reason from);
    Conflict propagate();
    void analyze(const Conflict& conflict, std::vector<Lit>& learnt,
                 int& backtrackLevel, int& lbd);
    bool litRedundant(Lit l, std::uint32_t abstractLevels);
    void analyzeFinal(Lit falsifiedAssumption);
    void backtrackTo(int level);
    bool handleConflictDpll();
    void newDecisionLevel(Lit decision);

    // -- state helpers -----------------------------------------------------
    [[nodiscard]] int decisionLevel() const {
        return static_cast<int>(trailLim_.size());
    }
    [[nodiscard]] int levelOf(Var v) const {
        return varData_[static_cast<std::size_t>(v)].level;
    }
    [[nodiscard]] Reason reasonOf(Var v) const {
        return varData_[static_cast<std::size_t>(v)].reason;
    }
    [[nodiscard]] std::uint32_t abstractLevel(Var v) const {
        return 1u << (levelOf(v) & 31);
    }
    void attachClause(ClauseRef ref);
    void detachClause(ClauseRef ref);
    void attachBinary(Lit a, Lit b, bool learnt);
    /// Integrates a simplified (>= 2 literals, none assigned-at-0) clause:
    /// binary → implication graph, longer → arena + watches. Shared by
    /// addClause / clause import / snapshot import.
    void storeClause(std::span<const Lit> lits, bool learnt, int lbd);
    /// Drains importClausesFn at decision level 0; false → formula became
    /// Unsat (an imported clause is empty under the level-0 assignment).
    bool importSharedClauses();
    void removeSatisfiedAtLevelZero();
    void reduceLearntDb();
    /// Relocates every live clause into a fresh arena, dropping the wasted
    /// words left by free(); watcher/reason refs are rewritten in place so
    /// search state (including watcher order) is untouched.
    void garbageCollect();
    /// garbageCollect() once wasted words cross kGcWasteFraction.
    void maybeGarbageCollect();
    int computeLbd(const std::vector<Lit>& lits);
    [[nodiscard]] bool lockedReason(ClauseRef ref) const {
        const Lit first = arena_.lit(ref, 0);
        return value(first) == lbool::True &&
               reasonOf(first.var()) == Reason::clause(ref);
    }

    // -- activity ----------------------------------------------------------
    void varBumpActivity(Var v);
    void varDecayActivity();
    void clauseBumpActivity(ClauseRef ref);
    void clauseDecayActivity();

    // -- order heap (binary max-heap on activity_) ---------------------------
    void heapInsert(Var v);
    void heapUpdate(Var v);
    Var heapPopMax();
    [[nodiscard]] bool heapEmpty() const { return heap_.empty(); }
    void heapSiftUp(std::size_t i);
    void heapSiftDown(std::size_t i);
    [[nodiscard]] bool heapLess(Var a, Var b) const {
        return activity_[static_cast<std::size_t>(a)] <
               activity_[static_cast<std::size_t>(b)];
    }

    // -- inprocessing internals ---------------------------------------------
    /// Outcome of one inprocessing round. Done = round finished (possibly
    /// budget-stopped, which is benign); Unsat = formula proven unsatisfiable;
    /// Stop = a solve-level limit (deadline/cancel/propagation budget) tripped
    /// and stopReason_ was set — the enclosing solve() must return Unknown.
    enum class SimplifyOutcome { Done, Unsat, Stop };
    SimplifyOutcome runSimplifyRound();
    [[nodiscard]] bool simplifyDue() const;
    /// Re-activates an eliminated variable: re-adds its stashed problem
    /// clauses, erases its extender entries, and cascades to any other
    /// eliminated variables those clauses mention.
    void restoreEliminated(Var v);
    void restoreForLits(std::span<const Lit> lits);
    /// addClause body without the restore scan / addClauseCalls_ bump —
    /// shared by addClause() and restoreEliminated().
    bool addClauseInternal(std::vector<Lit> lits);
    /// Replays the elimination reconstruction stack over model_.
    void extendModel();

    static std::int64_t luby(std::int64_t i);
    [[nodiscard]] bool deadlineExpired() const;
    /// Checks every stop condition (cancellation, deadline, conflict and
    /// propagation budgets); returns the first that tripped, else None.
    [[nodiscard]] StopReason limitExceeded() const;
    void reportProgress();

    /// Live memory of one learnt binary clause: two 8-byte BinWatcher
    /// entries, one in each literal's list.
    static constexpr std::size_t kBinaryBytes = 2 * sizeof(BinWatcher);
    /// Compact the arena once this fraction of it is freed-but-unreclaimed.
    static constexpr double kGcWasteFraction = 0.25;

    // -- data ---------------------------------------------------------------
    SolverOptions opts_;
    SolverStats stats_;
    bool ok_ = true;

    ClauseArena arena_;                 ///< all long clauses, problem + learnt
    std::vector<ClauseRef> clauses_;    ///< problem clauses (>= 3 lits)
    std::vector<ClauseRef> learnts_;    ///< learnt clauses (>= 3 lits)
    std::vector<std::vector<Watcher>> watches_;       ///< indexed by Lit::index()
    std::vector<std::vector<BinWatcher>> binWatches_; ///< binary implication graph
    std::size_t binaryProblem_ = 0; ///< live problem binaries (for numClauses)

    std::vector<lbool> assigns_;
    std::vector<VarData> varData_;
    std::vector<char> polarity_; ///< saved phase (1 = last assigned false)
    std::vector<double> activity_;
    double varInc_ = 1.0;
    double claInc_ = 1.0;

    std::vector<Lit> trail_;
    std::vector<int> trailLim_;
    std::vector<DecisionFrame> frames_; ///< parallel to trailLim_
    std::size_t qhead_ = 0;

    std::vector<Var> heap_;        ///< heap of vars ordered by activity
    std::vector<int> heapIndex_;   ///< var -> position in heap_ or -1

    std::vector<Lit> assumptions_;
    std::vector<Lit> core_;

    std::vector<char> seen_;       ///< scratch for analyze()
    std::vector<Lit> analyzeToClear_;
    std::vector<Lit> analyzeStack_;

    std::vector<lbool> model_;

    double maxLearnts_ = 0;
    StopReason stopReason_ = StopReason::None;
    StopReason pendingStop_ = StopReason::None; ///< set mid-propagate
    std::int64_t conflictLimit_ = -1;     ///< absolute stats_.conflicts cap
    std::int64_t propagationLimit_ = -1;  ///< absolute stats_.propagations cap
    std::int64_t memoryBudgetBytes_ = -1; ///< live learnt-memory cap in bytes
    std::size_t learntBytes_ = 0; ///< exact live learnt bytes (arena + binaries)
    std::int64_t conflictsSinceRestart_ = 0;
    std::int64_t restartLimit_ = 0;
    int restartCount_ = 0;
    std::chrono::steady_clock::time_point deadline_{};
    bool hasDeadline_ = false;
    std::chrono::steady_clock::time_point solveStart_{};
    std::uint64_t propagationsAtSolveStart_ = 0;
    std::vector<ImportedClause> importScratch_; ///< importSharedClauses buffer
    std::vector<Lit> simplifyScratch_;          ///< clause-simplification buffer

    // -- inprocessing state --------------------------------------------------
    std::vector<char> frozen_;     ///< vars excluded from elimination
    std::vector<char> eliminated_; ///< vars currently eliminated
    std::size_t numEliminated_ = 0;
    Extender extender_; ///< model-reconstruction stack for eliminated vars
    /// Original problem clauses of each eliminated var, for restoration when
    /// a later addClause()/assumption mentions it.
    std::unordered_map<Var, std::vector<std::vector<Lit>>> elimStash_;
    std::uint64_t conflictsAtLastSimplify_ = 0;
    bool simplifiedOnce_ = false;
    std::atomic<bool> solveActive_{false}; ///< guards the single-thread contract

    // Snapshot baseline: addClause() invocations are counted (not stored
    // clauses — unit and satisfied clauses never reach clauses_) so any
    // post-baseline growth is detected, including pure-unit additions.
    std::uint64_t addClauseCalls_ = 0;
    std::int64_t baselineVars_ = -1;        ///< -1 = no baseline marked
    std::uint64_t baselineClauseCalls_ = 0;
};

} // namespace lar::sat
