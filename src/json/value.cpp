#include "json/value.hpp"

namespace lar::json {

Value& Object::operator[](std::string_view key) {
    if (auto it = index_.find(key); it != index_.end()) return entries_[it->second].second;
    entries_.emplace_back(std::string(key), Value{});
    index_.emplace(std::string(key), entries_.size() - 1);
    return entries_.back().second;
}

const Value& Object::at(std::string_view key) const {
    auto it = index_.find(key);
    if (it == index_.end())
        throw LogicError("json::Object::at: missing key '" + std::string(key) + "'");
    return entries_[it->second].second;
}

bool Object::contains(std::string_view key) const { return index_.count(key) > 0; }

bool Object::erase(std::string_view key) {
    auto it = index_.find(key);
    if (it == index_.end()) return false;
    const std::size_t pos = it->second;
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(pos));
    index_.erase(it);
    for (auto& [k, idx] : index_)
        if (idx > pos) --idx;
    return true;
}

bool Object::operator==(const Object& other) const { return entries_ == other.entries_; }

Type Value::type() const {
    switch (data_.index()) {
        case 0: return Type::Null;
        case 1: return Type::Bool;
        case 2: return Type::Int;
        case 3: return Type::Double;
        case 4: return Type::String;
        case 5: return Type::Array;
        case 6: return Type::Object;
    }
    return Type::Null;
}

namespace {
[[noreturn]] void typeMismatch(const char* wanted) {
    throw LogicError(std::string("json::Value: not a ") + wanted);
}
} // namespace

bool Value::asBool() const {
    if (auto* p = std::get_if<bool>(&data_)) return *p;
    typeMismatch("bool");
}

std::int64_t Value::asInt() const {
    if (auto* p = std::get_if<std::int64_t>(&data_)) return *p;
    typeMismatch("int");
}

double Value::asDouble() const {
    if (auto* p = std::get_if<double>(&data_)) return *p;
    if (auto* p = std::get_if<std::int64_t>(&data_)) return static_cast<double>(*p);
    typeMismatch("number");
}

const std::string& Value::asString() const {
    if (auto* p = std::get_if<std::string>(&data_)) return *p;
    typeMismatch("string");
}

const Array& Value::asArray() const {
    if (auto* p = std::get_if<Array>(&data_)) return *p;
    typeMismatch("array");
}

Array& Value::asArray() {
    if (auto* p = std::get_if<Array>(&data_)) return *p;
    typeMismatch("array");
}

const Object& Value::asObject() const {
    if (auto* p = std::get_if<Object>(&data_)) return *p;
    typeMismatch("object");
}

Object& Value::asObject() {
    if (auto* p = std::get_if<Object>(&data_)) return *p;
    typeMismatch("object");
}

Value& Value::operator[](std::string_view key) {
    if (isNull()) data_ = Object{};
    return asObject()[key];
}

} // namespace lar::json
