// JSON serialization with optional pretty-printing.
#pragma once

#include <string>

#include "json/value.hpp"

namespace lar::json {

/// Serializes `v` compactly (no whitespace).
[[nodiscard]] std::string write(const Value& v);

/// Serializes `v` with newlines and `indent`-space indentation per level.
[[nodiscard]] std::string writePretty(const Value& v, int indent = 2);

} // namespace lar::json
