// A small, dependency-free JSON document model.
//
// Knowledge-base encodings (Listing 1 style hardware specs, system
// descriptions, workloads) are serialized as JSON. Objects preserve key
// insertion order so generated encodings print in the same field order as
// the paper's listings.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "util/error.hpp"

namespace lar::json {

enum class Type { Null, Bool, Int, Double, String, Array, Object };

class Value;

/// Object with stable (insertion) key order.
class Object {
public:
    /// Returns the value for `key`, inserting a null value when absent.
    Value& operator[](std::string_view key);

    /// Returns the value for `key`; throws LogicError when absent.
    [[nodiscard]] const Value& at(std::string_view key) const;

    [[nodiscard]] bool contains(std::string_view key) const;
    [[nodiscard]] std::size_t size() const { return entries_.size(); }
    [[nodiscard]] bool empty() const { return entries_.empty(); }

    /// Entries in insertion order.
    [[nodiscard]] const std::vector<std::pair<std::string, Value>>& entries() const {
        return entries_;
    }

    /// Removes `key` if present; returns true when something was removed.
    bool erase(std::string_view key);

    bool operator==(const Object& other) const;

private:
    std::vector<std::pair<std::string, Value>> entries_;
    std::map<std::string, std::size_t, std::less<>> index_;
};

using Array = std::vector<Value>;

/// A JSON value: null, bool, integer, double, string, array, or object.
class Value {
public:
    Value() : data_(nullptr) {}
    Value(std::nullptr_t) : data_(nullptr) {}
    Value(bool b) : data_(b) {}
    Value(int v) : data_(static_cast<std::int64_t>(v)) {}
    Value(std::int64_t v) : data_(v) {}
    Value(double v) : data_(v) {}
    Value(const char* s) : data_(std::string(s)) {}
    Value(std::string s) : data_(std::move(s)) {}
    Value(std::string_view s) : data_(std::string(s)) {}
    Value(Array a) : data_(std::move(a)) {}
    Value(Object o) : data_(std::move(o)) {}

    [[nodiscard]] Type type() const;
    [[nodiscard]] bool isNull() const { return type() == Type::Null; }
    [[nodiscard]] bool isBool() const { return type() == Type::Bool; }
    [[nodiscard]] bool isInt() const { return type() == Type::Int; }
    [[nodiscard]] bool isDouble() const { return type() == Type::Double; }
    [[nodiscard]] bool isNumber() const { return isInt() || isDouble(); }
    [[nodiscard]] bool isString() const { return type() == Type::String; }
    [[nodiscard]] bool isArray() const { return type() == Type::Array; }
    [[nodiscard]] bool isObject() const { return type() == Type::Object; }

    /// Typed accessors; each throws LogicError on a type mismatch.
    [[nodiscard]] bool asBool() const;
    [[nodiscard]] std::int64_t asInt() const;
    [[nodiscard]] double asDouble() const; // accepts Int too
    [[nodiscard]] const std::string& asString() const;
    [[nodiscard]] const Array& asArray() const;
    [[nodiscard]] Array& asArray();
    [[nodiscard]] const Object& asObject() const;
    [[nodiscard]] Object& asObject();

    /// Object convenience: value.at("key"). Throws unless this is an object.
    [[nodiscard]] const Value& at(std::string_view key) const { return asObject().at(key); }
    [[nodiscard]] Value& operator[](std::string_view key);

    bool operator==(const Value& other) const { return data_ == other.data_; }

private:
    std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array, Object>
        data_;
};

} // namespace lar::json
