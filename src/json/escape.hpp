// The one JSON string escaper.
//
// Three code paths used to carry their own copy — json::write, the
// structured logger's jsonQuote, and (almost) the HTTP response writer —
// each with slightly different coverage of the control range. They now all
// route through here. Header-only on purpose: lar_util sits below lar_json
// in the link order, so util::logLineJson can include this without creating
// a dependency cycle.
//
// Escaping rules (RFC 8259 §7): `"` and `\` get a backslash, the common
// control characters use their two-character forms (\b \f \n \r \t), every
// other byte below 0x20 becomes \u00XX. Bytes >= 0x20 — including DEL and
// arbitrary (possibly invalid) UTF-8 — pass through untouched; producing
// well-formed JSON framing is this function's job, transcoding is not.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

namespace lar::json {

/// Appends the escaped form of `s` to `out` WITHOUT surrounding quotes.
inline void appendEscaped(std::string& out, std::string_view s) {
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x",
                                  static_cast<unsigned char>(c));
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
}

/// Appends `"escaped(s)"` — the escaped form inside double quotes.
inline void appendQuoted(std::string& out, std::string_view s) {
    out += '"';
    appendEscaped(out, s);
    out += '"';
}

/// Returns `"escaped(s)"` as a fresh string.
[[nodiscard]] inline std::string quoted(std::string_view s) {
    std::string out;
    out.reserve(s.size() + 2);
    appendQuoted(out, s);
    return out;
}

} // namespace lar::json
