#include "json/parse.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <string>

#include "util/error.hpp"

namespace lar::json {

namespace {

class Parser {
public:
    explicit Parser(std::string_view text) : text_(text) {}

    Value parseDocument() {
        Value v = parseValue();
        skipWhitespace();
        if (pos_ != text_.size()) fail("trailing characters after JSON value");
        return v;
    }

private:
    [[noreturn]] void fail(const std::string& why) const {
        throw ParseError("json: " + why + " at offset " + std::to_string(pos_));
    }

    void skipWhitespace() {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char peek() {
        if (pos_ >= text_.size()) fail("unexpected end of input");
        return text_[pos_];
    }

    char advance() {
        const char c = peek();
        ++pos_;
        return c;
    }

    void expect(char c) {
        if (advance() != c) {
            --pos_;
            fail(std::string("expected '") + c + "'");
        }
    }

    bool consumeKeyword(std::string_view kw) {
        if (text_.substr(pos_, kw.size()) == kw) {
            pos_ += kw.size();
            return true;
        }
        return false;
    }

    Value parseValue() {
        skipWhitespace();
        const char c = peek();
        switch (c) {
            case '{': return parseObject();
            case '[': return parseArray();
            case '"': return Value(parseString());
            case 't':
                if (consumeKeyword("true")) return Value(true);
                fail("invalid literal");
            case 'f':
                if (consumeKeyword("false")) return Value(false);
                fail("invalid literal");
            case 'n':
                if (consumeKeyword("null")) return Value(nullptr);
                fail("invalid literal");
            default: return parseNumber();
        }
    }

    Value parseObject() {
        expect('{');
        Object obj;
        skipWhitespace();
        if (peek() == '}') {
            ++pos_;
            return Value(std::move(obj));
        }
        while (true) {
            skipWhitespace();
            std::string key = parseString();
            skipWhitespace();
            expect(':');
            obj[key] = parseValue();
            skipWhitespace();
            const char c = advance();
            if (c == '}') return Value(std::move(obj));
            if (c != ',') {
                --pos_;
                fail("expected ',' or '}' in object");
            }
        }
    }

    Value parseArray() {
        expect('[');
        Array arr;
        skipWhitespace();
        if (peek() == ']') {
            ++pos_;
            return Value(std::move(arr));
        }
        while (true) {
            arr.push_back(parseValue());
            skipWhitespace();
            const char c = advance();
            if (c == ']') return Value(std::move(arr));
            if (c != ',') {
                --pos_;
                fail("expected ',' or ']' in array");
            }
        }
    }

    std::string parseString() {
        expect('"');
        std::string out;
        while (true) {
            const char c = advance();
            if (c == '"') return out;
            if (c == '\\') {
                const char esc = advance();
                switch (esc) {
                    case '"': out += '"'; break;
                    case '\\': out += '\\'; break;
                    case '/': out += '/'; break;
                    case 'b': out += '\b'; break;
                    case 'f': out += '\f'; break;
                    case 'n': out += '\n'; break;
                    case 'r': out += '\r'; break;
                    case 't': out += '\t'; break;
                    case 'u': out += parseUnicodeEscape(); break;
                    default: fail("invalid escape sequence");
                }
            } else if (static_cast<unsigned char>(c) < 0x20) {
                fail("unescaped control character in string");
            } else {
                out += c;
            }
        }
    }

    std::string parseUnicodeEscape() {
        unsigned cp = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = advance();
            cp <<= 4;
            if (c >= '0' && c <= '9') cp |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f') cp |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F') cp |= static_cast<unsigned>(c - 'A' + 10);
            else fail("invalid \\u escape");
        }
        // Encode the BMP code point as UTF-8 (surrogate pairs unsupported;
        // the knowledge base is ASCII in practice).
        std::string out;
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        }
        return out;
    }

    Value parseNumber() {
        const std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
                text_[pos_] == '+' || text_[pos_] == '-'))
            ++pos_;
        const std::string_view tok = text_.substr(start, pos_ - start);
        if (tok.empty() || tok == "-") fail("invalid number");
        const bool isFloat = tok.find_first_of(".eE") != std::string_view::npos;
        if (!isFloat) {
            std::int64_t v = 0;
            auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
            if (ec == std::errc() && p == tok.data() + tok.size()) return Value(v);
        }
        double d = 0;
        auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), d);
        if (ec != std::errc() || p != tok.data() + tok.size() || !std::isfinite(d))
            fail("invalid number");
        return Value(d);
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

} // namespace

Value parse(std::string_view text) { return Parser(text).parseDocument(); }

} // namespace lar::json
