#include "json/write.hpp"

#include <cmath>
#include <cstdio>

#include "json/escape.hpp"

namespace lar::json {

namespace {

void writeEscaped(std::string& out, const std::string& s) {
    appendQuoted(out, s);
}

void writeNumber(std::string& out, double d) {
    // Shortest round-trip-ish representation; integral doubles print as N.0.
    char buf[32];
    if (d == std::floor(d) && std::abs(d) < 1e15) {
        std::snprintf(buf, sizeof buf, "%.1f", d);
    } else {
        std::snprintf(buf, sizeof buf, "%.17g", d);
    }
    out += buf;
}

void writeValue(std::string& out, const Value& v, int indent, int depth) {
    const bool pretty = indent > 0;
    const auto pad = [&](int levels) {
        if (!pretty) return;
        out += '\n';
        out.append(static_cast<std::size_t>(indent * levels), ' ');
    };
    switch (v.type()) {
        case Type::Null: out += "null"; return;
        case Type::Bool: out += v.asBool() ? "true" : "false"; return;
        case Type::Int: out += std::to_string(v.asInt()); return;
        case Type::Double: writeNumber(out, v.asDouble()); return;
        case Type::String: writeEscaped(out, v.asString()); return;
        case Type::Array: {
            const Array& arr = v.asArray();
            if (arr.empty()) {
                out += "[]";
                return;
            }
            out += '[';
            for (std::size_t i = 0; i < arr.size(); ++i) {
                if (i > 0) out += ',';
                pad(depth + 1);
                writeValue(out, arr[i], indent, depth + 1);
            }
            pad(depth);
            out += ']';
            return;
        }
        case Type::Object: {
            const Object& obj = v.asObject();
            if (obj.empty()) {
                out += "{}";
                return;
            }
            out += '{';
            bool first = true;
            for (const auto& [key, val] : obj.entries()) {
                if (!first) out += ',';
                first = false;
                pad(depth + 1);
                writeEscaped(out, key);
                out += pretty ? ": " : ":";
                writeValue(out, val, indent, depth + 1);
            }
            pad(depth);
            out += '}';
            return;
        }
    }
}

} // namespace

std::string write(const Value& v) {
    std::string out;
    writeValue(out, v, /*indent=*/0, /*depth=*/0);
    return out;
}

std::string writePretty(const Value& v, int indent) {
    std::string out;
    writeValue(out, v, indent, 0);
    return out;
}

} // namespace lar::json
