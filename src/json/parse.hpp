// Recursive-descent JSON parser.
#pragma once

#include <string_view>

#include "json/value.hpp"

namespace lar::json {

/// Parses a complete JSON document. Throws ParseError on malformed input or
/// trailing garbage.
[[nodiscard]] Value parse(std::string_view text);

} // namespace lar::json
