// Tseitin-style circuit-to-CNF construction over a sat::Solver.
//
// All higher-level encodings (cardinality, pseudo-Boolean, integers, the
// reasoning layer's requirement formulas) funnel through this builder. Gate
// outputs are fresh literals constrained to be *equivalent* to their gate
// function, so they can be used in both polarities.
#pragma once

#include <span>
#include <vector>

#include "sat/solver.hpp"
#include "sat/types.hpp"

namespace lar::encode {

class CnfBuilder {
public:
    explicit CnfBuilder(sat::Solver& solver) : solver_(&solver) {}

    /// The underlying solver.
    [[nodiscard]] sat::Solver& solver() { return *solver_; }

    /// Fresh positive literal over a fresh variable.
    [[nodiscard]] sat::Lit newLit() { return sat::mkLit(solver_->newVar()); }

    /// Constant-true literal (created lazily, one per builder).
    [[nodiscard]] sat::Lit trueLit();
    /// Constant-false literal.
    [[nodiscard]] sat::Lit falseLit() { return ~trueLit(); }

    /// Asserts a clause (top-level disjunction).
    void addClause(std::vector<sat::Lit> lits) { solver_->addClause(std::move(lits)); }
    void addClause(sat::Lit a) { solver_->addClause(a); }
    void addClause(sat::Lit a, sat::Lit b) { solver_->addClause(a, b); }
    void addClause(sat::Lit a, sat::Lit b, sat::Lit c) { solver_->addClause(a, b, c); }

    /// Asserts `l` at the top level.
    void assertLit(sat::Lit l) { solver_->addClause(l); }

    /// out ⇔ AND(inputs). Empty input yields trueLit().
    [[nodiscard]] sat::Lit mkAnd(std::span<const sat::Lit> inputs);
    /// out ⇔ OR(inputs). Empty input yields falseLit().
    [[nodiscard]] sat::Lit mkOr(std::span<const sat::Lit> inputs);
    [[nodiscard]] sat::Lit mkAnd(sat::Lit a, sat::Lit b);
    [[nodiscard]] sat::Lit mkOr(sat::Lit a, sat::Lit b);
    /// out ⇔ (a → b).
    [[nodiscard]] sat::Lit mkImplies(sat::Lit a, sat::Lit b) { return mkOr(~a, b); }
    /// out ⇔ (a ↔ b).
    [[nodiscard]] sat::Lit mkIff(sat::Lit a, sat::Lit b);
    /// out ⇔ (a ⊕ b).
    [[nodiscard]] sat::Lit mkXor(sat::Lit a, sat::Lit b) { return ~mkIff(a, b); }
    /// out ⇔ (cond ? ifTrue : ifFalse).
    [[nodiscard]] sat::Lit mkIte(sat::Lit cond, sat::Lit ifTrue, sat::Lit ifFalse);

    /// Top-level implication a → b (no gate variable).
    void assertImplies(sat::Lit a, sat::Lit b) { addClause(~a, b); }
    /// Top-level equivalence a ↔ b.
    void assertIff(sat::Lit a, sat::Lit b) {
        addClause(~a, b);
        addClause(a, ~b);
    }

private:
    sat::Solver* solver_;
    sat::Lit true_ = sat::kUndefLit;
};

} // namespace lar::encode
