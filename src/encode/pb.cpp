#include "encode/pb.hpp"

#include <algorithm>
#include <map>

#include "util/error.hpp"

namespace lar::encode {

namespace {

/// A merge-tree node: ascending (sum, literal) pairs.
struct Node {
    std::vector<std::int64_t> sums;
    std::vector<sat::Lit> lits;
};

std::int64_t clampSum(std::int64_t s, std::int64_t clampAt) {
    return (clampAt >= 0 && s > clampAt) ? clampAt : s;
}

Node mergeNodes(CnfBuilder& b, const Node& left, const Node& right,
                std::int64_t clampAt) {
    // Collect distinct attainable sums.
    std::map<std::int64_t, sat::Lit> outputs;
    const auto ensureOutput = [&](std::int64_t s) -> sat::Lit {
        auto it = outputs.find(s);
        if (it != outputs.end()) return it->second;
        const sat::Lit l = b.newLit();
        outputs.emplace(s, l);
        return l;
    };

    for (std::size_t i = 0; i <= left.sums.size(); ++i) {
        for (std::size_t j = 0; j <= right.sums.size(); ++j) {
            if (i == 0 && j == 0) continue;
            const std::int64_t sum =
                clampSum((i > 0 ? left.sums[i - 1] : 0) +
                             (j > 0 ? right.sums[j - 1] : 0),
                         clampAt);
            const sat::Lit out = ensureOutput(sum);
            std::vector<sat::Lit> clause;
            if (i > 0) clause.push_back(~left.lits[i - 1]);
            if (j > 0) clause.push_back(~right.lits[j - 1]);
            clause.push_back(out);
            b.addClause(std::move(clause));
        }
    }

    Node merged;
    merged.sums.reserve(outputs.size());
    merged.lits.reserve(outputs.size());
    for (const auto& [sum, lit] : outputs) {
        merged.sums.push_back(sum);
        merged.lits.push_back(lit);
    }
    return merged;
}

} // namespace

namespace {

/// Leaf for a group of mutually exclusive terms: one output per distinct
/// clamped weight; each term implies every output at or below its weight.
Node makeExclusiveLeaf(CnfBuilder& b, const std::vector<PbTerm>& group,
                       std::int64_t clampAt) {
    if (group.size() == 1) {
        Node leaf;
        leaf.sums.push_back(clampSum(group[0].weight, clampAt));
        leaf.lits.push_back(group[0].lit);
        return leaf;
    }
    std::map<std::int64_t, sat::Lit> outputs;
    for (const PbTerm& t : group) {
        expects(t.weight > 0, "PbSum: weights must be positive");
        const std::int64_t w = clampSum(t.weight, clampAt);
        if (outputs.find(w) == outputs.end()) outputs.emplace(w, b.newLit());
    }
    Node leaf;
    for (const auto& [sum, lit] : outputs) {
        leaf.sums.push_back(sum);
        leaf.lits.push_back(lit);
    }
    // term → every output threshold it reaches.
    for (const PbTerm& t : group) {
        const std::int64_t w = clampSum(t.weight, clampAt);
        for (std::size_t i = 0; i < leaf.sums.size() && leaf.sums[i] <= w; ++i)
            b.addClause(~t.lit, leaf.lits[i]);
    }
    return leaf;
}

std::vector<std::int64_t> finishTree(CnfBuilder& builder, std::vector<Node> layer,
                                     std::int64_t clampAt,
                                     std::vector<sat::Lit>& outputs) {
    while (layer.size() > 1) {
        std::sort(layer.begin(), layer.end(), [](const Node& a, const Node& b) {
            return a.sums.size() > b.sums.size(); // merge smallest (at back)
        });
        Node right = std::move(layer.back());
        layer.pop_back();
        Node left = std::move(layer.back());
        layer.pop_back();
        layer.push_back(mergeNodes(builder, left, right, clampAt));
    }
    std::vector<std::int64_t> sums = std::move(layer[0].sums);
    outputs = std::move(layer[0].lits);
    // Ladder clauses: higher sums imply lower ones.
    for (std::size_t i = 0; i + 1 < outputs.size(); ++i)
        builder.addClause(~outputs[i + 1], outputs[i]);
    return sums;
}

} // namespace

PbSum::PbSum(CnfBuilder& builder,
             std::span<const std::vector<PbTerm>> exclusiveGroups,
             std::int64_t clampAt) {
    std::vector<Node> layer;
    layer.reserve(exclusiveGroups.size());
    for (const std::vector<PbTerm>& group : exclusiveGroups) {
        if (group.empty()) continue;
        layer.push_back(makeExclusiveLeaf(builder, group, clampAt));
    }
    if (layer.empty()) return;
    sums_ = finishTree(builder, std::move(layer), clampAt, outputs_);
}

PbSum::PbSum(CnfBuilder& builder, std::span<const PbTerm> terms,
             std::int64_t clampAt) {
    std::vector<Node> layer;
    layer.reserve(terms.size());
    for (const PbTerm& t : terms) {
        expects(t.weight > 0, "PbSum: weights must be positive");
        Node leaf;
        leaf.sums.push_back(clampSum(t.weight, clampAt));
        leaf.lits.push_back(t.lit);
        layer.push_back(std::move(leaf));
    }
    if (layer.empty()) return;
    sums_ = finishTree(builder, std::move(layer), clampAt, outputs_);
}

sat::Lit PbSum::geqLit(CnfBuilder& builder, std::int64_t s) const {
    if (s <= 0) return builder.trueLit();
    // Smallest attainable sum ≥ s.
    const auto it = std::lower_bound(sums_.begin(), sums_.end(), s);
    if (it == sums_.end()) return builder.falseLit();
    return outputs_[static_cast<std::size_t>(it - sums_.begin())];
}

sat::Lit PbSum::atMostLit(CnfBuilder& builder, std::int64_t bound) const {
    // sum ≤ bound ⇔ ¬(sum ≥ bound+1).
    const sat::Lit geq = geqLit(builder, bound + 1);
    return ~geq;
}

void PbSum::assertAtMost(CnfBuilder& builder, std::int64_t bound) const {
    builder.assertLit(atMostLit(builder, bound));
}

void addPbAtMost(CnfBuilder& builder, std::span<const PbTerm> terms,
                 std::int64_t bound) {
    expects(bound >= 0, "addPbAtMost: negative bound");
    // Terms whose weight alone exceeds the bound must be false; drop them
    // from the counter to keep it small.
    std::vector<PbTerm> kept;
    kept.reserve(terms.size());
    std::int64_t total = 0;
    for (const PbTerm& t : terms) {
        expects(t.weight > 0, "addPbAtMost: weights must be positive");
        if (t.weight > bound) {
            builder.assertLit(~t.lit);
        } else {
            kept.push_back(t);
            total += t.weight;
        }
    }
    if (total <= bound) return; // cannot be violated
    const PbSum sum(builder, kept, /*clampAt=*/bound + 1);
    sum.assertAtMost(builder, bound);
}

std::int64_t evalPb(const sat::Solver& solver, std::span<const PbTerm> terms) {
    std::int64_t total = 0;
    for (const PbTerm& t : terms)
        if (solver.modelValue(t.lit)) total += t.weight;
    return total;
}

} // namespace lar::encode
