// Cardinality constraints over literals.
//
// Two encodings are provided:
//   * sequential counter (Sinz 2005) — compact, good for one-shot bounds;
//   * totalizer (Bailleux & Boufkhad 2003) — unary outputs that support
//     incremental bound tightening, used by the MaxSAT optimizer.
// The encoding ablation bench compares the two.
#pragma once

#include <span>
#include <vector>

#include "encode/cnf_builder.hpp"

namespace lar::encode {

enum class CardinalityEncoding { SequentialCounter, Totalizer };

/// Asserts Σ lits ≤ k (k ≥ 0) using the chosen encoding.
void addAtMost(CnfBuilder& builder, std::span<const sat::Lit> lits, int k,
               CardinalityEncoding encoding = CardinalityEncoding::SequentialCounter);

/// Asserts Σ lits ≥ k.
void addAtLeast(CnfBuilder& builder, std::span<const sat::Lit> lits, int k,
                CardinalityEncoding encoding = CardinalityEncoding::SequentialCounter);

/// Asserts Σ lits = k.
void addExactly(CnfBuilder& builder, std::span<const sat::Lit> lits, int k,
                CardinalityEncoding encoding = CardinalityEncoding::SequentialCounter);

/// Pairwise at-most-one (quadratic but optimal for very small sets).
void addAtMostOnePairwise(CnfBuilder& builder, std::span<const sat::Lit> lits);

/// Totalizer: unary counter tree over input literals.
///
/// After construction, output(i) is a literal equivalent in one direction to
/// "at least i+1 inputs are true" (inputs imply outputs). Ladder clauses
/// output(i+1) → output(i) are added so that asserting ~output(k) enforces
/// Σ inputs ≤ k. Bounds can be tightened incrementally by asserting further
/// output negations.
class Totalizer {
public:
    Totalizer(CnfBuilder& builder, std::span<const sat::Lit> inputs);

    [[nodiscard]] std::size_t size() const { return outputs_.size(); }

    /// Literal "at least i+1 inputs true" (0-based); i < size().
    [[nodiscard]] sat::Lit output(std::size_t i) const;

    /// Literal whose assertion enforces Σ inputs ≤ k (for k < size());
    /// for k ≥ size() there is nothing to enforce and trueLit is returned.
    [[nodiscard]] sat::Lit atMostLit(CnfBuilder& builder, int k) const;

    /// Hard-asserts Σ inputs ≤ k.
    void assertAtMost(CnfBuilder& builder, int k) const;

private:
    std::vector<sat::Lit> outputs_;
};

} // namespace lar::encode
