#include "encode/cnf_builder.hpp"

namespace lar::encode {

sat::Lit CnfBuilder::trueLit() {
    if (!true_.isDefined()) {
        true_ = newLit();
        solver_->addClause(true_);
    }
    return true_;
}

sat::Lit CnfBuilder::mkAnd(std::span<const sat::Lit> inputs) {
    if (inputs.empty()) return trueLit();
    if (inputs.size() == 1) return inputs[0];
    const sat::Lit out = newLit();
    // out → each input
    for (const sat::Lit in : inputs) addClause(~out, in);
    // all inputs → out
    std::vector<sat::Lit> clause;
    clause.reserve(inputs.size() + 1);
    for (const sat::Lit in : inputs) clause.push_back(~in);
    clause.push_back(out);
    addClause(std::move(clause));
    return out;
}

sat::Lit CnfBuilder::mkOr(std::span<const sat::Lit> inputs) {
    if (inputs.empty()) return falseLit();
    if (inputs.size() == 1) return inputs[0];
    const sat::Lit out = newLit();
    // each input → out
    for (const sat::Lit in : inputs) addClause(~in, out);
    // out → some input
    std::vector<sat::Lit> clause;
    clause.reserve(inputs.size() + 1);
    clause.push_back(~out);
    for (const sat::Lit in : inputs) clause.push_back(in);
    addClause(std::move(clause));
    return out;
}

sat::Lit CnfBuilder::mkAnd(sat::Lit a, sat::Lit b) {
    const sat::Lit ins[] = {a, b};
    return mkAnd(std::span<const sat::Lit>(ins));
}

sat::Lit CnfBuilder::mkOr(sat::Lit a, sat::Lit b) {
    const sat::Lit ins[] = {a, b};
    return mkOr(std::span<const sat::Lit>(ins));
}

sat::Lit CnfBuilder::mkIff(sat::Lit a, sat::Lit b) {
    const sat::Lit out = newLit();
    addClause(~out, ~a, b);
    addClause(~out, a, ~b);
    addClause(out, a, b);
    addClause(out, ~a, ~b);
    return out;
}

sat::Lit CnfBuilder::mkIte(sat::Lit cond, sat::Lit ifTrue, sat::Lit ifFalse) {
    const sat::Lit out = newLit();
    addClause(~cond, ~ifTrue, out);
    addClause(~cond, ifTrue, ~out);
    addClause(cond, ~ifFalse, out);
    addClause(cond, ifFalse, ~out);
    return out;
}

} // namespace lar::encode
