// Pseudo-Boolean (weighted) sums via the Generalized Totalizer Encoding
// (Joshi, Martins, Manquinho 2015).
//
// A PbSum builds a merge tree whose root carries one output literal per
// attainable weighted sum; input literals imply the outputs, and ladder
// clauses make the outputs monotone so a single negated output enforces an
// upper bound. Sums above a clamp threshold can be collapsed into one
// overflow output to keep the encoding small when only bounded queries are
// needed. Used for resource-capacity constraints and as the MaxSAT
// objective counter.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "encode/cnf_builder.hpp"

namespace lar::encode {

/// One weighted term of a pseudo-Boolean sum; weight must be positive.
struct PbTerm {
    std::int64_t weight = 1;
    sat::Lit lit;
};

/// Unbounded clamp sentinel.
inline constexpr std::int64_t kNoClamp = -1;

class PbSum {
public:
    /// Builds the counter. When `clampAt` >= 0, all sums ≥ clampAt are
    /// merged into a single output (sufficient to enforce bounds < clampAt).
    PbSum(CnfBuilder& builder, std::span<const PbTerm> terms,
          std::int64_t clampAt = kNoClamp);

    /// Builds the counter from groups of *mutually exclusive* terms (at most
    /// one literal per group is ever true). Each group becomes a single
    /// merge-tree leaf with one output per distinct weight, which keeps the
    /// encoding linear for selector-style inputs (e.g. "exactly one hardware
    /// model per class") where the flat construction would enumerate subset
    /// sums. The exclusivity is an invariant the caller must guarantee.
    PbSum(CnfBuilder& builder, std::span<const std::vector<PbTerm>> exclusiveGroups,
          std::int64_t clampAt = kNoClamp);

    /// Attainable sums in ascending order (clamped representative last).
    [[nodiscard]] const std::vector<std::int64_t>& sums() const { return sums_; }

    /// Largest attainable (possibly clamped) sum; 0 when there are no terms.
    [[nodiscard]] std::int64_t maxSum() const {
        return sums_.empty() ? 0 : sums_.back();
    }

    /// Literal that is forced true whenever the weighted sum is ≥ `s`.
    /// For s ≤ 0 returns trueLit; for s > maxSum() returns falseLit.
    [[nodiscard]] sat::Lit geqLit(CnfBuilder& builder, std::int64_t s) const;

    /// Literal whose assertion enforces (weighted sum) ≤ `bound`.
    [[nodiscard]] sat::Lit atMostLit(CnfBuilder& builder, std::int64_t bound) const;

    /// Hard-asserts (weighted sum) ≤ `bound`. With a clamp, `bound` must be
    /// below the clamp threshold to be meaningful.
    void assertAtMost(CnfBuilder& builder, std::int64_t bound) const;

private:
    std::vector<std::int64_t> sums_;
    std::vector<sat::Lit> outputs_; ///< parallel to sums_
};

/// Convenience: asserts Σ weight_i · lit_i ≤ bound.
void addPbAtMost(CnfBuilder& builder, std::span<const PbTerm> terms,
                 std::int64_t bound);

/// Evaluates Σ weight_i · [lit_i true in model] against the solver's model.
[[nodiscard]] std::int64_t evalPb(const sat::Solver& solver,
                                  std::span<const PbTerm> terms);

} // namespace lar::encode
