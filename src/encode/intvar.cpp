#include "encode/intvar.hpp"

#include "util/error.hpp"

namespace lar::encode {

IntVar IntVar::create(CnfBuilder& builder, int lo, int hi) {
    expects(lo <= hi, "IntVar: lo must not exceed hi");
    std::vector<sat::Lit> leq;
    leq.reserve(static_cast<std::size_t>(hi - lo));
    for (int i = lo; i < hi; ++i) leq.push_back(builder.newLit());
    for (std::size_t i = 0; i + 1 < leq.size(); ++i)
        builder.assertImplies(leq[i], leq[i + 1]); // (x ≤ c) → (x ≤ c+1)
    return IntVar(lo, hi, std::move(leq));
}

sat::Lit IntVar::leqLit(CnfBuilder& builder, int c) const {
    if (c >= hi_) return builder.trueLit();
    if (c < lo_) return builder.falseLit();
    return leq_[static_cast<std::size_t>(c - lo_)];
}

sat::Lit IntVar::eqLit(CnfBuilder& builder, int c) const {
    if (c < lo_ || c > hi_) return builder.falseLit();
    const sat::Lit le = leqLit(builder, c);
    const sat::Lit ge = geqLit(builder, c);
    if (le == builder.trueLit()) return ge;
    if (ge == builder.trueLit()) return le;
    return builder.mkAnd(le, ge);
}

int IntVar::valueIn(const sat::Solver& solver) const {
    for (std::size_t i = 0; i < leq_.size(); ++i)
        if (solver.modelValue(leq_[i])) return lo_ + static_cast<int>(i);
    return hi_;
}

std::vector<PbTerm> IntVar::scaledTerms(std::int64_t scale) const {
    expects(scale > 0, "IntVar::scaledTerms: scale must be positive");
    // (x − lo) = Σ_i [x > lo+i] = Σ_i ¬leq_i.
    std::vector<PbTerm> terms;
    terms.reserve(leq_.size());
    for (const sat::Lit q : leq_) terms.push_back({scale, ~q});
    return terms;
}

} // namespace lar::encode
