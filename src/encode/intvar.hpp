// Bounded integer variables with the order encoding.
//
// An IntVar over [lo, hi] is represented by literals q_i ⇔ (x ≤ lo+i) with
// ladder clauses q_i → q_{i+1}. Comparisons are single literals; equality is
// a conjunction; arithmetic flows through PbSum by expanding the variable
// into unit-weight indicator bits. The reasoning layer uses IntVars for
// quantities an architect leaves open (e.g. how many SmartNIC-equipped racks
// to provision).
#pragma once

#include <cstdint>
#include <vector>

#include "encode/cnf_builder.hpp"
#include "encode/pb.hpp"

namespace lar::encode {

class IntVar {
public:
    /// Creates a variable ranging over [lo, hi] (lo ≤ hi).
    static IntVar create(CnfBuilder& builder, int lo, int hi);

    [[nodiscard]] int lo() const { return lo_; }
    [[nodiscard]] int hi() const { return hi_; }

    /// Literal for (x ≤ c). Constant-folds to true/false outside [lo, hi).
    [[nodiscard]] sat::Lit leqLit(CnfBuilder& builder, int c) const;
    /// Literal for (x ≥ c).
    [[nodiscard]] sat::Lit geqLit(CnfBuilder& builder, int c) const {
        return ~leqLit(builder, c - 1);
    }
    /// Literal for (x = c); a fresh gate except at the bounds.
    [[nodiscard]] sat::Lit eqLit(CnfBuilder& builder, int c) const;

    /// The variable's value in the solver's current model.
    [[nodiscard]] int valueIn(const sat::Solver& solver) const;

    /// Expands (x − lo) into unit-weight PB terms, each scaled by `scale`:
    /// Σ terms = scale·(x − lo). Used to embed the variable in linear sums.
    [[nodiscard]] std::vector<PbTerm> scaledTerms(std::int64_t scale) const;

private:
    IntVar(int lo, int hi, std::vector<sat::Lit> leq)
        : lo_(lo), hi_(hi), leq_(std::move(leq)) {}

    int lo_ = 0;
    int hi_ = 0;
    std::vector<sat::Lit> leq_; ///< leq_[i] ⇔ x ≤ lo+i, i ∈ [0, hi-lo)
};

} // namespace lar::encode
