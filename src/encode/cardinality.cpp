#include "encode/cardinality.hpp"

#include "util/error.hpp"

namespace lar::encode {

namespace {

// Sinz sequential counter: registers s[i][j] = "at least j+1 of the first
// i+1 inputs are true", clipped at k+1 columns.
void sequentialAtMost(CnfBuilder& b, std::span<const sat::Lit> lits, int k) {
    const int n = static_cast<int>(lits.size());
    if (k >= n) return;
    if (k == 0) {
        for (const sat::Lit l : lits) b.assertLit(~l);
        return;
    }
    // s[j] holds the register column for the previous input row.
    std::vector<sat::Lit> prev(static_cast<std::size_t>(k));
    for (int j = 0; j < k; ++j) prev[static_cast<std::size_t>(j)] = b.newLit();
    // Row 0: s0,0 ↔ x0 (one direction suffices), s0,j>0 forced false.
    b.addClause(~lits[0], prev[0]);
    for (int j = 1; j < k; ++j) b.assertLit(~prev[static_cast<std::size_t>(j)]);

    for (int i = 1; i < n - 1; ++i) {
        std::vector<sat::Lit> cur(static_cast<std::size_t>(k));
        for (int j = 0; j < k; ++j) cur[static_cast<std::size_t>(j)] = b.newLit();
        // x_i → s_i,0 ; s_{i-1},j → s_i,j ; x_i ∧ s_{i-1},j-1 → s_i,j
        b.addClause(~lits[static_cast<std::size_t>(i)], cur[0]);
        for (int j = 0; j < k; ++j)
            b.addClause(~prev[static_cast<std::size_t>(j)],
                        cur[static_cast<std::size_t>(j)]);
        for (int j = 1; j < k; ++j)
            b.addClause(~lits[static_cast<std::size_t>(i)],
                        ~prev[static_cast<std::size_t>(j - 1)],
                        cur[static_cast<std::size_t>(j)]);
        // Overflow: x_i ∧ s_{i-1},k-1 → ⊥
        b.addClause(~lits[static_cast<std::size_t>(i)],
                    ~prev[static_cast<std::size_t>(k - 1)]);
        prev = std::move(cur);
    }
    // Last input only needs the overflow clause.
    b.addClause(~lits[static_cast<std::size_t>(n - 1)],
                ~prev[static_cast<std::size_t>(k - 1)]);
}

} // namespace

Totalizer::Totalizer(CnfBuilder& builder, std::span<const sat::Lit> inputs) {
    // Build the counter tree bottom-up; each node's outputs are a sorted
    // unary representation of how many leaves below it are true.
    std::vector<std::vector<sat::Lit>> layer;
    layer.reserve(inputs.size());
    for (const sat::Lit in : inputs) layer.push_back({in});

    while (layer.size() > 1) {
        std::vector<std::vector<sat::Lit>> next;
        for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
            const auto& a = layer[i];
            const auto& bNode = layer[i + 1];
            std::vector<sat::Lit> out(a.size() + bNode.size());
            for (auto& l : out) l = builder.newLit();
            // Merge clauses: (a_i ∧ b_j) → out_{i+j+1}, with virtual
            // sentinels for i = 0 / j = 0.
            for (std::size_t ai = 0; ai <= a.size(); ++ai) {
                for (std::size_t bi = 0; bi <= bNode.size(); ++bi) {
                    const std::size_t sum = ai + bi;
                    if (sum == 0 || sum > out.size()) continue;
                    std::vector<sat::Lit> clause;
                    if (ai > 0) clause.push_back(~a[ai - 1]);
                    if (bi > 0) clause.push_back(~bNode[bi - 1]);
                    if (clause.empty()) continue;
                    clause.push_back(out[sum - 1]);
                    builder.addClause(std::move(clause));
                }
            }
            next.push_back(std::move(out));
        }
        if (layer.size() % 2 == 1) next.push_back(std::move(layer.back()));
        layer = std::move(next);
    }
    if (!layer.empty()) outputs_ = std::move(layer[0]);
    // Ladder: output(i+1) → output(i), so negating one output caps the sum.
    for (std::size_t i = 0; i + 1 < outputs_.size(); ++i)
        builder.addClause(~outputs_[i + 1], outputs_[i]);
}

sat::Lit Totalizer::output(std::size_t i) const {
    expects(i < outputs_.size(), "Totalizer::output: index out of range");
    return outputs_[i];
}

sat::Lit Totalizer::atMostLit(CnfBuilder& builder, int k) const {
    expects(k >= 0, "Totalizer::atMostLit: negative bound");
    if (static_cast<std::size_t>(k) >= outputs_.size()) return builder.trueLit();
    return ~outputs_[static_cast<std::size_t>(k)];
}

void Totalizer::assertAtMost(CnfBuilder& builder, int k) const {
    const sat::Lit l = atMostLit(builder, k);
    builder.assertLit(l);
}

void addAtMost(CnfBuilder& builder, std::span<const sat::Lit> lits, int k,
               CardinalityEncoding encoding) {
    expects(k >= 0, "addAtMost: negative bound");
    if (static_cast<std::size_t>(k) >= lits.size()) return;
    if (encoding == CardinalityEncoding::SequentialCounter) {
        sequentialAtMost(builder, lits, k);
    } else {
        Totalizer t(builder, lits);
        t.assertAtMost(builder, k);
    }
}

void addAtLeast(CnfBuilder& builder, std::span<const sat::Lit> lits, int k,
                CardinalityEncoding encoding) {
    expects(k >= 0, "addAtLeast: negative bound");
    if (k == 0) return;
    expects(static_cast<std::size_t>(k) <= lits.size(),
            "addAtLeast: bound exceeds literal count (unsatisfiable)");
    if (k == 1) {
        builder.addClause(std::vector<sat::Lit>(lits.begin(), lits.end()));
        return;
    }
    // Σ lits ≥ k  ⇔  Σ ¬lits ≤ n − k.
    std::vector<sat::Lit> negated;
    negated.reserve(lits.size());
    for (const sat::Lit l : lits) negated.push_back(~l);
    addAtMost(builder, negated, static_cast<int>(lits.size()) - k, encoding);
}

void addExactly(CnfBuilder& builder, std::span<const sat::Lit> lits, int k,
                CardinalityEncoding encoding) {
    addAtMost(builder, lits, k, encoding);
    addAtLeast(builder, lits, k, encoding);
}

void addAtMostOnePairwise(CnfBuilder& builder, std::span<const sat::Lit> lits) {
    for (std::size_t i = 0; i < lits.size(); ++i)
        for (std::size_t j = i + 1; j < lits.size(); ++j)
            builder.addClause(~lits[i], ~lits[j]);
}

} // namespace lar::encode
