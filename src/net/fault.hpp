// Socket-level fault injection sites for the net layer.
//
// Every network failure mode the serving tier must survive — refused dials,
// connection resets mid-read or mid-write, short reads, partial writes,
// stalled peers — is reproducible in-process by arming these sites on
// util::FaultInjector::global(). Unlike the service-layer sites (which throw
// through the same catch paths organic errors take), socket sites cannot
// unwind out of the epoll event loop, so they use the non-throwing
// FaultInjector::fires() and the call site emulates the failure itself:
// errno = ECONNRESET and a closed connection for kSiteRead/kSiteWrite, a
// 1-byte transfer for the short/partial variants, an immediately-closed
// socket for kSiteAccept, ECONNREFUSED for kSiteConnect.
//
// Any site can additionally be armed with armDelayMs to inject latency
// (slow network emulation) without failing the operation.
//
// The checks are zero-cost while nothing is armed: one relaxed atomic load,
// no string construction, no map lookup.
#pragma once

#include <string_view>

#include "util/fault_injector.hpp"

namespace lar::net {

/// Server: a freshly accepted connection is closed before registration
/// (emulates accept storms, peers vanishing inside the TCP handshake).
inline constexpr std::string_view kSiteAccept = "net.accept";
/// Server: recv on an established connection fails as if the peer reset.
inline constexpr std::string_view kSiteRead = "net.read";
/// Server: recv is truncated to 1 byte (short read — exercises the
/// incremental parser and any caller that assumes full reads).
inline constexpr std::string_view kSiteReadShort = "net.read.short";
/// Server: send on an established connection fails as if the peer reset.
inline constexpr std::string_view kSiteWrite = "net.write";
/// Server: send is truncated to 1 byte (partial write — exercises write
/// resumption through EPOLLOUT).
inline constexpr std::string_view kSiteWritePartial = "net.write.partial";
/// Client: the dial fails as if the target refused the connection.
inline constexpr std::string_view kSiteConnect = "net.connect";

/// True when `site` is armed and fires on this hit. Counts the hit and
/// applies any armed delay either way; never throws.
[[nodiscard]] inline bool faultFires(std::string_view site) {
    return util::FaultInjector::global().fires(site);
}

} // namespace lar::net
