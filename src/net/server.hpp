// An epoll-driven, multi-threaded HTTP/1.1 server.
//
// larserved's network engine, built directly on Linux epoll — no external
// dependencies. The threading model separates I/O from work:
//
//  * `ioThreads` event loops, each with its own epoll instance. The listen
//    socket is registered in every loop with EPOLLEXCLUSIVE, so the kernel
//    wakes exactly one loop per new connection and each loop owns the
//    connections it accepted for their whole life — connection state is
//    single-threaded by construction, no locks on the I/O hot path.
//  * a handler pool (util::ThreadPool) runs the registered route handlers,
//    so a slow handler (a reasoning query taking seconds) never stalls the
//    event loops. Results travel back to the owning loop over a tiny
//    mutex+eventfd completion queue.
//
// Backpressure is explicit and bounded everywhere: at most `maxInflight`
// requests may be inside handlers (beyond that the loop answers 503 +
// Retry-After without touching the pool), at most `maxConnections` sockets
// are accepted, and the parser's HttpLimits bound per-request buffering.
// The server never queues unboundedly on behalf of a client.
//
// Graceful drain (SIGTERM path): beginDrain() stops accepting and marks the
// server draining (readyz flips); in-flight requests finish and responses
// carry `Connection: close`; idle keep-alive connections are closed after a
// short grace. drainAndStop() waits for connections to reach zero, invoking
// the grace hook (query cancellation) if they do not, then stops.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "net/http.hpp"

namespace lar::net {

struct ServerOptions {
    std::string bindAddress = "127.0.0.1";
    /// TCP port; 0 asks the kernel for an ephemeral one (see port()).
    std::uint16_t port = 0;
    /// Event-loop threads (each one epoll instance); 0 = 2.
    unsigned ioThreads = 0;
    /// Handler-pool threads; 0 = hardware concurrency.
    unsigned handlerThreads = 0;
    /// Requests allowed inside handlers at once; beyond this the server
    /// sheds with 503 + Retry-After instead of queueing. 0 = 4 × the
    /// handler-pool width.
    std::size_t maxInflight = 0;
    /// Close a connection idle this long while awaiting (more of) a request.
    int readIdleTimeoutMs = 60'000;
    /// Close a connection that has not accepted response bytes this long.
    int writeIdleTimeoutMs = 30'000;
    /// Kill a request that has been ARRIVING longer than this, answering 408
    /// (total receive time, first byte to complete parse). Idle timeouts
    /// alone are defeated by a slowloris client dripping one byte per
    /// second — every drip refreshes the idle clock; this one it cannot
    /// refresh. 0 disables.
    int requestReadTimeoutMs = 30'000;
    /// Kill a response that has been FLUSHING longer than this (total write
    /// time). The write-idle timeout alone is defeated by a reader draining
    /// one byte per second. 0 disables.
    int responseWriteTimeoutMs = 30'000;
    /// Close any connection older than this regardless of activity (bounds
    /// resource pins from well-behaved-but-eternal peers). 0 disables.
    int maxConnLifetimeMs = 0;
    /// While draining: grace before idle keep-alive connections are closed.
    int drainIdleCloseMs = 100;
    /// Accepted-socket cap; past it new connections are closed immediately.
    std::size_t maxConnections = 4096;
    HttpLimits limits;
    /// Emit one structured JSON log line per request (util::logLineJson,
    /// Info level — invisible under the default Warn threshold).
    bool accessLog = true;
};

class HttpServer {
public:
    /// Runs on the handler pool. Anything thrown becomes a 500 with the
    /// exception's what() in the error body.
    using Handler = std::function<HttpResponse(const HttpRequest&)>;

    /// Values captured from `{name}` segments of a pattern route, keyed by
    /// the name inside the braces.
    using RouteParams = std::map<std::string, std::string>;
    using ParamHandler =
        std::function<HttpResponse(const HttpRequest&, const RouteParams&)>;

    explicit HttpServer(const ServerOptions& options = {});
    ~HttpServer(); ///< stop()s if still running

    HttpServer(const HttpServer&) = delete;
    HttpServer& operator=(const HttpServer&) = delete;

    /// Registers a handler for exact (method, path) — no patterns. An
    /// unknown path answers 404; a known path with the wrong method answers
    /// 405 with an Allow header. Call before start().
    void route(std::string method, std::string path, Handler handler);

    /// Registers a handler for (method, pattern) where any path segment may
    /// be `{name}` — it matches exactly one non-empty segment, captured into
    /// the RouteParams under `name` (e.g. "/v1/session/{id}/ask"). Exact
    /// routes win over patterns; among patterns the first registered match
    /// wins. A pattern match with the wrong method answers 405 just like an
    /// exact route. Call before start().
    void route(std::string method, std::string pattern, ParamHandler handler);

    /// Hooks into the application for drain: `onDrainBegin` runs inside
    /// beginDrain() (larserved: Service::beginDrain, so queued queries
    /// shed); `onGraceExpired` runs when drainAndStop()'s first grace
    /// period ends with connections still open (larserved:
    /// Service::cancelActive, so stuck queries return Cancelled).
    void setDrainHooks(std::function<void()> onDrainBegin,
                       std::function<void()> onGraceExpired);

    /// Binds, listens, and spawns the event loops + handler pool.
    /// Throws lar::Error when the socket cannot be bound.
    void start();

    /// The bound port (useful with options.port == 0). Valid after start().
    [[nodiscard]] std::uint16_t port() const;

    /// Stops accepting, flips draining() (readyz), runs the drain-begin
    /// hook, and lets in-flight work finish. Idempotent, one-way.
    void beginDrain();
    [[nodiscard]] bool draining() const;

    /// beginDrain(), then wait up to `graceMs` for every connection to
    /// close; if some remain, run the grace-expired hook and wait another
    /// `graceMs`; finally stop(). The SIGTERM sequence.
    void drainAndStop(int graceMs);

    /// Immediate shutdown: joins the handler pool and event loops, closes
    /// every socket. In-flight requests are abandoned; prefer drainAndStop.
    void stop();

    [[nodiscard]] std::size_t activeConnections() const;

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace lar::net
