// A minimal blocking HTTP/1.1 client for larctl --url, tests, and benches.
//
// One HttpClient owns one keep-alive connection to one host:port and issues
// requests sequentially. Responses are parsed with the same strictness tier
// as the server (Content-Length or chunked, bounded header block). Failures
// — refused connection, timeout, malformed response — throw lar::Error; a
// dropped keep-alive connection is transparently re-dialed once per request.
// Not thread-safe; give each thread its own client.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "net/http.hpp"

namespace lar::net {

/// Parsed form of "http://host:port" (path suffix allowed and ignored).
/// Throws lar::ParseError on anything else (https, missing port, ...).
struct HttpUrl {
    std::string host;
    std::uint16_t port = 0;
};
[[nodiscard]] HttpUrl parseHttpUrl(std::string_view url);

struct ClientResponse {
    int status = 0;
    std::vector<HttpHeader> headers;
    std::string body;

    [[nodiscard]] const std::string* header(std::string_view name) const;
};

class HttpClient {
public:
    /// Does not connect yet; the first request dials.
    HttpClient(std::string host, std::uint16_t port, int timeoutMs = 30'000);
    ~HttpClient();

    HttpClient(const HttpClient&) = delete;
    HttpClient& operator=(const HttpClient&) = delete;

    /// Issues one request and blocks for the full response (throws
    /// lar::Error on connect/send/receive failure or timeout).
    ClientResponse get(const std::string& path);
    ClientResponse post(const std::string& path, std::string body,
                        const std::string& contentType = "application/json");
    ClientResponse del(const std::string& path);

    /// Drops the kept-alive connection (next request re-dials).
    void disconnect();

    /// Adds a header to every subsequent request (e.g. X-Lar-Trace-Id so a
    /// client-chosen trace identity follows the request through the server).
    /// Setting a name again replaces the previous value; "" removes it.
    void setHeader(std::string_view name, std::string_view value);

private:
    ClientResponse roundTrip(const std::string& method, const std::string& path,
                             const std::string& body,
                             const std::string& contentType);
    bool sendAll(std::string_view data);
    void connect();

    std::string host_;
    std::uint16_t port_;
    int timeoutMs_;
    int fd_ = -1;
    std::string leftover_; ///< bytes past the previous response
    std::vector<HttpHeader> defaultHeaders_; ///< sent with every request
};

} // namespace lar::net
