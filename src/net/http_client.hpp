// A deadline-budgeted, retrying HTTP/1.1 client for larctl --url, tests,
// benches — and the future front-line router.
//
// One HttpClient owns one keep-alive connection to one host:port and issues
// requests sequentially. Responses are parsed with the same strictness tier
// as the server (Content-Length or chunked, bounded header block).
//
// Every request runs under one end-to-end deadline (`timeoutMs` at
// construction): connect, send, receive, transparent re-dials, retry
// backoff, and hedges all share that single budget — a request can never
// block longer than its deadline plus scheduling noise, no matter how many
// attempts it takes. Failures — refused connection, reset, deadline
// exceeded, malformed response — throw lar::Error (TimeoutError for the
// deadline). A stale keep-alive connection is transparently re-dialed
// within the same budget.
//
// Retries are explicit policy (RetryOptions, default off — one attempt):
// bounded attempts with exponential backoff and full jitter; 429/503
// responses are retried honoring Retry-After when the budget allows;
// transport errors are retried only for idempotent requests or requests
// whose bytes never reached the wire, so a non-idempotent request can never
// be executed twice by this client. Optionally, idempotent GETs are hedged:
// after `hedgeDelayMs` without a response a second connection races the
// first, first complete response wins and the loser is cancelled.
//
// Not thread-safe; give each thread its own client.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "net/http.hpp"
#include "util/error.hpp"

namespace lar::net {

/// Thrown when a request's end-to-end deadline expires before a complete
/// response arrived (connect + send + receive + retries share one budget).
class TimeoutError : public Error {
public:
    explicit TimeoutError(const std::string& what) : Error(what) {}
};

/// Parsed form of "http://host:port" (path suffix allowed and ignored).
/// Throws lar::ParseError on anything else (https, missing port, ...).
struct HttpUrl {
    std::string host;
    std::uint16_t port = 0;
};
[[nodiscard]] HttpUrl parseHttpUrl(std::string_view url);

struct ClientResponse {
    int status = 0;
    std::vector<HttpHeader> headers;
    std::string body;

    [[nodiscard]] const std::string* header(std::string_view name) const;
};

/// Bounded retry/hedging policy, applied per request. Mirrors the semantics
/// of reason::RetryPolicy one layer down: a fixed attempt budget, retries
/// only when they cannot change the answer (idempotent or never-sent), and
/// deterministic randomness via an explicit seed.
struct RetryOptions {
    /// Total attempts per request (1 = no retry). Further attempts run only
    /// while the end-to-end deadline has budget left.
    int maxAttempts = 1;
    /// Exponential backoff with full jitter between attempts: sleep a
    /// uniform draw from [0, min(maxBackoffMs, baseBackoffMs << attempt)].
    int baseBackoffMs = 50;
    int maxBackoffMs = 2'000;
    /// Retry 429/503 responses (the server's shed path). The wait honors
    /// the response's Retry-After header when present (else backoff); when
    /// the wait would overrun the deadline the shed response is returned
    /// as-is. Safe for any method — a shed response means not executed.
    bool retryOnShed = true;
    /// When > 0, hedge idempotent GETs: if no response arrived within this
    /// many ms, race a second connection with the same request; the first
    /// complete response wins and the loser is cancelled. Non-idempotent
    /// requests never hedge. Pick a p99-ish delay.
    int hedgeDelayMs = 0;
    /// Seed for the jitter stream (deterministic backoff in tests).
    std::uint64_t seed = 0;
};

/// Per-client tallies of the resilience machinery (also exported process-
/// wide as lar_net_client_* metrics).
struct ClientStats {
    std::uint64_t retries = 0;    ///< attempts after the first
    std::uint64_t redials = 0;    ///< transparent stale-connection re-dials
    std::uint64_t shedWaits = 0;  ///< 429/503 waits (Retry-After or backoff)
    std::uint64_t hedges = 0;     ///< hedge attempts launched
    std::uint64_t hedgeWins = 0;  ///< responses won by the hedge attempt
};

class HttpClient {
public:
    /// Does not connect yet; the first request dials. `timeoutMs` is the
    /// END-TO-END deadline of each request (not per syscall): connect +
    /// send + receive + retries + hedges together.
    HttpClient(std::string host, std::uint16_t port, int timeoutMs = 30'000);
    ~HttpClient();

    HttpClient(const HttpClient&) = delete;
    HttpClient& operator=(const HttpClient&) = delete;

    /// Issues one request and blocks for the full response (throws
    /// lar::Error on connect/send/receive failure, TimeoutError once the
    /// deadline expires).
    ClientResponse get(const std::string& path);
    ClientResponse post(const std::string& path, std::string body,
                        const std::string& contentType = "application/json");
    ClientResponse del(const std::string& path);

    /// Drops the kept-alive connection (next request re-dials).
    void disconnect();

    /// Adds a header to every subsequent request (e.g. X-Lar-Trace-Id so a
    /// client-chosen trace identity follows the request through the server).
    /// Setting a name again replaces the previous value; "" removes it.
    void setHeader(std::string_view name, std::string_view value);

    /// Replaces the retry/hedging policy for subsequent requests.
    void setRetryOptions(const RetryOptions& options);
    [[nodiscard]] const RetryOptions& retryOptions() const { return retry_; }

    /// Running tallies since construction.
    [[nodiscard]] const ClientStats& stats() const { return stats_; }

private:
    /// One socket plus the bytes read past its previous response.
    struct Conn {
        int fd = -1;
        std::string leftover;
    };

    ClientResponse roundTrip(const std::string& method, const std::string& path,
                             const std::string& body,
                             const std::string& contentType);
    /// One attempt on the kept-alive connection: dial if needed, send,
    /// receive — all bounded by `deadline`. Transparently re-dials once on
    /// a stale connection (send failure, or response EOF before any bytes
    /// on a reused connection when `idempotent`). Sets `sentAny` the moment
    /// request bytes hit a socket that was not re-dialed away.
    ClientResponse attemptOnce(const std::string& request,
                               std::chrono::steady_clock::time_point deadline,
                               bool idempotent, bool& sentAny);
    /// The hedged variant: primary attempt races a second fresh-socket
    /// attempt launched after retry_.hedgeDelayMs; first complete response
    /// wins, the loser is shut down.
    ClientResponse hedgedAttempt(const std::string& request,
                                 std::chrono::steady_clock::time_point deadline);
    /// Dials a fresh socket into `conn` (per-syscall timeouts clamped to the
    /// remaining budget). Consults the net.connect fault site.
    void dial(Conn& conn, std::chrono::steady_clock::time_point deadline);
    /// Sends all of `data`; false on transport failure (errno set), throws
    /// TimeoutError once the deadline expires.
    bool sendOn(Conn& conn, std::string_view data,
                std::chrono::steady_clock::time_point deadline);
    /// Receives and parses one response; `received` counts response bytes
    /// seen (0 distinguishes the stale keep-alive EOF race from a
    /// mid-response failure).
    ClientResponse receiveOn(Conn& conn,
                             std::chrono::steady_clock::time_point deadline,
                             std::size_t& received);
    int backoffMs(int attempt);

    std::string host_;
    std::uint16_t port_;
    int timeoutMs_;
    Conn conn_;
    std::vector<HttpHeader> defaultHeaders_; ///< sent with every request
    RetryOptions retry_;
    ClientStats stats_;
    std::uint64_t jitterState_;
};

} // namespace lar::net
