// HTTP/1.1 message types and an incremental request parser.
//
// The parser is the security boundary of larserved: every byte a client
// sends passes through it before any reasoning code runs. It is therefore
// (a) incremental — feed it whatever the socket produced, it consumes what
// it can and remembers where it stopped, so a slow or adversarial client
// can never force buffering beyond the configured limits; (b) allocation-
// light — it appends into reused buffers, no per-token strings; and (c)
// strict about limits — request-line length, header count and total size,
// and body size (Content-Length and chunked alike) each map to a precise
// 4xx status instead of unbounded growth.
//
// Supported: HTTP/1.0 and 1.1, Content-Length and chunked request bodies,
// keep-alive negotiation, Expect: 100-continue detection. Deliberately not
// supported: other transfer codings (501), HTTP/2 (505), multiline header
// folding (400, per RFC 7230 §3.2.4).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace lar::net {

/// Hard limits enforced while parsing. Exceeding one fails the request with
/// the listed status; the connection is then closed (the parse position is
/// unrecoverable).
struct HttpLimits {
    std::size_t maxRequestLineBytes = 8 * 1024; ///< exceeded → 431
    std::size_t maxHeaderBytes = 64 * 1024;     ///< all header lines → 431
    std::size_t maxHeaders = 128;               ///< exceeded → 431
    std::size_t maxBodyBytes = 16 * 1024 * 1024; ///< exceeded → 413
};

struct HttpHeader {
    std::string name;  ///< as received (use caseEquals to compare)
    std::string value; ///< leading/trailing whitespace stripped
};

/// ASCII case-insensitive comparison (header names, token values).
[[nodiscard]] bool caseEquals(std::string_view a, std::string_view b);

/// One parsed request.
struct HttpRequest {
    std::string method;  ///< e.g. "GET" (token chars only, case preserved)
    std::string target;  ///< origin-form as sent, e.g. "/v1/query?x=1"
    int versionMinor = 1; ///< HTTP/1.<versionMinor>
    std::vector<HttpHeader> headers;
    std::string body;
    bool keepAlive = true;       ///< negotiated (version + Connection header)
    bool expectContinue = false; ///< client sent Expect: 100-continue
    /// End-to-end trace identity: filled by HttpServer (the client's valid
    /// X-Lar-Trace-Id, or a freshly minted one) before the handler runs.
    /// Not a parser field — raw HttpParser output leaves it empty.
    std::string traceId;

    /// First header named `name` (case-insensitive), or nullptr.
    [[nodiscard]] const std::string* header(std::string_view name) const;
    /// `target` up to but excluding the query string.
    [[nodiscard]] std::string_view path() const;
    /// Value of query parameter `name` ("" when absent or valueless). No
    /// percent-decoding — the debug endpoints take plain tokens and numbers.
    [[nodiscard]] std::string queryParam(std::string_view name) const;
};

/// Incremental request parser; see file comment. Reusable across the
/// requests of one keep-alive connection via reset().
class HttpParser {
public:
    enum class Status {
        NeedMore, ///< consumed everything offered; feed more bytes
        Complete, ///< request() holds a full request; unconsumed bytes (a
                  ///< pipelined next request) are reported via `used`
        Failed,   ///< malformed; see errorStatus()/errorReason()
    };

    explicit HttpParser(const HttpLimits& limits = {});

    /// Consumes up to data.size() bytes; `used` reports how many were taken
    /// (always data.size() for NeedMore). Calling after Complete/Failed
    /// without reset() is a LogicError.
    Status consume(std::string_view data, std::size_t& used);

    /// The request under construction (fully valid once Complete).
    [[nodiscard]] const HttpRequest& request() const { return request_; }
    [[nodiscard]] HttpRequest& request() { return request_; }

    /// True once any byte of the current request has been consumed (used by
    /// the server to tell idle keep-alive connections from half-received
    /// requests when draining).
    [[nodiscard]] bool begun() const { return begun_; }

    /// True from the end of the header block onward (the point where the
    /// server answers Expect: 100-continue).
    [[nodiscard]] bool headersComplete() const {
        return state_ > State::Headers;
    }

    /// The 4xx/5xx status a Failed parse maps to: 400 (syntax), 413 (body
    /// too large), 431 (request line / headers too large), 501 (unsupported
    /// transfer coding), 505 (unsupported HTTP version).
    [[nodiscard]] int errorStatus() const { return errorStatus_; }
    [[nodiscard]] const std::string& errorReason() const { return errorReason_; }

    /// Ready for the next request (limits kept, buffers reused).
    void reset();

private:
    enum class State {
        RequestLine,
        Headers,
        FixedBody,
        ChunkSize,
        ChunkData,
        ChunkDataEnd,
        Trailers,
        Complete,
        Failed,
    };

    /// Accumulates one CRLF (or bare LF) terminated line into line_.
    /// Returns true when the terminator arrived; strips it.
    bool takeLine(std::string_view data, std::size_t& used, std::size_t cap,
                  int overflowStatus, const char* overflowReason);
    bool parseRequestLine();
    bool parseHeaderLine();
    /// Validates the header block, fixes body framing; may move straight to
    /// Complete for bodiless requests.
    bool finishHeaders();
    void fail(int status, std::string reason);

    HttpLimits limits_;
    HttpRequest request_;
    State state_ = State::RequestLine;
    std::string line_;          ///< current partial line
    bool sawCr_ = false;        ///< line_ ended with a CR awaiting its LF
    bool begun_ = false;
    std::size_t headerBytes_ = 0;
    std::size_t bodyRemaining_ = 0; ///< FixedBody/ChunkData bytes outstanding
    int errorStatus_ = 0;
    std::string errorReason_;
};

/// One response. Content-Length, Connection, and Date are emitted by
/// serializeResponse — handlers only fill status/type/body plus any extra
/// headers.
struct HttpResponse {
    int status = 200;
    std::string contentType = "application/json";
    std::string body;
    std::vector<HttpHeader> extraHeaders;

    [[nodiscard]] static HttpResponse text(int status, std::string body);
    /// `{"error":{"kind":kind,"message":message}}` — the same error object
    /// shape larctl batch prints on malformed input.
    [[nodiscard]] static HttpResponse errorJson(int status,
                                               std::string_view kind,
                                               std::string_view message);
};

/// Standard reason phrase ("OK", "Too Many Requests", ...).
[[nodiscard]] const char* reasonPhrase(int status);

/// Appends the full wire form of `response` (status line, headers, body) to
/// `out`. `keepAlive` chooses the Connection header.
void serializeResponse(const HttpResponse& response, bool keepAlive,
                       std::string& out);

} // namespace lar::net
