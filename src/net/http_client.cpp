#include "net/http_client.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "util/error.hpp"

namespace lar::net {
namespace {

constexpr std::size_t kMaxResponseHeaderBytes = 64 * 1024;
constexpr std::size_t kMaxResponseBodyBytes = 256 * 1024 * 1024;

[[noreturn]] void throwErrno(const std::string& what) {
    throw Error(what + ": " + std::strerror(errno));
}

std::string_view trimView(std::string_view s) {
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
        s.remove_prefix(1);
    }
    while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
        s.remove_suffix(1);
    }
    return s;
}

} // namespace

HttpUrl parseHttpUrl(std::string_view url) {
    constexpr std::string_view scheme = "http://";
    if (url.substr(0, scheme.size()) != scheme) {
        throw ParseError("URL must start with http:// : " + std::string(url));
    }
    std::string_view rest = url.substr(scheme.size());
    const std::size_t slash = rest.find('/');
    if (slash != std::string_view::npos) rest = rest.substr(0, slash);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string_view::npos || colon == 0 ||
        colon + 1 == rest.size()) {
        throw ParseError("URL must be http://host:port : " + std::string(url));
    }
    HttpUrl out;
    out.host = std::string(rest.substr(0, colon));
    const std::string portText(rest.substr(colon + 1));
    char* end = nullptr;
    const long port = std::strtol(portText.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || port <= 0 || port > 65535) {
        throw ParseError("bad port in URL: " + std::string(url));
    }
    out.port = static_cast<std::uint16_t>(port);
    return out;
}

const std::string* ClientResponse::header(std::string_view name) const {
    for (const HttpHeader& h : headers) {
        if (caseEquals(h.name, name)) return &h.value;
    }
    return nullptr;
}

HttpClient::HttpClient(std::string host, std::uint16_t port, int timeoutMs)
    : host_(std::move(host)), port_(port), timeoutMs_(timeoutMs) {}

HttpClient::~HttpClient() { disconnect(); }

void HttpClient::disconnect() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    leftover_.clear();
}

void HttpClient::setHeader(std::string_view name, std::string_view value) {
    for (auto it = defaultHeaders_.begin(); it != defaultHeaders_.end(); ++it) {
        if (caseEquals(it->name, name)) {
            if (value.empty())
                defaultHeaders_.erase(it);
            else
                it->value = std::string(value);
            return;
        }
    }
    if (!value.empty())
        defaultHeaders_.push_back({std::string(name), std::string(value)});
}

void HttpClient::connect() {
    disconnect();
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* result = nullptr;
    const std::string portText = std::to_string(port_);
    const int rc = ::getaddrinfo(host_.c_str(), portText.c_str(), &hints,
                                 &result);
    if (rc != 0) {
        throw Error("resolve " + host_ + ": " + ::gai_strerror(rc));
    }
    int lastErrno = ECONNREFUSED;
    for (addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
        const int fd = ::socket(ai->ai_family, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (fd < 0) {
            lastErrno = errno;
            continue;
        }
        timeval tv{};
        tv.tv_sec = timeoutMs_ / 1000;
        tv.tv_usec = (timeoutMs_ % 1000) * 1000;
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
        ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
            fd_ = fd;
            break;
        }
        lastErrno = errno;
        ::close(fd);
    }
    ::freeaddrinfo(result);
    if (fd_ < 0) {
        errno = lastErrno;
        throwErrno("connect " + host_ + ":" + portText);
    }
}

bool HttpClient::sendAll(std::string_view data) {
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::send(fd_, data.data() + off, data.size() - off,
                                 MSG_NOSIGNAL);
        if (n > 0) {
            off += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        return false;
    }
    return true;
}

ClientResponse HttpClient::get(const std::string& path) {
    return roundTrip("GET", path, "", "");
}

ClientResponse HttpClient::post(const std::string& path, std::string body,
                                const std::string& contentType) {
    return roundTrip("POST", path, body, contentType);
}

ClientResponse HttpClient::del(const std::string& path) {
    return roundTrip("DELETE", path, "", "");
}

ClientResponse HttpClient::roundTrip(const std::string& method,
                                     const std::string& path,
                                     const std::string& body,
                                     const std::string& contentType) {
    std::string request = method + " " + path + " HTTP/1.1\r\nHost: " + host_ +
                          ":" + std::to_string(port_) + "\r\n";
    for (const HttpHeader& h : defaultHeaders_)
        request += h.name + ": " + h.value + "\r\n";
    if (!body.empty() || method == "POST") {
        if (!contentType.empty()) {
            request += "Content-Type: " + contentType + "\r\n";
        }
        request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    }
    request += "\r\n";
    request += body;

    // A kept-alive connection may have been closed by the server (idle
    // timeout, drain); retry the whole exchange once on a fresh dial, but
    // only if we could not even send — once bytes went out, a second send
    // could execute the request twice.
    bool retried = false;
    while (true) {
        if (fd_ < 0) connect();
        if (!sendAll(request)) {
            if (retried) throwErrno("send " + host_);
            retried = true;
            disconnect();
            continue;
        }
        break;
    }

    ClientResponse response;
    std::string buf = std::move(leftover_);
    leftover_.clear();

    // Headers: accumulate until the blank line.
    std::size_t headerEnd = std::string::npos;
    while (true) {
        headerEnd = buf.find("\r\n\r\n");
        if (headerEnd != std::string::npos) break;
        if (buf.size() > kMaxResponseHeaderBytes) {
            disconnect();
            throw Error("response header block too large");
        }
        char chunk[8192];
        const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
        if (n > 0) {
            buf.append(chunk, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        disconnect();
        if (n == 0) throw Error("connection closed mid-response");
        throwErrno("recv " + host_);
    }

    const std::string_view head(buf.data(), headerEnd);
    std::size_t lineEnd = head.find("\r\n");
    if (lineEnd == std::string_view::npos) lineEnd = head.size();
    const std::string_view statusLine = head.substr(0, lineEnd);
    if (statusLine.size() < 12 || statusLine.substr(0, 5) != "HTTP/") {
        disconnect();
        throw Error("malformed status line: " + std::string(statusLine));
    }
    response.status = (statusLine[9] - '0') * 100 + (statusLine[10] - '0') * 10 +
                      (statusLine[11] - '0');
    if (response.status < 100 || response.status > 599) {
        disconnect();
        throw Error("malformed status code: " + std::string(statusLine));
    }

    std::size_t pos = lineEnd == head.size() ? head.size() : lineEnd + 2;
    while (pos < head.size()) {
        std::size_t next = head.find("\r\n", pos);
        if (next == std::string_view::npos) next = head.size();
        const std::string_view line = head.substr(pos, next - pos);
        pos = next + 2;
        const std::size_t colon = line.find(':');
        if (colon == std::string_view::npos) continue;
        response.headers.push_back(
            {std::string(line.substr(0, colon)),
             std::string(trimView(line.substr(colon + 1)))});
    }
    buf.erase(0, headerEnd + 4);

    const auto recvMore = [&](const char* what) {
        char chunk[16384];
        while (true) {
            const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
            if (n > 0) {
                buf.append(chunk, static_cast<std::size_t>(n));
                return;
            }
            if (n < 0 && errno == EINTR) continue;
            disconnect();
            if (n == 0) throw Error(std::string(what) + ": connection closed");
            throwErrno(what);
        }
    };

    bool closeAfter = false;
    if (const std::string* connection = response.header("Connection")) {
        closeAfter = caseEquals(*connection, "close");
    }

    const std::string* te = response.header("Transfer-Encoding");
    if (te != nullptr && caseEquals(*te, "chunked")) {
        while (true) {
            const std::size_t nl = buf.find("\r\n");
            if (nl == std::string::npos) {
                recvMore("recv chunk size");
                continue;
            }
            std::string sizeText = buf.substr(0, nl);
            const std::size_t semi = sizeText.find(';');
            if (semi != std::string::npos) sizeText.resize(semi);
            char* end = nullptr;
            const unsigned long long size =
                std::strtoull(sizeText.c_str(), &end, 16);
            if (end == sizeText.c_str()) {
                disconnect();
                throw Error("malformed chunk size: " + sizeText);
            }
            if (size == 0) {
                // Trailer section: lines until a blank one.
                buf.erase(0, nl + 2);
                while (true) {
                    const std::size_t tn = buf.find("\r\n");
                    if (tn == std::string::npos) {
                        recvMore("recv trailers");
                        continue;
                    }
                    const bool blank = tn == 0;
                    buf.erase(0, tn + 2);
                    if (blank) break;
                }
                break;
            }
            while (buf.size() < nl + 2 + size + 2) recvMore("recv chunk");
            response.body.append(buf, nl + 2, size);
            if (response.body.size() > kMaxResponseBodyBytes) {
                disconnect();
                throw Error("response body too large");
            }
            buf.erase(0, nl + 2 + size + 2);
        }
    } else if (const std::string* cl = response.header("Content-Length")) {
        char* end = nullptr;
        const unsigned long long length = std::strtoull(cl->c_str(), &end, 10);
        if (end == cl->c_str() || *end != '\0' ||
            length > kMaxResponseBodyBytes) {
            disconnect();
            throw Error("malformed Content-Length: " + *cl);
        }
        while (buf.size() < length) recvMore("recv body");
        response.body = buf.substr(0, length);
        buf.erase(0, length);
    } else if (closeAfter) {
        // Read-to-EOF body.
        while (true) {
            char chunk[16384];
            const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
            if (n > 0) {
                buf.append(chunk, static_cast<std::size_t>(n));
                if (buf.size() > kMaxResponseBodyBytes) {
                    disconnect();
                    throw Error("response body too large");
                }
                continue;
            }
            if (n < 0 && errno == EINTR) continue;
            if (n == 0) break;
            disconnect();
            throwErrno("recv body");
        }
        response.body = std::move(buf);
        buf.clear();
    }
    // else: no framing headers and keep-alive — bodiless response.

    if (closeAfter) {
        disconnect();
    } else {
        leftover_ = std::move(buf);
    }
    return response;
}

} // namespace lar::net
