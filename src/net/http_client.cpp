#include "net/http_client.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>

#include "net/fault.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace lar::net {
namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kMaxResponseHeaderBytes = 64 * 1024;
constexpr std::size_t kMaxResponseBodyBytes = 256 * 1024 * 1024;

/// Process-wide tallies of the client resilience machinery, alongside the
/// per-instance ClientStats (a fleet of clients shares these).
struct ClientMetrics {
    obs::Counter& retries;
    obs::Counter& redials;
    obs::Counter& shedWaits;
    obs::Counter& hedges;
    obs::Counter& hedgeWins;
    obs::Counter& deadlineTimeouts;

    static ClientMetrics& get() {
        static ClientMetrics m{
            obs::Registry::global().counter(
                "lar_net_client_retries_total",
                "HttpClient request attempts after the first"),
            obs::Registry::global().counter(
                "lar_net_client_redials_total",
                "transparent re-dials of stale keep-alive connections"),
            obs::Registry::global().counter(
                "lar_net_client_shed_waits_total",
                "429/503 responses waited out (Retry-After or backoff)"),
            obs::Registry::global().counter(
                "lar_net_client_hedges_total",
                "hedged GET attempts launched"),
            obs::Registry::global().counter(
                "lar_net_client_hedge_wins_total",
                "hedged GETs where the hedge produced the winning response"),
            obs::Registry::global().counter(
                "lar_net_client_deadline_timeouts_total",
                "requests abandoned at their end-to-end deadline"),
        };
        return m;
    }
};

[[noreturn]] void throwErrno(const std::string& what) {
    throw Error(what + ": " + std::strerror(errno));
}

[[noreturn]] void throwTimeout(const std::string& what) {
    ClientMetrics::get().deadlineTimeouts.inc();
    throw TimeoutError(what + ": request deadline exceeded");
}

int remainingMs(Clock::time_point deadline) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          deadline - Clock::now())
                          .count();
    if (left <= 0) return 0;
    return left > 1'000'000'000 ? 1'000'000'000 : static_cast<int>(left);
}

/// Clamps this socket's per-syscall timeouts to the remaining budget, so no
/// single recv/send/connect can outlive the request deadline. Returns false
/// when the budget is already gone.
bool armSocketDeadline(int fd, Clock::time_point deadline) {
    const int left = remainingMs(deadline);
    if (left <= 0) return false;
    timeval tv{};
    tv.tv_sec = left / 1000;
    tv.tv_usec = (left % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
    return true;
}

std::string_view trimView(std::string_view s) {
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
        s.remove_prefix(1);
    }
    while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
        s.remove_suffix(1);
    }
    return s;
}

void closeConn(int& fd, std::string& leftover) {
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
    leftover.clear();
}

/// Retry-After delta-seconds (the only form larserved emits); nullopt for
/// absent or HTTP-date values.
int retryAfterMs(const ClientResponse& response) {
    const std::string* header = response.header("Retry-After");
    if (header == nullptr) return -1;
    char* end = nullptr;
    const long seconds = std::strtol(header->c_str(), &end, 10);
    if (end == header->c_str() || *end != '\0' || seconds < 0) return -1;
    return seconds > 3'600 ? 3'600'000 : static_cast<int>(seconds) * 1000;
}

} // namespace

HttpUrl parseHttpUrl(std::string_view url) {
    constexpr std::string_view scheme = "http://";
    if (url.substr(0, scheme.size()) != scheme) {
        throw ParseError("URL must start with http:// : " + std::string(url));
    }
    std::string_view rest = url.substr(scheme.size());
    const std::size_t slash = rest.find('/');
    if (slash != std::string_view::npos) rest = rest.substr(0, slash);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string_view::npos || colon == 0 ||
        colon + 1 == rest.size()) {
        throw ParseError("URL must be http://host:port : " + std::string(url));
    }
    HttpUrl out;
    out.host = std::string(rest.substr(0, colon));
    const std::string portText(rest.substr(colon + 1));
    char* end = nullptr;
    const long port = std::strtol(portText.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || port <= 0 || port > 65535) {
        throw ParseError("bad port in URL: " + std::string(url));
    }
    out.port = static_cast<std::uint16_t>(port);
    return out;
}

const std::string* ClientResponse::header(std::string_view name) const {
    for (const HttpHeader& h : headers) {
        if (caseEquals(h.name, name)) return &h.value;
    }
    return nullptr;
}

HttpClient::HttpClient(std::string host, std::uint16_t port, int timeoutMs)
    : host_(std::move(host)),
      port_(port),
      timeoutMs_(timeoutMs),
      jitterState_(retry_.seed) {}

HttpClient::~HttpClient() { disconnect(); }

void HttpClient::disconnect() { closeConn(conn_.fd, conn_.leftover); }

void HttpClient::setHeader(std::string_view name, std::string_view value) {
    for (auto it = defaultHeaders_.begin(); it != defaultHeaders_.end(); ++it) {
        if (caseEquals(it->name, name)) {
            if (value.empty())
                defaultHeaders_.erase(it);
            else
                it->value = std::string(value);
            return;
        }
    }
    if (!value.empty())
        defaultHeaders_.push_back({std::string(name), std::string(value)});
}

void HttpClient::setRetryOptions(const RetryOptions& options) {
    expects(options.maxAttempts >= 1,
            "RetryOptions: maxAttempts must be at least 1");
    expects(options.baseBackoffMs >= 0 && options.maxBackoffMs >= 0,
            "RetryOptions: backoff must be non-negative");
    expects(options.hedgeDelayMs >= 0,
            "RetryOptions: hedgeDelayMs must be non-negative");
    retry_ = options;
    jitterState_ = options.seed;
}

void HttpClient::dial(Conn& conn, Clock::time_point deadline) {
    closeConn(conn.fd, conn.leftover);
    if (remainingMs(deadline) <= 0) throwTimeout("connect " + host_);
    if (faultFires(kSiteConnect)) {
        errno = ECONNREFUSED;
        throwErrno("connect " + host_ + " (injected)");
    }
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* result = nullptr;
    const std::string portText = std::to_string(port_);
    const int rc = ::getaddrinfo(host_.c_str(), portText.c_str(), &hints,
                                 &result);
    if (rc != 0) {
        throw Error("resolve " + host_ + ": " + ::gai_strerror(rc));
    }
    int lastErrno = ECONNREFUSED;
    for (addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
        const int fd = ::socket(ai->ai_family, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (fd < 0) {
            lastErrno = errno;
            continue;
        }
        // SO_SNDTIMEO also bounds a blocking connect() on Linux, so the dial
        // itself cannot overrun the request deadline.
        if (!armSocketDeadline(fd, deadline)) {
            ::close(fd);
            ::freeaddrinfo(result);
            throwTimeout("connect " + host_);
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
            conn.fd = fd;
            break;
        }
        lastErrno = errno;
        ::close(fd);
    }
    ::freeaddrinfo(result);
    if (conn.fd < 0) {
        if ((lastErrno == EINPROGRESS || lastErrno == EAGAIN ||
             lastErrno == EWOULDBLOCK) &&
            remainingMs(deadline) <= 0) {
            throwTimeout("connect " + host_);
        }
        errno = lastErrno;
        throwErrno("connect " + host_ + ":" + portText);
    }
}

bool HttpClient::sendOn(Conn& conn, std::string_view data,
                        Clock::time_point deadline) {
    std::size_t off = 0;
    while (off < data.size()) {
        if (!armSocketDeadline(conn.fd, deadline)) {
            closeConn(conn.fd, conn.leftover);
            throwTimeout("send " + host_);
        }
        const ssize_t n = ::send(conn.fd, data.data() + off, data.size() - off,
                                 MSG_NOSIGNAL);
        if (n > 0) {
            off += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            closeConn(conn.fd, conn.leftover);
            throwTimeout("send " + host_);
        }
        return false;
    }
    return true;
}

ClientResponse HttpClient::receiveOn(Conn& conn, Clock::time_point deadline,
                                     std::size_t& received) {
    ClientResponse response;
    std::string buf = std::move(conn.leftover);
    conn.leftover.clear();
    received = buf.size();

    // One bounded recv; appends to buf and bumps `received`, returns false
    // on EOF, throws on error or deadline.
    const auto recvSome = [&](const char* what) -> bool {
        char chunk[16384];
        while (true) {
            if (!armSocketDeadline(conn.fd, deadline)) {
                closeConn(conn.fd, conn.leftover);
                throwTimeout(std::string(what) + " " + host_);
            }
            const ssize_t n = ::recv(conn.fd, chunk, sizeof chunk, 0);
            if (n > 0) {
                buf.append(chunk, static_cast<std::size_t>(n));
                received += static_cast<std::size_t>(n);
                return true;
            }
            if (n < 0 && errno == EINTR) continue;
            if (n == 0) return false;
            closeConn(conn.fd, conn.leftover);
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                throwTimeout(std::string(what) + " " + host_);
            }
            throwErrno(std::string(what) + " " + host_);
        }
    };

    // Headers: accumulate until the blank line.
    std::size_t headerEnd = std::string::npos;
    while (true) {
        headerEnd = buf.find("\r\n\r\n");
        if (headerEnd != std::string::npos) break;
        if (buf.size() > kMaxResponseHeaderBytes) {
            closeConn(conn.fd, conn.leftover);
            throw Error("response header block too large");
        }
        if (!recvSome("recv")) {
            closeConn(conn.fd, conn.leftover);
            throw Error("connection closed mid-response");
        }
    }

    const std::string_view head(buf.data(), headerEnd);
    std::size_t lineEnd = head.find("\r\n");
    if (lineEnd == std::string_view::npos) lineEnd = head.size();
    const std::string_view statusLine = head.substr(0, lineEnd);
    if (statusLine.size() < 12 || statusLine.substr(0, 5) != "HTTP/") {
        closeConn(conn.fd, conn.leftover);
        throw Error("malformed status line: " + std::string(statusLine));
    }
    response.status = (statusLine[9] - '0') * 100 + (statusLine[10] - '0') * 10 +
                      (statusLine[11] - '0');
    if (response.status < 100 || response.status > 599) {
        closeConn(conn.fd, conn.leftover);
        throw Error("malformed status code: " + std::string(statusLine));
    }

    std::size_t pos = lineEnd == head.size() ? head.size() : lineEnd + 2;
    while (pos < head.size()) {
        std::size_t next = head.find("\r\n", pos);
        if (next == std::string_view::npos) next = head.size();
        const std::string_view line = head.substr(pos, next - pos);
        pos = next + 2;
        const std::size_t colon = line.find(':');
        if (colon == std::string_view::npos) continue;
        response.headers.push_back(
            {std::string(line.substr(0, colon)),
             std::string(trimView(line.substr(colon + 1)))});
    }
    buf.erase(0, headerEnd + 4);

    const auto recvMore = [&](const char* what) {
        if (!recvSome(what)) {
            closeConn(conn.fd, conn.leftover);
            throw Error(std::string(what) + ": connection closed");
        }
    };

    bool closeAfter = false;
    if (const std::string* connection = response.header("Connection")) {
        closeAfter = caseEquals(*connection, "close");
    }

    const std::string* te = response.header("Transfer-Encoding");
    if (te != nullptr && caseEquals(*te, "chunked")) {
        while (true) {
            const std::size_t nl = buf.find("\r\n");
            if (nl == std::string::npos) {
                recvMore("recv chunk size");
                continue;
            }
            std::string sizeText = buf.substr(0, nl);
            const std::size_t semi = sizeText.find(';');
            if (semi != std::string::npos) sizeText.resize(semi);
            char* end = nullptr;
            const unsigned long long size =
                std::strtoull(sizeText.c_str(), &end, 16);
            if (end == sizeText.c_str()) {
                closeConn(conn.fd, conn.leftover);
                throw Error("malformed chunk size: " + sizeText);
            }
            if (size == 0) {
                // Trailer section: lines until a blank one.
                buf.erase(0, nl + 2);
                while (true) {
                    const std::size_t tn = buf.find("\r\n");
                    if (tn == std::string::npos) {
                        recvMore("recv trailers");
                        continue;
                    }
                    const bool blank = tn == 0;
                    buf.erase(0, tn + 2);
                    if (blank) break;
                }
                break;
            }
            while (buf.size() < nl + 2 + size + 2) recvMore("recv chunk");
            response.body.append(buf, nl + 2, size);
            if (response.body.size() > kMaxResponseBodyBytes) {
                closeConn(conn.fd, conn.leftover);
                throw Error("response body too large");
            }
            buf.erase(0, nl + 2 + size + 2);
        }
    } else if (const std::string* cl = response.header("Content-Length")) {
        char* end = nullptr;
        const unsigned long long length = std::strtoull(cl->c_str(), &end, 10);
        if (end == cl->c_str() || *end != '\0' ||
            length > kMaxResponseBodyBytes) {
            closeConn(conn.fd, conn.leftover);
            throw Error("malformed Content-Length: " + *cl);
        }
        while (buf.size() < length) recvMore("recv body");
        response.body = buf.substr(0, length);
        buf.erase(0, length);
    } else if (closeAfter) {
        // Read-to-EOF body.
        while (true) {
            if (buf.size() > kMaxResponseBodyBytes) {
                closeConn(conn.fd, conn.leftover);
                throw Error("response body too large");
            }
            if (!recvSome("recv body")) break;
        }
        response.body = std::move(buf);
        buf.clear();
    }
    // else: no framing headers and keep-alive — bodiless response.

    if (closeAfter) {
        closeConn(conn.fd, conn.leftover);
    } else {
        conn.leftover = std::move(buf);
    }
    return response;
}

ClientResponse HttpClient::attemptOnce(const std::string& request,
                                       Clock::time_point deadline,
                                       bool idempotent, bool& sentAny) {
    bool redialed = false;
    while (true) {
        const bool fresh = conn_.fd < 0;
        if (fresh) dial(conn_, deadline);
        if (!sendOn(conn_, request, deadline)) {
            // Stale keep-alive socket (server closed between requests): the
            // request never ran, so one transparent re-dial is always safe.
            closeConn(conn_.fd, conn_.leftover);
            if (fresh || redialed) throwErrno("send " + host_);
            redialed = true;
            ++stats_.redials;
            ClientMetrics::get().redials.inc();
            continue;
        }
        sentAny = true;
        std::size_t received = 0;
        try {
            return receiveOn(conn_, deadline, received);
        } catch (const TimeoutError&) {
            throw;
        } catch (const Error&) {
            // The other face of the stale keep-alive race: the server had
            // already closed, our bytes vanished, and the first read sees
            // EOF. Only idempotent requests may transparently re-run — a
            // reused connection cannot prove the request was unprocessed.
            if (!fresh && !redialed && idempotent && received == 0) {
                redialed = true;
                sentAny = false;
                ++stats_.redials;
                ClientMetrics::get().redials.inc();
                continue;
            }
            throw;
        }
    }
}

ClientResponse HttpClient::hedgedAttempt(const std::string& request,
                                         Clock::time_point deadline) {
    struct Slot {
        HttpClient::Conn conn;
        std::atomic<int> fd{-1}; ///< published for cross-thread shutdown
        int redials = 0;
        bool finished = false; ///< under mu
        bool ok = false;       ///< under mu
    };
    struct Shared {
        std::mutex mu;
        std::condition_variable cv;
        int done = 0;
        int winner = -1;
        ClientResponse winning;
        std::exception_ptr firstError;
        std::atomic<bool> cancelled{false};
    };
    Slot slots[2];
    Shared sh;

    // The primary adopts the kept-alive connection; it is restored (or
    // replaced by the hedge's) once a winner is known.
    slots[0].conn = conn_;
    conn_ = Conn{};
    slots[0].fd.store(slots[0].conn.fd, std::memory_order_relaxed);

    const auto run = [&](int idx) {
        Slot& slot = slots[idx];
        try {
            ClientResponse r;
            bool redialed = false;
            while (true) {
                if (sh.cancelled.load()) {
                    throw Error("hedge attempt cancelled");
                }
                const bool fresh = slot.conn.fd < 0;
                if (fresh) {
                    dial(slot.conn, deadline);
                    slot.fd.store(slot.conn.fd);
                    // Publish-then-check pairs with the canceller's
                    // set-then-read: one side always observes the other, so
                    // a loser that dialed after the shutdown sweep still
                    // aborts instead of blocking in recv until the deadline.
                    if (sh.cancelled.load()) {
                        throw Error("hedge attempt cancelled");
                    }
                }
                if (!sendOn(slot.conn, request, deadline)) {
                    closeConn(slot.conn.fd, slot.conn.leftover);
                    slot.fd.store(-1);
                    if (fresh || redialed) throwErrno("send " + host_);
                    redialed = true;
                    ++slot.redials;
                    continue;
                }
                std::size_t received = 0;
                try {
                    r = receiveOn(slot.conn, deadline, received);
                    break;
                } catch (const TimeoutError&) {
                    throw;
                } catch (const Error&) {
                    slot.fd.store(-1);
                    // Hedged requests are GETs: the stale keep-alive EOF
                    // race re-dials just like the unhedged path.
                    if (!fresh && !redialed && received == 0 &&
                        !sh.cancelled.load()) {
                        redialed = true;
                        ++slot.redials;
                        continue;
                    }
                    throw;
                }
            }
            const std::lock_guard<std::mutex> lock(sh.mu);
            slot.finished = true;
            slot.ok = true;
            ++sh.done;
            if (sh.winner < 0) {
                sh.winner = idx;
                sh.winning = std::move(r);
            } else {
                // Both completed; only the winner's connection is kept.
                closeConn(slot.conn.fd, slot.conn.leftover);
                slot.fd.store(-1, std::memory_order_relaxed);
            }
            sh.cv.notify_all();
        } catch (...) {
            closeConn(slot.conn.fd, slot.conn.leftover);
            slot.fd.store(-1, std::memory_order_relaxed);
            const std::lock_guard<std::mutex> lock(sh.mu);
            slot.finished = true;
            ++sh.done;
            if (!sh.firstError) sh.firstError = std::current_exception();
            sh.cv.notify_all();
        }
    };

    std::thread primary(run, 0);
    std::thread hedge;
    bool hedgeLaunched = false;
    {
        std::unique_lock<std::mutex> lock(sh.mu);
        const auto hedgeAt =
            Clock::now() + std::chrono::milliseconds(retry_.hedgeDelayMs);
        sh.cv.wait_until(lock, std::min(hedgeAt, deadline),
                         [&] { return sh.done > 0; });
        if (sh.done == 0 && remainingMs(deadline) > 0) {
            hedgeLaunched = true;
            hedge = std::thread(run, 1);
        }
        const int launched = hedgeLaunched ? 2 : 1;
        sh.cv.wait(lock,
                   [&] { return sh.winner >= 0 || sh.done == launched; });
        if (sh.winner >= 0 && sh.done < launched) {
            // Cancel the loser: shutdown unblocks its recv/send; the loser
            // thread owns the close.
            sh.cancelled.store(true);
            const int loserFd = slots[1 - sh.winner].fd.load();
            if (loserFd >= 0) ::shutdown(loserFd, SHUT_RDWR);
        }
    }
    primary.join();
    if (hedge.joinable()) hedge.join();

    stats_.redials += slots[0].redials + slots[1].redials;
    for (int i = slots[0].redials + slots[1].redials; i > 0; --i)
        ClientMetrics::get().redials.inc();
    if (hedgeLaunched) {
        ++stats_.hedges;
        ClientMetrics::get().hedges.inc();
    }
    if (sh.winner < 0) {
        std::rethrow_exception(sh.firstError);
    }
    if (sh.winner == 1) {
        ++stats_.hedgeWins;
        ClientMetrics::get().hedgeWins.inc();
    }
    conn_ = slots[sh.winner].conn; // keep the winner's connection alive
    return std::move(sh.winning);
}

int HttpClient::backoffMs(int attempt) {
    std::int64_t cap = retry_.baseBackoffMs;
    for (int i = 0; i < attempt && cap < retry_.maxBackoffMs; ++i) cap *= 2;
    if (cap > retry_.maxBackoffMs) cap = retry_.maxBackoffMs;
    if (cap <= 0) return 0;
    // Full jitter: uniform in [0, cap], deterministic per RetryOptions::seed.
    const std::uint64_t draw = util::splitmix64(jitterState_);
    return static_cast<int>(draw % static_cast<std::uint64_t>(cap + 1));
}

ClientResponse HttpClient::get(const std::string& path) {
    return roundTrip("GET", path, "", "");
}

ClientResponse HttpClient::post(const std::string& path, std::string body,
                                const std::string& contentType) {
    return roundTrip("POST", path, body, contentType);
}

ClientResponse HttpClient::del(const std::string& path) {
    return roundTrip("DELETE", path, "", "");
}

ClientResponse HttpClient::roundTrip(const std::string& method,
                                     const std::string& path,
                                     const std::string& body,
                                     const std::string& contentType) {
    std::string request = method + " " + path + " HTTP/1.1\r\nHost: " + host_ +
                          ":" + std::to_string(port_) + "\r\n";
    for (const HttpHeader& h : defaultHeaders_)
        request += h.name + ": " + h.value + "\r\n";
    if (!body.empty() || method == "POST") {
        if (!contentType.empty()) {
            request += "Content-Type: " + contentType + "\r\n";
        }
        request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    }
    request += "\r\n";
    request += body;

    const bool idempotent = method == "GET" || method == "DELETE";
    const bool hedged = method == "GET" && retry_.hedgeDelayMs > 0;
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(timeoutMs_);

    // Sleeps `ms` if it fits the remaining budget; false otherwise.
    const auto sleepWithinDeadline = [&](int ms) {
        if (ms > remainingMs(deadline)) return false;
        if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
        return true;
    };

    int attempt = 0;
    while (true) {
        bool sentAny = false;
        ClientResponse response;
        try {
            response = hedged
                           ? hedgedAttempt(request, deadline)
                           : attemptOnce(request, deadline, idempotent, sentAny);
        } catch (const TimeoutError&) {
            throw; // the budget is gone; retrying cannot help
        } catch (const Error&) {
            // Transport failure. Retry only when another attempt cannot
            // double-execute: idempotent methods, or a request whose bytes
            // never reached a live server.
            if (attempt + 1 >= retry_.maxAttempts ||
                !(idempotent || !sentAny) ||
                !sleepWithinDeadline(backoffMs(attempt))) {
                throw;
            }
            ++attempt;
            ++stats_.retries;
            ClientMetrics::get().retries.inc();
            continue;
        }
        if ((response.status == 429 || response.status == 503) &&
            retry_.retryOnShed && attempt + 1 < retry_.maxAttempts) {
            // Shed by the server before execution — safe to retry for any
            // method. Honor Retry-After when it fits the budget.
            const int after = retryAfterMs(response);
            if (sleepWithinDeadline(after >= 0 ? after : backoffMs(attempt))) {
                ++attempt;
                ++stats_.retries;
                ++stats_.shedWaits;
                ClientMetrics::get().retries.inc();
                ClientMetrics::get().shedWaits.inc();
                continue;
            }
        }
        return response;
    }
}

} // namespace lar::net
