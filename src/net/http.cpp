#include "net/http.hpp"

#include <algorithm>
#include <cctype>

#include "json/escape.hpp"
#include "util/error.hpp"

namespace lar::net {

namespace {

bool isTokenChar(char c) {
    // RFC 7230 token: visible ASCII minus separators.
    static constexpr std::string_view kExtra = "!#$%&'*+-.^_`|~";
    const auto u = static_cast<unsigned char>(c);
    return std::isalnum(u) != 0 || kExtra.find(c) != std::string_view::npos;
}

bool isVisible(char c) {
    const auto u = static_cast<unsigned char>(c);
    return u > 0x20 && u != 0x7f;
}

std::string_view trimmed(std::string_view s) {
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
        s.remove_prefix(1);
    while (!s.empty() && (s.back() == ' ' || s.back() == '\t'))
        s.remove_suffix(1);
    return s;
}

} // namespace

bool caseEquals(std::string_view a, std::string_view b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(a[i])) !=
            std::tolower(static_cast<unsigned char>(b[i])))
            return false;
    }
    return true;
}

const std::string* HttpRequest::header(std::string_view name) const {
    for (const HttpHeader& h : headers)
        if (caseEquals(h.name, name)) return &h.value;
    return nullptr;
}

std::string_view HttpRequest::path() const {
    const std::string_view t = target;
    const std::size_t q = t.find('?');
    return q == std::string_view::npos ? t : t.substr(0, q);
}

std::string HttpRequest::queryParam(std::string_view name) const {
    const std::string_view t = target;
    const std::size_t q = t.find('?');
    if (q == std::string_view::npos) return "";
    std::string_view rest = t.substr(q + 1);
    while (!rest.empty()) {
        const std::size_t amp = rest.find('&');
        const std::string_view pair =
            amp == std::string_view::npos ? rest : rest.substr(0, amp);
        rest = amp == std::string_view::npos ? std::string_view()
                                             : rest.substr(amp + 1);
        const std::size_t eq = pair.find('=');
        const std::string_view key =
            eq == std::string_view::npos ? pair : pair.substr(0, eq);
        if (key == name)
            return eq == std::string_view::npos
                       ? ""
                       : std::string(pair.substr(eq + 1));
    }
    return "";
}

HttpParser::HttpParser(const HttpLimits& limits) : limits_(limits) {}

void HttpParser::fail(int status, std::string reason) {
    state_ = State::Failed;
    errorStatus_ = status;
    errorReason_ = std::move(reason);
}

void HttpParser::reset() {
    request_.method.clear();
    request_.target.clear();
    request_.versionMinor = 1;
    request_.headers.clear();
    request_.body.clear();
    request_.keepAlive = true;
    request_.expectContinue = false;
    state_ = State::RequestLine;
    line_.clear();
    sawCr_ = false;
    begun_ = false;
    headerBytes_ = 0;
    bodyRemaining_ = 0;
    errorStatus_ = 0;
    errorReason_.clear();
}

bool HttpParser::takeLine(std::string_view data, std::size_t& used,
                          std::size_t cap, int overflowStatus,
                          const char* overflowReason) {
    // A CR seen at the end of the previous feed must be followed by LF.
    if (sawCr_) {
        if (used >= data.size()) return false;
        if (data[used] != '\n') {
            fail(400, "bare CR in line");
            return false;
        }
        ++used;
        sawCr_ = false;
        return true;
    }
    while (used < data.size()) {
        const char c = data[used];
        ++used;
        if (c == '\n') {
            // Accept both CRLF and bare LF (curl/netcat friendliness).
            if (!line_.empty() && line_.back() == '\r') line_.pop_back();
            return true;
        }
        if (c == '\r') {
            // Defer: the LF may be in the next feed. Store the CR so the
            // length check below still counts it.
            if (used < data.size()) {
                if (data[used] == '\n') {
                    ++used;
                    return true;
                }
                fail(400, "bare CR in line");
                return false;
            }
            sawCr_ = true;
            return false;
        }
        line_ += c;
        if (line_.size() > cap) {
            fail(overflowStatus, overflowReason);
            return false;
        }
    }
    return false;
}

bool HttpParser::parseRequestLine() {
    // Robustness (RFC 7230 §3.5): ignore blank line(s) before the request.
    if (line_.empty()) return true;

    const std::string_view line = line_;
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
    if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
        line.find(' ', sp2 + 1) != std::string_view::npos) {
        fail(400, "malformed request line");
        return false;
    }
    const std::string_view method = line.substr(0, sp1);
    const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::string_view version = line.substr(sp2 + 1);

    if (method.empty() ||
        !std::all_of(method.begin(), method.end(), isTokenChar)) {
        fail(400, "malformed method");
        return false;
    }
    if (target.empty() ||
        !std::all_of(target.begin(), target.end(), isVisible)) {
        fail(400, "malformed request target");
        return false;
    }
    if (version == "HTTP/1.1") {
        request_.versionMinor = 1;
    } else if (version == "HTTP/1.0") {
        request_.versionMinor = 0;
    } else {
        fail(505, "unsupported HTTP version");
        return false;
    }
    request_.method.assign(method);
    request_.target.assign(target);
    state_ = State::Headers;
    return true;
}

bool HttpParser::parseHeaderLine() {
    if (line_.empty()) return finishHeaders();
    if (line_.front() == ' ' || line_.front() == '\t') {
        fail(400, "obsolete header folding");
        return false;
    }
    if (request_.headers.size() >= limits_.maxHeaders) {
        fail(431, "too many headers");
        return false;
    }
    const std::string_view line = line_;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
        fail(400, "malformed header line");
        return false;
    }
    const std::string_view name = line.substr(0, colon);
    if (!std::all_of(name.begin(), name.end(), isTokenChar)) {
        fail(400, "malformed header name");
        return false;
    }
    const std::string_view value = trimmed(line.substr(colon + 1));
    for (const char c : value) {
        const auto u = static_cast<unsigned char>(c);
        if (u < 0x20 && c != '\t') {
            fail(400, "control character in header value");
            return false;
        }
    }
    request_.headers.push_back(
        HttpHeader{std::string(name), std::string(value)});
    return true;
}

bool HttpParser::finishHeaders() {
    // Keep-alive: 1.1 defaults on, 1.0 defaults off; Connection overrides.
    request_.keepAlive = request_.versionMinor >= 1;
    if (const std::string* connection = request_.header("Connection")) {
        if (caseEquals(*connection, "close")) request_.keepAlive = false;
        else if (caseEquals(*connection, "keep-alive"))
            request_.keepAlive = true;
    }
    if (const std::string* expect = request_.header("Expect")) {
        if (caseEquals(*expect, "100-continue")) request_.expectContinue = true;
    }

    const std::string* te = request_.header("Transfer-Encoding");
    const std::string* cl = nullptr;
    for (const HttpHeader& h : request_.headers) {
        if (!caseEquals(h.name, "Content-Length")) continue;
        if (cl != nullptr) {
            // RFC 7230 §3.3.2 allows identical duplicates, but they are a
            // smuggling vector — reject them all.
            fail(400, "multiple Content-Length headers");
            return false;
        }
        cl = &h.value;
    }
    if (te != nullptr) {
        if (!caseEquals(trimmed(*te), "chunked")) {
            fail(501, "unsupported transfer coding");
            return false;
        }
        if (cl != nullptr) {
            // RFC 7230 §3.3.3: reject the smuggling-prone combination.
            fail(400, "both Transfer-Encoding and Content-Length");
            return false;
        }
        state_ = State::ChunkSize;
        return true;
    }
    if (cl != nullptr) {
        const std::string_view text = *cl;
        if (text.empty() ||
            !std::all_of(text.begin(), text.end(), [](char c) {
                return std::isdigit(static_cast<unsigned char>(c)) != 0;
            }) ||
            text.size() > 19) {
            fail(400, "malformed Content-Length");
            return false;
        }
        std::uint64_t length = 0;
        for (const char c : text) length = length * 10 + (c - '0');
        if (length > limits_.maxBodyBytes) {
            fail(413, "request body too large");
            return false;
        }
        if (length == 0) {
            state_ = State::Complete;
            return true;
        }
        bodyRemaining_ = static_cast<std::size_t>(length);
        request_.body.reserve(bodyRemaining_);
        state_ = State::FixedBody;
        return true;
    }
    state_ = State::Complete;
    return true;
}

HttpParser::Status HttpParser::consume(std::string_view data,
                                       std::size_t& used) {
    expects(state_ != State::Complete && state_ != State::Failed,
            "HttpParser::consume: reset() required after Complete/Failed");
    used = 0;
    if (!data.empty()) begun_ = true;
    while (used < data.size() || state_ == State::Complete) {
        switch (state_) {
            case State::RequestLine: {
                if (!takeLine(data, used, limits_.maxRequestLineBytes, 431,
                              "request line too long"))
                    break;
                const bool ok = parseRequestLine();
                line_.clear();
                if (!ok) break;
                continue;
            }
            case State::Headers:
            case State::Trailers: {
                const std::size_t before = line_.size();
                const bool complete =
                    takeLine(data, used, limits_.maxHeaderBytes, 431,
                             "header block too large");
                headerBytes_ += line_.size() - before;
                if (headerBytes_ > limits_.maxHeaderBytes) {
                    fail(431, "header block too large");
                    break;
                }
                if (!complete) break;
                bool ok = true;
                if (state_ == State::Headers) {
                    ok = parseHeaderLine();
                } else if (line_.empty()) {
                    state_ = State::Complete; // end of trailer block
                }
                // Trailer fields themselves are skipped: the server does not
                // use any, and they already count against maxHeaderBytes.
                line_.clear();
                if (!ok) break;
                continue;
            }
            case State::FixedBody: {
                const std::size_t take =
                    std::min(bodyRemaining_, data.size() - used);
                request_.body.append(data.substr(used, take));
                used += take;
                bodyRemaining_ -= take;
                if (bodyRemaining_ == 0) state_ = State::Complete;
                continue;
            }
            case State::ChunkSize: {
                if (!takeLine(data, used, /*cap=*/1024, 400,
                              "chunk-size line too long"))
                    break;
                // chunk-size [;extensions] — extensions are ignored.
                std::string_view text = line_;
                const std::size_t semi = text.find(';');
                if (semi != std::string_view::npos)
                    text = trimmed(text.substr(0, semi));
                if (text.empty() || text.size() > 16 ||
                    !std::all_of(text.begin(), text.end(), [](char c) {
                        return std::isxdigit(static_cast<unsigned char>(c)) != 0;
                    })) {
                    fail(400, "malformed chunk size");
                    line_.clear();
                    break;
                }
                std::uint64_t size = 0;
                for (const char c : text) {
                    const auto u = static_cast<unsigned char>(c);
                    size = size * 16 +
                           static_cast<std::uint64_t>(
                               std::isdigit(u) != 0
                                   ? c - '0'
                                   : std::tolower(u) - 'a' + 10);
                }
                line_.clear();
                if (size == 0) {
                    state_ = State::Trailers;
                    continue;
                }
                if (request_.body.size() + size > limits_.maxBodyBytes) {
                    fail(413, "request body too large");
                    break;
                }
                bodyRemaining_ = static_cast<std::size_t>(size);
                state_ = State::ChunkData;
                continue;
            }
            case State::ChunkData: {
                const std::size_t take =
                    std::min(bodyRemaining_, data.size() - used);
                request_.body.append(data.substr(used, take));
                used += take;
                bodyRemaining_ -= take;
                if (bodyRemaining_ == 0) state_ = State::ChunkDataEnd;
                continue;
            }
            case State::ChunkDataEnd: {
                if (!takeLine(data, used, /*cap=*/2, 400,
                              "missing CRLF after chunk"))
                    break;
                const bool ok = line_.empty();
                line_.clear();
                if (!ok) {
                    fail(400, "missing CRLF after chunk");
                    break;
                }
                state_ = State::ChunkSize;
                continue;
            }
            case State::Complete:
                return Status::Complete;
            case State::Failed:
                return Status::Failed;
        }
        // A `break` out of the switch means either NeedMore (line pending)
        // or a parse failure.
        if (state_ == State::Failed) return Status::Failed;
        if (used >= data.size()) break;
    }
    return state_ == State::Complete ? Status::Complete : Status::NeedMore;
}

HttpResponse HttpResponse::text(int status, std::string body) {
    HttpResponse r;
    r.status = status;
    r.contentType = "text/plain; charset=utf-8";
    r.body = std::move(body);
    return r;
}

HttpResponse HttpResponse::errorJson(int status, std::string_view kind,
                                     std::string_view message) {
    HttpResponse r;
    r.status = status;
    r.body += "{\"error\":{\"kind\":";
    json::appendQuoted(r.body, kind);
    r.body += ",\"message\":";
    json::appendQuoted(r.body, message);
    r.body += "}}";
    return r;
}

const char* reasonPhrase(int status) {
    switch (status) {
        case 100: return "Continue";
        case 200: return "OK";
        case 204: return "No Content";
        case 400: return "Bad Request";
        case 404: return "Not Found";
        case 405: return "Method Not Allowed";
        case 408: return "Request Timeout";
        case 413: return "Payload Too Large";
        case 429: return "Too Many Requests";
        case 431: return "Request Header Fields Too Large";
        case 500: return "Internal Server Error";
        case 501: return "Not Implemented";
        case 503: return "Service Unavailable";
        case 505: return "HTTP Version Not Supported";
        default: return status < 400 ? "OK" : "Error";
    }
}

void serializeResponse(const HttpResponse& response, bool keepAlive,
                       std::string& out) {
    out += "HTTP/1.1 ";
    out += std::to_string(response.status);
    out += ' ';
    out += reasonPhrase(response.status);
    out += "\r\nContent-Type: ";
    out += response.contentType;
    out += "\r\nContent-Length: ";
    out += std::to_string(response.body.size());
    out += keepAlive ? "\r\nConnection: keep-alive" : "\r\nConnection: close";
    for (const HttpHeader& h : response.extraHeaders) {
        out += "\r\n";
        out += h.name;
        out += ": ";
        out += h.value;
    }
    out += "\r\n\r\n";
    out += response.body;
}

} // namespace lar::net
