#include "net/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_id.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/stopwatch.hpp"
#include "util/threadpool.hpp"

namespace lar::net {
namespace {

using Clock = std::chrono::steady_clock;

// epoll user-data values for the two non-connection fds; connection ids
// start above them and never repeat, so a completion that races a close
// simply misses its lookup instead of touching a reused fd.
constexpr std::uint64_t kListenId = 0;
constexpr std::uint64_t kWakeId = 1;

constexpr int kSweepIntervalMs = 50;
constexpr std::size_t kReadChunk = 16 * 1024;

double msSince(Clock::time_point t, Clock::time_point now) {
    return std::chrono::duration<double, std::milli>(now - t).count();
}

struct Metrics {
    obs::Counter& accepted;
    obs::Counter& rejected;
    obs::Gauge& active;
    obs::Counter& bytesRead;
    obs::Counter& bytesWritten;
    obs::Counter& parseErrors;
    obs::Counter& sheds;
    obs::Histogram& latencyMs;

    static Metrics& get() {
        static Metrics m{
            obs::Registry::global().counter(
                "lar_http_connections_accepted_total",
                "TCP connections accepted by larserved"),
            obs::Registry::global().counter(
                "lar_http_connections_rejected_total",
                "connections refused at accept (draining or at the "
                "connection cap)"),
            obs::Registry::global().gauge("lar_http_active_connections",
                                          "currently open HTTP connections"),
            obs::Registry::global().counter("lar_http_bytes_read_total",
                                            "request bytes read from sockets"),
            obs::Registry::global().counter(
                "lar_http_bytes_written_total",
                "response bytes written to sockets"),
            obs::Registry::global().counter(
                "lar_http_parse_errors_total",
                "requests rejected by the HTTP parser (4xx/5xx)"),
            obs::Registry::global().counter(
                "lar_http_sheds_total",
                "requests shed with 503 at the inflight cap"),
            obs::Registry::global().histogram(
                "lar_http_request_latency_ms",
                "wall time from first request byte to response flushed",
                obs::latencyBucketsMs()),
        };
        return m;
    }

    static obs::Counter& requests(int status) {
        return obs::Registry::global().counter(
            "lar_http_requests_total", "HTTP responses sent, by status code",
            {{"code", std::to_string(status)}});
    }
};

/// Resilience counters (server side of the lar_net_* family; the client
/// half lives in http_client.cpp).
struct NetMetrics {
    obs::Counter& resets;
    obs::Counter& readProgressTimeouts;
    obs::Counter& writeProgressTimeouts;
    obs::Counter& lifetimeCloses;
    obs::Counter& faultsInjected;

    static NetMetrics& get() {
        static NetMetrics m{
            obs::Registry::global().counter(
                "lar_net_resets_total",
                "connections dropped on a transport error mid-read or "
                "mid-write (ECONNRESET/EPIPE, organic or injected)"),
            obs::Registry::global().counter(
                "lar_net_read_progress_timeouts_total",
                "requests killed with 408 because they arrived too slowly "
                "(slowloris defense)"),
            obs::Registry::global().counter(
                "lar_net_write_progress_timeouts_total",
                "responses abandoned because the peer drained too slowly "
                "(stalled-reader defense)"),
            obs::Registry::global().counter(
                "lar_net_lifetime_closes_total",
                "connections closed at the max connection lifetime"),
            obs::Registry::global().counter(
                "lar_net_faults_injected_total",
                "socket faults fired by armed net.* injection sites"),
        };
        return m;
    }
};

struct Connection {
    int fd = -1;
    std::uint64_t id = 0;
    std::string peer;

    enum class St { Reading, Handling, Writing } state = St::Reading;
    HttpParser parser;
    std::string inBuf; ///< bytes read but not yet consumed by the parser
    std::size_t inOff = 0;
    std::string outBuf;
    std::size_t outOff = 0;
    std::uint32_t events = 0; ///< epoll mask currently registered

    bool closeAfterWrite = false;
    bool continueSent = false;
    Clock::time_point lastActivity;
    Clock::time_point acceptedAt;
    /// Set when a response starts flushing; total-write-time clock for the
    /// stalled-reader kill (write-idle alone is defeated by slow drains).
    Clock::time_point writeStart;

    // Per-request bookkeeping for metrics and the access log.
    Clock::time_point requestStart;
    std::string method;
    std::string path;
    std::string traceId;            ///< request trace identity ("" pre-dispatch)
    std::size_t responseBytes = 0;  ///< serialized response size (wire bytes)
    int status = 0;

    explicit Connection(const HttpLimits& limits) : parser(limits) {}

    [[nodiscard]] bool outPending() const { return outOff < outBuf.size(); }
};

struct Completion {
    std::uint64_t connId = 0;
    HttpResponse response;
};

/// Splits "/a/b/c" on '/' into {"a","b","c"}. The leading empty segment is
/// dropped; a trailing slash yields a trailing empty segment, so "/a/" and
/// "/a" stay distinct (and a `{name}` segment, which requires non-empty,
/// never matches the trailing slash form).
std::vector<std::string> splitPathSegments(std::string_view path) {
    std::vector<std::string> segments;
    if (!path.empty() && path.front() == '/') path.remove_prefix(1);
    while (true) {
        const std::size_t slash = path.find('/');
        if (slash == std::string_view::npos) {
            segments.emplace_back(path);
            return segments;
        }
        segments.emplace_back(path.substr(0, slash));
        path.remove_prefix(slash + 1);
    }
}

/// True when `path` matches `pattern` segment-for-segment; `{name}`
/// segments capture into `params`.
bool matchSegments(const std::vector<std::string>& pattern,
                   const std::vector<std::string>& path,
                   HttpServer::RouteParams& params) {
    if (pattern.size() != path.size()) return false;
    for (std::size_t i = 0; i < pattern.size(); ++i) {
        const std::string& want = pattern[i];
        if (want.size() >= 2 && want.front() == '{' && want.back() == '}') {
            if (path[i].empty()) return false;
            params[want.substr(1, want.size() - 2)] = path[i];
        } else if (want != path[i]) {
            return false;
        }
    }
    return true;
}

} // namespace

struct HttpServer::Impl {
    struct Loop {
        Impl* impl = nullptr;
        int epfd = -1;
        int wakeFd = -1;
        std::thread thread;
        std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> conns;
        Clock::time_point lastSweep{};

        std::mutex completionMutex;
        std::vector<Completion> completions;
    };

    explicit Impl(const ServerOptions& options) : opts(options) {
        if (opts.ioThreads == 0) opts.ioThreads = 2;
        if (opts.handlerThreads == 0) {
            const unsigned hw = std::thread::hardware_concurrency();
            opts.handlerThreads = hw == 0 ? 2 : hw;
        }
        if (opts.maxInflight == 0) {
            opts.maxInflight = static_cast<std::size_t>(opts.handlerThreads) * 4;
        }
    }

    /// One pattern route: the pattern split into segments (a "{name}"
    /// segment matches any single non-empty path segment) plus its
    /// method→handler table.
    struct PatternRoute {
        std::vector<std::string> segments;
        std::map<std::string, ParamHandler> methods;
    };

    ServerOptions opts;
    std::map<std::string, std::map<std::string, Handler>> routes; // path→method
    std::vector<PatternRoute> patternRoutes;
    std::function<void()> onDrainBegin;
    std::function<void()> onGraceExpired;

    int listenFd = -1;
    std::uint16_t boundPort = 0;
    std::vector<std::unique_ptr<Loop>> loops;
    std::unique_ptr<util::ThreadPool> pool;

    std::atomic<bool> running{false};
    std::atomic<bool> draining{false};
    std::atomic<std::uint64_t> nextConnId{2};
    std::atomic<std::size_t> totalConns{0};
    std::atomic<std::size_t> inflight{0};

    // --- lifecycle -------------------------------------------------------

    void start();
    void beginDrain();
    void drainAndStop(int graceMs);
    void stop();
    bool waitForIdle(int graceMs) const;

    // --- event loop ------------------------------------------------------

    void runLoop(Loop& loop);
    void wake(Loop& loop);
    void acceptBurst(Loop& loop);
    void onConnEvent(Loop& loop, Connection& conn, std::uint32_t events);
    void onReadable(Loop& loop, Connection& conn);
    void processInput(Loop& loop, Connection& conn);
    void dispatch(Loop& loop, Connection& conn);
    void respondNow(Loop& loop, Connection& conn, HttpResponse response,
                    bool forceClose);
    void queueResponse(Loop& loop, Connection& conn, HttpResponse response);
    void writeSome(Loop& loop, Connection& conn);
    void finishResponse(Loop& loop, Connection& conn);
    void updateEvents(Loop& loop, Connection& conn);
    void drainCompletions(Loop& loop);
    void sweep(Loop& loop);
    void closeConn(Loop& loop, Connection& conn);
};

// --------------------------------------------------------------------------
// Lifecycle
// --------------------------------------------------------------------------

void HttpServer::Impl::start() {
    expects(!running.load(), "HttpServer::start: already started");
    expects(listenFd < 0, "HttpServer::start: not restartable");

    listenFd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (listenFd < 0) throw Error("socket: " + std::string(std::strerror(errno)));
    const int one = 1;
    ::setsockopt(listenFd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(opts.port);
    if (::inet_pton(AF_INET, opts.bindAddress.c_str(), &addr.sin_addr) != 1) {
        ::close(listenFd);
        listenFd = -1;
        throw Error("bad bind address: " + opts.bindAddress);
    }
    if (::bind(listenFd, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0 ||
        ::listen(listenFd, 256) != 0) {
        const std::string what = std::strerror(errno);
        ::close(listenFd);
        listenFd = -1;
        throw Error("bind/listen " + opts.bindAddress + ":" +
                    std::to_string(opts.port) + ": " + what);
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    ::getsockname(listenFd, reinterpret_cast<sockaddr*>(&bound), &len);
    boundPort = ntohs(bound.sin_port);

    // Intern the lar_net_* family now so /metrics exposes the counters (at
    // zero) before the first reset/timeout, not only after one happened.
    (void)NetMetrics::get();

    pool = std::make_unique<util::ThreadPool>(opts.handlerThreads);
    running.store(true, std::memory_order_release);

    for (unsigned i = 0; i < opts.ioThreads; ++i) {
        auto loop = std::make_unique<Loop>();
        loop->impl = this;
        loop->epfd = ::epoll_create1(EPOLL_CLOEXEC);
        loop->wakeFd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
        if (loop->epfd < 0 || loop->wakeFd < 0) {
            throw Error("epoll_create1/eventfd: " +
                        std::string(std::strerror(errno)));
        }
        epoll_event ev{};
        ev.events = EPOLLIN | EPOLLEXCLUSIVE;
        ev.data.u64 = kListenId;
        ::epoll_ctl(loop->epfd, EPOLL_CTL_ADD, listenFd, &ev);
        ev.events = EPOLLIN;
        ev.data.u64 = kWakeId;
        ::epoll_ctl(loop->epfd, EPOLL_CTL_ADD, loop->wakeFd, &ev);
        loop->lastSweep = Clock::now();
        loops.push_back(std::move(loop));
    }
    for (auto& loop : loops) {
        Loop* raw = loop.get();
        loop->thread = std::thread([this, raw] { runLoop(*raw); });
    }
    util::logLineJson(util::LogLevel::Info, "http_listen",
                      {{"addr", opts.bindAddress},
                       {"port", static_cast<std::int64_t>(boundPort)},
                       {"io_threads", static_cast<std::int64_t>(opts.ioThreads)},
                       {"handler_threads",
                        static_cast<std::int64_t>(opts.handlerThreads)}});
}

void HttpServer::Impl::beginDrain() {
    if (draining.exchange(true)) return;
    // The listen fd stays registered: acceptBurst sees draining and closes
    // new sockets immediately, so late connectors get a prompt EOF instead
    // of hanging in the kernel backlog until their timeout.
    util::logLineJson(util::LogLevel::Info, "http_drain_begin",
                      {{"active_connections",
                        static_cast<std::int64_t>(totalConns.load())}});
    if (onDrainBegin) onDrainBegin();
    for (auto& loop : loops) wake(*loop);
}

bool HttpServer::Impl::waitForIdle(int graceMs) const {
    const auto deadline = Clock::now() + std::chrono::milliseconds(graceMs);
    while (totalConns.load(std::memory_order_acquire) > 0 ||
           inflight.load(std::memory_order_acquire) > 0) {
        if (Clock::now() >= deadline) return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return true;
}

void HttpServer::Impl::drainAndStop(int graceMs) {
    beginDrain();
    if (!waitForIdle(graceMs)) {
        util::logLineJson(
            util::LogLevel::Info, "http_drain_grace_expired",
            {{"active_connections",
              static_cast<std::int64_t>(totalConns.load())},
             {"inflight", static_cast<std::int64_t>(inflight.load())}});
        if (onGraceExpired) onGraceExpired();
        waitForIdle(graceMs);
    }
    stop();
}

void HttpServer::Impl::stop() {
    if (!running.exchange(false)) return;
    // Handler pool first: its destructor joins, so every completion is
    // posted before the loops stop. Loops keep serving epoll until the
    // running flag (checked per iteration) goes false, but at this point we
    // only need them awake once more to exit.
    pool.reset();
    for (auto& loop : loops) wake(*loop);
    for (auto& loop : loops) {
        if (loop->thread.joinable()) loop->thread.join();
    }
    for (auto& loop : loops) {
        for (auto& [id, conn] : loop->conns) {
            (void)id;
            Metrics::get().active.add(-1.0);
            ::close(conn->fd);
        }
        loop->conns.clear();
        if (loop->wakeFd >= 0) ::close(loop->wakeFd);
        if (loop->epfd >= 0) ::close(loop->epfd);
    }
    loops.clear();
    totalConns.store(0);
    if (listenFd >= 0) {
        ::close(listenFd);
        listenFd = -1;
    }
    util::logLineJson(util::LogLevel::Info, "http_stopped", {});
}

// --------------------------------------------------------------------------
// Event loop
// --------------------------------------------------------------------------

void HttpServer::Impl::wake(Loop& loop) {
    const std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(loop.wakeFd, &one, sizeof one);
}

void HttpServer::Impl::runLoop(Loop& loop) {
    std::vector<epoll_event> events(64);
    while (running.load(std::memory_order_acquire)) {
        const int n = ::epoll_wait(loop.epfd, events.data(),
                                   static_cast<int>(events.size()),
                                   kSweepIntervalMs);
        if (n < 0 && errno != EINTR) break;
        for (int i = 0; i < n; ++i) {
            const std::uint64_t id = events[static_cast<std::size_t>(i)].data.u64;
            const std::uint32_t mask = events[static_cast<std::size_t>(i)].events;
            if (id == kListenId) {
                acceptBurst(loop);
            } else if (id == kWakeId) {
                std::uint64_t drainBuf = 0;
                while (::read(loop.wakeFd, &drainBuf, sizeof drainBuf) > 0) {
                }
            } else {
                const auto it = loop.conns.find(id);
                if (it != loop.conns.end()) onConnEvent(loop, *it->second, mask);
            }
        }
        drainCompletions(loop);
        const Clock::time_point now = Clock::now();
        if (msSince(loop.lastSweep, now) >= kSweepIntervalMs) {
            loop.lastSweep = now;
            sweep(loop);
        }
    }
}

void HttpServer::Impl::acceptBurst(Loop& loop) {
    while (true) {
        sockaddr_in addr{};
        socklen_t len = sizeof addr;
        const int fd = ::accept4(listenFd, reinterpret_cast<sockaddr*>(&addr),
                                 &len, SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EINTR || errno == ECONNABORTED) continue;
            break; // EAGAIN, or transient accept failure — epoll re-arms us
        }
        if (draining.load(std::memory_order_acquire) ||
            totalConns.load(std::memory_order_acquire) >= opts.maxConnections) {
            Metrics::get().rejected.inc();
            ::close(fd);
            continue;
        }
        if (faultFires(kSiteAccept)) {
            NetMetrics::get().faultsInjected.inc();
            ::close(fd);
            continue;
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

        auto conn = std::make_unique<Connection>(opts.limits);
        conn->fd = fd;
        conn->id = nextConnId.fetch_add(1, std::memory_order_relaxed);
        conn->lastActivity = Clock::now();
        conn->acceptedAt = conn->lastActivity;
        char ip[INET_ADDRSTRLEN] = {0};
        ::inet_ntop(AF_INET, &addr.sin_addr, ip, sizeof ip);
        conn->peer = std::string(ip) + ":" + std::to_string(ntohs(addr.sin_port));

        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.u64 = conn->id;
        if (::epoll_ctl(loop.epfd, EPOLL_CTL_ADD, fd, &ev) != 0) {
            ::close(fd);
            continue;
        }
        conn->events = EPOLLIN;
        totalConns.fetch_add(1, std::memory_order_acq_rel);
        Metrics::get().accepted.inc();
        Metrics::get().active.add(1.0);
        loop.conns.emplace(conn->id, std::move(conn));
    }
}

void HttpServer::Impl::onConnEvent(Loop& loop, Connection& conn,
                                   std::uint32_t events) {
    if ((events & (EPOLLHUP | EPOLLERR)) != 0 &&
        (events & (EPOLLIN | EPOLLOUT)) == 0) {
        closeConn(loop, conn);
        return;
    }
    if ((events & EPOLLOUT) != 0) {
        writeSome(loop, conn);
        // writeSome may close or re-enter Reading; re-check via lookup-free
        // state below only if still alive.
        if (loop.conns.find(conn.id) == loop.conns.end()) return;
    }
    if ((events & EPOLLIN) != 0) onReadable(loop, conn);
}

void HttpServer::Impl::onReadable(Loop& loop, Connection& conn) {
    while (conn.state == Connection::St::Reading) {
        if (faultFires(kSiteRead)) { // injected ECONNRESET mid-read
            NetMetrics::get().faultsInjected.inc();
            NetMetrics::get().resets.inc();
            closeConn(loop, conn);
            return;
        }
        char buf[kReadChunk];
        std::size_t want = sizeof buf;
        if (faultFires(kSiteReadShort)) { // short read: 1 byte per recv
            NetMetrics::get().faultsInjected.inc();
            want = 1;
        }
        const ssize_t n = ::recv(conn.fd, buf, want, 0);
        if (n > 0) {
            Metrics::get().bytesRead.inc(static_cast<std::uint64_t>(n));
            conn.lastActivity = Clock::now();
            conn.inBuf.append(buf, static_cast<std::size_t>(n));
            processInput(loop, conn);
            if (static_cast<std::size_t>(n) < want) break;
            continue;
        }
        if (n == 0) { // peer closed
            closeConn(loop, conn);
            return;
        }
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        NetMetrics::get().resets.inc();
        closeConn(loop, conn);
        return;
    }
    if (loop.conns.find(conn.id) != loop.conns.end()) updateEvents(loop, conn);
}

void HttpServer::Impl::processInput(Loop& loop, Connection& conn) {
    while (conn.state == Connection::St::Reading && conn.inOff < conn.inBuf.size()) {
        const std::string_view view(conn.inBuf.data() + conn.inOff,
                                    conn.inBuf.size() - conn.inOff);
        std::size_t used = 0;
        const HttpParser::Status status = conn.parser.consume(view, used);
        conn.inOff += used;
        if (conn.inOff >= conn.inBuf.size()) {
            conn.inBuf.clear();
            conn.inOff = 0;
        }
        if (conn.requestStart == Clock::time_point{} && conn.parser.begun()) {
            conn.requestStart = Clock::now();
        }
        if (status == HttpParser::Status::NeedMore) {
            if (conn.parser.headersComplete() &&
                conn.parser.request().expectContinue && !conn.continueSent) {
                conn.continueSent = true;
                conn.outBuf.append("HTTP/1.1 100 Continue\r\n\r\n");
                writeSome(loop, conn);
                if (loop.conns.find(conn.id) == loop.conns.end()) return;
            }
            return;
        }
        if (status == HttpParser::Status::Failed) {
            Metrics::get().parseErrors.inc();
            conn.method = "-";
            conn.path = "-";
            respondNow(loop, conn,
                       HttpResponse::errorJson(conn.parser.errorStatus(),
                                               "bad_request",
                                               conn.parser.errorReason()),
                       /*forceClose=*/true);
            return;
        }
        dispatch(loop, conn); // Complete — leaves Reading state
    }
}

void HttpServer::Impl::dispatch(Loop& loop, Connection& conn) {
    HttpRequest request = std::move(conn.parser.request());
    conn.parser.reset();
    conn.state = Connection::St::Handling;
    if (conn.requestStart == Clock::time_point{}) {
        conn.requestStart = Clock::now();
    }
    conn.method = request.method;
    conn.path = std::string(request.path());
    // Trace identity: adopt the client's X-Lar-Trace-Id when it is sane,
    // mint otherwise. Set before any response path so even 404/405/503
    // answers echo an id the client can quote.
    const std::string* suppliedId = request.header("X-Lar-Trace-Id");
    request.traceId = suppliedId != nullptr && obs::validTraceId(*suppliedId)
                          ? *suppliedId
                          : obs::mintTraceId();
    conn.traceId = request.traceId;
    conn.closeAfterWrite =
        !request.keepAlive || draining.load(std::memory_order_acquire);

    // Exact routes first, then pattern routes in registration order. Either
    // kind contributes to the Allow set when the path matches but the
    // method does not.
    const Handler* exact = nullptr;
    const ParamHandler* pattern = nullptr;
    RouteParams params;
    std::string allow;
    bool pathKnown = false;
    const auto appendAllow = [&allow](const auto& methods) {
        for (const auto& [m, h] : methods) {
            (void)h;
            if (!allow.empty()) allow += ", ";
            allow += m;
        }
    };

    const auto pathIt = routes.find(conn.path);
    if (pathIt != routes.end()) {
        pathKnown = true;
        const auto methodIt = pathIt->second.find(request.method);
        if (methodIt != pathIt->second.end()) {
            exact = &methodIt->second;
        } else {
            appendAllow(pathIt->second);
        }
    }
    if (exact == nullptr && !patternRoutes.empty()) {
        const std::vector<std::string> segments =
            splitPathSegments(conn.path);
        for (const PatternRoute& candidate : patternRoutes) {
            RouteParams captured;
            if (!matchSegments(candidate.segments, segments, captured)) {
                continue;
            }
            pathKnown = true;
            const auto methodIt = candidate.methods.find(request.method);
            if (methodIt != candidate.methods.end()) {
                pattern = &methodIt->second;
                params = std::move(captured);
                break;
            }
            appendAllow(candidate.methods);
        }
    }
    if (exact == nullptr && pattern == nullptr) {
        if (!pathKnown) {
            respondNow(loop, conn,
                       HttpResponse::errorJson(404, "not_found",
                                               "no such endpoint: " +
                                                   conn.path),
                       false);
            return;
        }
        HttpResponse resp = HttpResponse::errorJson(
            405, "method_not_allowed",
            request.method + " not supported on " + conn.path);
        resp.extraHeaders.push_back({"Allow", std::move(allow)});
        respondNow(loop, conn, std::move(resp), false);
        return;
    }

    // Backpressure: the handler pool is bounded; past the inflight cap we
    // answer 503 from the event loop without queueing anything.
    std::size_t cur = inflight.load(std::memory_order_acquire);
    while (true) {
        if (cur >= opts.maxInflight) {
            Metrics::get().sheds.inc();
            HttpResponse resp = HttpResponse::errorJson(
                503, "overloaded", "server at capacity; retry shortly");
            resp.extraHeaders.push_back({"Retry-After", "1"});
            respondNow(loop, conn, std::move(resp), false);
            return;
        }
        if (inflight.compare_exchange_weak(cur, cur + 1,
                                           std::memory_order_acq_rel)) {
            break;
        }
    }

    // Bind the chosen handler (plus any captured params) into a plain
    // Handler; the pointed-to handlers live in the route tables, which are
    // immutable after start().
    Handler bound;
    if (exact != nullptr) {
        bound = [exact](const HttpRequest& r) { return (*exact)(r); };
    } else {
        bound = [pattern, params = std::move(params)](const HttpRequest& r) {
            return (*pattern)(r, params);
        };
    }
    Loop* loopPtr = &loop;
    const std::uint64_t connId = conn.id;
    (void)pool->submit([this, bound = std::move(bound), loopPtr, connId,
                        request = std::move(request)]() mutable {
        HttpResponse response;
        try {
            // Every log line the handler (and the reasoning stack below it)
            // emits on this thread carries the request's trace id.
            const util::ScopedLogTraceId logScope(request.traceId);
            response = bound(request);
        } catch (const std::exception& e) {
            response = HttpResponse::errorJson(500, "internal", e.what());
        } catch (...) {
            response = HttpResponse::errorJson(500, "internal",
                                               "unknown handler error");
        }
        inflight.fetch_sub(1, std::memory_order_acq_rel);
        {
            const std::lock_guard<std::mutex> lock(loopPtr->completionMutex);
            loopPtr->completions.push_back(
                Completion{connId, std::move(response)});
        }
        wake(*loopPtr);
    });
}

void HttpServer::Impl::drainCompletions(Loop& loop) {
    std::vector<Completion> ready;
    {
        const std::lock_guard<std::mutex> lock(loop.completionMutex);
        ready.swap(loop.completions);
    }
    for (Completion& completion : ready) {
        const auto it = loop.conns.find(completion.connId);
        if (it == loop.conns.end()) continue; // connection died meanwhile
        Connection& conn = *it->second;
        if (conn.state != Connection::St::Handling) continue;
        queueResponse(loop, conn, std::move(completion.response));
    }
}

void HttpServer::Impl::respondNow(Loop& loop, Connection& conn,
                                  HttpResponse response, bool forceClose) {
    if (forceClose) conn.closeAfterWrite = true;
    if (conn.state == Connection::St::Reading) {
        conn.state = Connection::St::Handling; // direct response, no handler
    }
    queueResponse(loop, conn, std::move(response));
}

void HttpServer::Impl::queueResponse(Loop& loop, Connection& conn,
                                     HttpResponse response) {
    // Responses during drain always close: the client must reconnect to a
    // live instance rather than hold a socket into a stopping one.
    if (draining.load(std::memory_order_acquire)) conn.closeAfterWrite = true;
    conn.status = response.status;
    // Echo the trace id so clients (and any proxy in between) can join their
    // view of the request to server logs and the flight recorder.
    if (!conn.traceId.empty())
        response.extraHeaders.push_back({"X-Lar-Trace-Id", conn.traceId});
    const std::size_t outBefore = conn.outBuf.size();
    serializeResponse(response, !conn.closeAfterWrite, conn.outBuf);
    conn.responseBytes = conn.outBuf.size() - outBefore;
    conn.state = Connection::St::Writing;
    conn.writeStart = Clock::now();
    writeSome(loop, conn);
}

void HttpServer::Impl::writeSome(Loop& loop, Connection& conn) {
    while (conn.outPending()) {
        if (faultFires(kSiteWrite)) { // injected EPIPE/ECONNRESET mid-write
            NetMetrics::get().faultsInjected.inc();
            NetMetrics::get().resets.inc();
            closeConn(loop, conn);
            return;
        }
        std::size_t len = conn.outBuf.size() - conn.outOff;
        bool partial = false;
        if (len > 1 && faultFires(kSiteWritePartial)) { // 1-byte partial write
            NetMetrics::get().faultsInjected.inc();
            len = 1;
            partial = true;
        }
        const ssize_t n = ::send(conn.fd, conn.outBuf.data() + conn.outOff,
                                 len, MSG_NOSIGNAL);
        if (n > 0) {
            Metrics::get().bytesWritten.inc(static_cast<std::uint64_t>(n));
            conn.outOff += static_cast<std::size_t>(n);
            conn.lastActivity = Clock::now();
            if (partial) {
                // Resume through EPOLLOUT like a genuine partial write, so
                // the injected fault exercises the real resumption path.
                updateEvents(loop, conn);
                return;
            }
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            updateEvents(loop, conn);
            return;
        }
        NetMetrics::get().resets.inc();
        closeConn(loop, conn); // EPIPE/ECONNRESET/...
        return;
    }
    conn.outBuf.clear();
    conn.outOff = 0;
    if (conn.state == Connection::St::Writing) {
        finishResponse(loop, conn);
    } else {
        updateEvents(loop, conn); // flushed a 100-continue while still Reading
    }
}

void HttpServer::Impl::finishResponse(Loop& loop, Connection& conn) {
    const Clock::time_point now = Clock::now();
    const double ms = conn.requestStart == Clock::time_point{}
                          ? 0.0
                          : msSince(conn.requestStart, now);
    Metrics::requests(conn.status).inc();
    Metrics::get().latencyMs.observe(ms);
    if (opts.accessLog) {
        util::logLineJson(util::LogLevel::Info, "http_request",
                          {{"remote", conn.peer},
                           {"method", conn.method},
                           {"path", conn.path},
                           {"status", conn.status},
                           {"bytes", static_cast<std::uint64_t>(
                                         conn.responseBytes)},
                           {"ms", ms},
                           {"trace_id", conn.traceId}});
    }
    if (conn.closeAfterWrite) {
        closeConn(loop, conn);
        return;
    }
    conn.state = Connection::St::Reading;
    conn.continueSent = false;
    conn.requestStart = Clock::time_point{};
    conn.writeStart = Clock::time_point{};
    conn.method.clear();
    conn.path.clear();
    conn.traceId.clear();
    conn.responseBytes = 0;
    conn.status = 0;
    conn.lastActivity = now;
    processInput(loop, conn); // pipelined next request may already be buffered
    if (loop.conns.find(conn.id) != loop.conns.end()) updateEvents(loop, conn);
}

void HttpServer::Impl::updateEvents(Loop& loop, Connection& conn) {
    // The mask mirrors the connection state: EPOLLIN only while Reading (a
    // level-triggered EPOLLIN during Handling would spin the loop), EPOLLOUT
    // only while bytes wait in outBuf.
    std::uint32_t want = 0;
    if (conn.state == Connection::St::Reading) want |= EPOLLIN;
    if (conn.outPending()) want |= EPOLLOUT;
    if (want == conn.events) return;
    epoll_event ev{};
    ev.events = want;
    ev.data.u64 = conn.id;
    ::epoll_ctl(loop.epfd, EPOLL_CTL_MOD, conn.fd, &ev);
    conn.events = want;
}

void HttpServer::Impl::sweep(Loop& loop) {
    const Clock::time_point now = Clock::now();
    const bool drainingNow = draining.load(std::memory_order_acquire);
    std::vector<std::uint64_t> doomed;
    std::vector<std::uint64_t> slowRequests; // answered 408, then closed
    for (auto& [id, connPtr] : loop.conns) {
        (void)id;
        Connection& conn = *connPtr;
        const double idleMs = msSince(conn.lastActivity, now);
        if (opts.maxConnLifetimeMs > 0 &&
            msSince(conn.acceptedAt, now) >=
                static_cast<double>(opts.maxConnLifetimeMs)) {
            NetMetrics::get().lifetimeCloses.inc();
            doomed.push_back(conn.id);
            continue;
        }
        if (conn.outPending()) {
            // Total-write-time kill beats the idle check: a reader draining
            // one byte per sweep keeps idleMs near zero forever.
            if (opts.responseWriteTimeoutMs > 0 &&
                conn.writeStart != Clock::time_point{} &&
                msSince(conn.writeStart, now) >=
                    static_cast<double>(opts.responseWriteTimeoutMs)) {
                NetMetrics::get().writeProgressTimeouts.inc();
                doomed.push_back(conn.id);
                continue;
            }
            if (idleMs >= static_cast<double>(opts.writeIdleTimeoutMs)) {
                doomed.push_back(conn.id);
                continue;
            }
        }
        if (conn.state == Connection::St::Reading && !conn.outPending()) {
            // Total-receive-time kill: a slowloris dripping header bytes
            // refreshes lastActivity on every drip, so only the clock that
            // started at the request's first byte can catch it.
            if (opts.requestReadTimeoutMs > 0 && conn.parser.begun() &&
                conn.requestStart != Clock::time_point{} &&
                msSince(conn.requestStart, now) >=
                    static_cast<double>(opts.requestReadTimeoutMs)) {
                NetMetrics::get().readProgressTimeouts.inc();
                slowRequests.push_back(conn.id);
                continue;
            }
            if (drainingNow && !conn.parser.begun() &&
                idleMs >= static_cast<double>(opts.drainIdleCloseMs)) {
                doomed.push_back(conn.id);
            } else if (idleMs >= static_cast<double>(opts.readIdleTimeoutMs)) {
                doomed.push_back(conn.id);
            }
        }
    }
    for (const std::uint64_t id : doomed) {
        const auto it = loop.conns.find(id);
        if (it != loop.conns.end()) closeConn(loop, *it->second);
    }
    for (const std::uint64_t id : slowRequests) {
        const auto it = loop.conns.find(id);
        if (it == loop.conns.end()) continue;
        Connection& conn = *it->second;
        conn.method = conn.method.empty() ? "-" : conn.method;
        conn.path = conn.path.empty() ? "-" : conn.path;
        respondNow(loop, conn,
                   HttpResponse::errorJson(408, "request_timeout",
                                           "request not received within " +
                                               std::to_string(
                                                   opts.requestReadTimeoutMs) +
                                               " ms"),
                   /*forceClose=*/true);
    }
}

void HttpServer::Impl::closeConn(Loop& loop, Connection& conn) {
    ::epoll_ctl(loop.epfd, EPOLL_CTL_DEL, conn.fd, nullptr);
    ::close(conn.fd);
    Metrics::get().active.add(-1.0);
    totalConns.fetch_sub(1, std::memory_order_acq_rel);
    loop.conns.erase(conn.id); // destroys conn — must be last
}

// --------------------------------------------------------------------------
// Public surface
// --------------------------------------------------------------------------

HttpServer::HttpServer(const ServerOptions& options)
    : impl_(std::make_unique<Impl>(options)) {}

HttpServer::~HttpServer() { stop(); }

void HttpServer::route(std::string method, std::string path, Handler handler) {
    expects(!impl_->running.load(), "HttpServer::route: server already started");
    impl_->routes[std::move(path)][std::move(method)] = std::move(handler);
}

void HttpServer::route(std::string method, std::string pattern,
                       ParamHandler handler) {
    expects(!impl_->running.load(), "HttpServer::route: server already started");
    std::vector<std::string> segments = splitPathSegments(pattern);
    for (Impl::PatternRoute& existing : impl_->patternRoutes) {
        if (existing.segments == segments) {
            existing.methods[std::move(method)] = std::move(handler);
            return;
        }
    }
    Impl::PatternRoute fresh;
    fresh.segments = std::move(segments);
    fresh.methods[std::move(method)] = std::move(handler);
    impl_->patternRoutes.push_back(std::move(fresh));
}

void HttpServer::setDrainHooks(std::function<void()> onDrainBegin,
                               std::function<void()> onGraceExpired) {
    impl_->onDrainBegin = std::move(onDrainBegin);
    impl_->onGraceExpired = std::move(onGraceExpired);
}

void HttpServer::start() { impl_->start(); }

std::uint16_t HttpServer::port() const { return impl_->boundPort; }

void HttpServer::beginDrain() { impl_->beginDrain(); }

bool HttpServer::draining() const {
    return impl_->draining.load(std::memory_order_acquire);
}

void HttpServer::drainAndStop(int graceMs) { impl_->drainAndStop(graceMs); }

void HttpServer::stop() { impl_->stop(); }

std::size_t HttpServer::activeConnections() const {
    return impl_->totalConns.load(std::memory_order_acquire);
}

} // namespace lar::net
