#!/bin/sh
# Repository verification: the tier-1 suite plus a sanitizer leg.
#
#   scripts/verify.sh            run all legs
#   scripts/verify.sh tier1      plain build + ctest only
#   scripts/verify.sh sanitize   ASan/UBSan build + ctest only
#   scripts/verify.sh portfolio  TSan portfolio suite only
#   scripts/verify.sh solver     clause-arena + inprocessing path: solver
#                                and simplify suites + the portfolio/
#                                warm-start/inprocessing verdict-agreement
#                                fuzz oracles under ASan/UBSan, then the
#                                bench_propagation >=1.2x throughput gate
#                                and the bench_solver_ablation gate
#   scripts/verify.sh server     HTTP server: unit + TSan + live smoke + bench
#   scripts/verify.sh session    sessions: unit + TSan + warm-start oracle +
#                                live session smoke + interactive bench
#   scripts/verify.sh obs        observability: flight-recorder unit + TSan +
#                                live /v1/debug + /statusz smoke
#   scripts/verify.sh chaos      resilience: fault-injection + chaos suites,
#                                then the bench_chaos availability gate
#                                (5% socket faults + hostile clients: >=99%
#                                success with retries, no crash, no leaked
#                                connection, p99 recovers after disarm)
#
# The tier-1 leg uses the regular build/ tree (shared with development, so
# incremental rebuilds are cheap). The sanitize leg configures a separate
# build-asan/ tree with -DLAR_SANITIZE=address,undefined; the per-test TSan
# variants are skipped there automatically (tests/CMakeLists.txt) because
# the whole tree is already instrumented.
set -eu

root=$(cd "$(dirname "$0")/.." && pwd)
jobs=${VERIFY_JOBS:-2}
leg=${1:-all}

run_tier1() {
    echo "== tier-1: plain build + ctest =="
    cmake -B "$root/build" -S "$root"
    cmake --build "$root/build" -j"$jobs"
    (cd "$root/build" && ctest --output-on-failure -j"$jobs")
}

run_portfolio() {
    # The portfolio backend and its clause exchange are the most aggressively
    # lock-free code in the tree; run their suite under ThreadSanitizer
    # (built in the plain tree — the TSan test variants are per-executable).
    echo "== portfolio: TSan clause-sharing/race suite =="
    cmake -B "$root/build" -S "$root"
    cmake --build "$root/build" -j"$jobs" --target portfolio_test_tsan
    (cd "$root/build" && ctest --output-on-failure -R '^portfolio_tsan$')
}

run_solver() {
    # The clause-arena redesign and the inprocessing pipeline end to end.
    # Arena relocation, watcher forwarding, and in-place clause rewriting
    # (subsumption/vivification/elimination) are exactly the code where a
    # stale ClauseRef turns into silent memory corruption, so the solver
    # unit suite, the inprocessing verdict-agreement fuzz oracles, and the
    # portfolio/warm-start oracles run under ASan/UBSan; then
    # bench_propagation (plain tree) must show the arena + binary-graph
    # layout beating the old pointer-chasing layout by >=1.2x median
    # props/sec, and bench_solver_ablation --smoke must show inprocessing
    # on/off agreeing on every verdict.
    echo "== solver: arena suite + fuzz oracles under ASan/UBSan + gates =="
    cmake -B "$root/build-asan" -S "$root" -DLAR_SANITIZE=address,undefined
    cmake --build "$root/build-asan" -j"$jobs" --target \
        sat_test portfolio_test warmstart_test simplify_test \
        bench_solver_ablation
    (cd "$root/build-asan" && ASAN_OPTIONS=detect_leaks=0 \
        ctest --output-on-failure -R \
        '^(Lit\.|Solver\.|Dimacs\.|SolverSnapshot\.|Simplify\.|SimplifyOracle\.)|SolverConfigTest|PortfolioVerdictAgreementTest|ClauseImportSoundnessTest|WarmStartOracle')

    echo "-- bench: solver ablation smoke under ASan/UBSan --"
    (cd "$root/build-asan" && ASAN_OPTIONS=detect_leaks=0 \
        ./bench/bench_solver_ablation --smoke)
    grep -q '"pass":true' "$root/build-asan/BENCH_solver_ablation.json"

    echo "-- bench: propagation throughput gate --"
    cmake -B "$root/build" -S "$root"
    cmake --build "$root/build" -j"$jobs" --target bench_propagation
    (cd "$root/build" && ./bench/bench_propagation)
    grep -q '"pass":true' "$root/build/BENCH_propagation.json"

    echo "-- bench: inprocessing ablation gate --"
    cmake --build "$root/build" -j"$jobs" --target bench_solver_ablation
    (cd "$root/build" && ./bench/bench_solver_ablation)
    grep -q '"pass":true' "$root/build/BENCH_solver_ablation.json"
}

run_server() {
    # The network subsystem end to end: parser/server unit suites, the same
    # suites under ThreadSanitizer, a live larserved round-trip driven by
    # larctl --url, and the throughput/overload/drain bench with its gates.
    echo "== server: HTTP unit + TSan + live smoke + bench =="
    cmake -B "$root/build" -S "$root"
    cmake --build "$root/build" -j"$jobs" --target \
        http_test server_test server_test_tsan larserved larctl \
        bench_server_throughput
    (cd "$root/build" && ctest --output-on-failure -R \
        '^(HttpParser|HttpServer|HttpClient)|^server_tsan$')

    echo "-- live smoke: larserved + larctl --url --"
    smoke="$root/build/server_smoke"
    rm -rf "$smoke" && mkdir -p "$smoke"
    "$root/build/tools/larserved" --port 0 --port-file "$smoke/port" \
        --drain-grace-ms 2000 &
    served_pid=$!
    for _ in $(seq 1 100); do
        [ -s "$smoke/port" ] && break
        sleep 0.1
    done
    [ -s "$smoke/port" ] || { echo "larserved never wrote its port"; exit 1; }
    url="http://127.0.0.1:$(cat "$smoke/port")"
    echo '{"hardware":{"server":{"count":60},"switch":{"count":8},"nic":{"count":60}},"objective_priority":["latency"]}' \
        > "$smoke/prob.json"
    "$root/build/tools/larctl" --url "$url" feasible "$smoke/prob.json" \
        > "$smoke/feasible.json"
    grep -q '"feasible"' "$smoke/feasible.json"
    "$root/build/tools/larctl" --url "$url" metrics | grep -q lar_http_requests_total
    kill -TERM "$served_pid"
    wait "$served_pid" || { echo "larserved did not drain cleanly"; exit 1; }

    echo "-- bench: throughput / overload / drain gates --"
    (cd "$root/build" && ./bench/bench_server_throughput)
}

run_session() {
    # The stateful what-if path end to end: SessionManager lifecycle/race
    # suite (plain and under ThreadSanitizer), the warm-start soundness
    # oracle, a live create/ask/close round-trip through larserved + larctl
    # session mode, and the interactive bench with its >=10x speedup gate.
    echo "== session: lifecycle + TSan + warm-start oracle + smoke + bench =="
    cmake -B "$root/build" -S "$root"
    cmake --build "$root/build" -j"$jobs" --target \
        session_test session_test_tsan warmstart_test larserved larctl \
        bench_session_interactive
    (cd "$root/build" && ctest --output-on-failure -R \
        '^SessionTest|^session_tsan$|^(SolverSnapshot|WarmStartOracle|WarmStartService)')

    echo "-- live smoke: larserved session workflow via larctl --"
    smoke="$root/build/session_smoke"
    rm -rf "$smoke" && mkdir -p "$smoke"
    "$root/build/tools/larserved" --port 0 --port-file "$smoke/port" \
        --drain-grace-ms 2000 &
    served_pid=$!
    for _ in $(seq 1 100); do
        [ -s "$smoke/port" ] && break
        sleep 0.1
    done
    [ -s "$smoke/port" ] || { echo "larserved never wrote its port"; exit 1; }
    url="http://127.0.0.1:$(cat "$smoke/port")"
    echo '{"hardware":{"server":{"count":60},"switch":{"count":8},"nic":{"count":60}},"objective_priority":["latency"]}' \
        > "$smoke/prob.json"
    echo '[{}, {"systems":{"Sonata":true}}, {"options":{}}]' \
        > "$smoke/script.json"
    "$root/build/tools/larctl" --url "$url" session run \
        "$smoke/prob.json" "$smoke/script.json" > "$smoke/session.json"
    grep -q '"verdict"' "$smoke/session.json"
    "$root/build/tools/larctl" --url "$url" metrics \
        | grep -q lar_session_created_total
    kill -TERM "$served_pid"
    wait "$served_pid" || { echo "larserved did not drain cleanly"; exit 1; }

    echo "-- bench: interactive session speedup gate --"
    (cd "$root/build" && ./bench/bench_session_interactive)
}

run_obs() {
    # The observability surface end to end: the flight-recorder retention /
    # in-flight-registry suite (plain and under ThreadSanitizer, since the
    # recorder is written by solver workers while debug endpoints scan it),
    # then a live larserved smoke: a traced query submitted with a
    # client-supplied X-Lar-Trace-Id must be retrievable by that exact ID
    # from /v1/debug/traces/{id}, and the introspection endpoints
    # (/v1/debug/*, /statusz, /version) must all answer.
    echo "== obs: flight recorder unit + TSan + live introspection smoke =="
    cmake -B "$root/build" -S "$root"
    cmake --build "$root/build" -j"$jobs" --target \
        flight_recorder_test flight_recorder_test_tsan larserved larctl
    (cd "$root/build" && ctest --output-on-failure -R \
        '^FlightRecorder|^flight_recorder_tsan$')

    echo "-- live smoke: trace-id round trip + debug endpoints --"
    smoke="$root/build/obs_smoke"
    rm -rf "$smoke" && mkdir -p "$smoke"
    "$root/build/tools/larserved" --port 0 --port-file "$smoke/port" \
        --drain-grace-ms 2000 &
    served_pid=$!
    for _ in $(seq 1 100); do
        [ -s "$smoke/port" ] && break
        sleep 0.1
    done
    [ -s "$smoke/port" ] || { echo "larserved never wrote its port"; exit 1; }
    url="http://127.0.0.1:$(cat "$smoke/port")"
    echo '{"hardware":{"server":{"count":60},"switch":{"count":8},"nic":{"count":60}},"objective_priority":["latency"]}' \
        > "$smoke/prob.json"
    tid="verifysh-trace-0001"
    "$root/build/tools/larctl" --url "$url" --trace-id "$tid" \
        feasible "$smoke/prob.json" > "$smoke/feasible.json"
    grep -q "\"trace_id\": \"$tid\"" "$smoke/feasible.json"
    "$root/build/tools/larctl" --url "$url" trace "$tid" > "$smoke/trace.json"
    grep -q "\"trace_id\": \"$tid\"" "$smoke/trace.json"
    grep -q '"spans"' "$smoke/trace.json"
    "$root/build/tools/larctl" --url "$url" trace "$tid" --chrome \
        > "$smoke/trace_chrome.json"
    grep -q '"traceEvents"' "$smoke/trace_chrome.json"
    "$root/build/tools/larctl" --url "$url" top > "$smoke/statusz.txt"
    grep -q 'flight recorder' "$smoke/statusz.txt"
    "$root/build/tools/larctl" --url "$url" version > "$smoke/version.json"
    grep -q '"trace_schema"' "$smoke/version.json"
    # The chaos layer's metric family must be registered (at zero) from
    # server start, not only after the first fault/timeout event.
    "$root/build/tools/larctl" --url "$url" metrics > "$smoke/metrics.txt"
    grep -q 'lar_net_resets_total' "$smoke/metrics.txt"
    grep -q 'lar_net_read_progress_timeouts_total' "$smoke/metrics.txt"
    grep -q 'lar_net_write_progress_timeouts_total' "$smoke/metrics.txt"
    kill -TERM "$served_pid"
    wait "$served_pid" || { echo "larserved did not drain cleanly"; exit 1; }
}

run_chaos() {
    # The network chaos layer end to end: the FaultInjector primitives, the
    # chaos suite (retry/backoff/hedging against armed net.* sites, the
    # re-dial deadline regression, Retry-After on shed, the fleet survival
    # gate), the slow-client hardening cases from the server suite, then
    # the full bench_chaos availability gate. bench_chaos exits nonzero on
    # a crash, a sub-99% success rate under chaos, or a leaked connection.
    echo "== chaos: fault injection + resilience suites + availability gate =="
    cmake -B "$root/build" -S "$root"
    cmake --build "$root/build" -j"$jobs" --target \
        chaos_test server_test service_fault_test bench_chaos
    (cd "$root/build" && ctest --output-on-failure -R \
        '^ChaosTest|^FaultInjector|^HttpServerTest\.(Slowloris|StalledReader)')

    echo "-- bench: chaos availability gate --"
    (cd "$root/build" && ./bench/bench_chaos)
    grep -q '"pass":true' "$root/build/BENCH_chaos.json"
}

run_sanitize() {
    echo "== sanitize: LAR_SANITIZE=address,undefined build + ctest =="
    cmake -B "$root/build-asan" -S "$root" -DLAR_SANITIZE=address,undefined
    cmake --build "$root/build-asan" -j"$jobs"
    # detect_leaks=0: LeakSanitizer needs ptrace, which most CI containers
    # deny; ASan's use-after-free / overflow checks are the point here.
    (cd "$root/build-asan" &&
         ASAN_OPTIONS=detect_leaks=0 ctest --output-on-failure -j"$jobs")
}

case "$leg" in
    tier1) run_tier1 ;;
    sanitize) run_sanitize ;;
    portfolio) run_portfolio ;;
    solver) run_solver ;;
    server) run_server ;;
    session) run_session ;;
    obs) run_obs ;;
    chaos) run_chaos ;;
    all)
        run_tier1
        run_portfolio
        run_solver
        run_server
        run_session
        run_obs
        run_chaos
        run_sanitize
        ;;
    *)
        echo "usage: scripts/verify.sh [tier1|sanitize|portfolio|solver|server|session|obs|chaos|all]" >&2
        exit 2
        ;;
esac
echo "verify: all requested legs passed"
