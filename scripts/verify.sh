#!/bin/sh
# Repository verification: the tier-1 suite plus a sanitizer leg.
#
#   scripts/verify.sh            run all legs
#   scripts/verify.sh tier1      plain build + ctest only
#   scripts/verify.sh sanitize   ASan/UBSan build + ctest only
#   scripts/verify.sh portfolio  TSan portfolio suite only
#
# The tier-1 leg uses the regular build/ tree (shared with development, so
# incremental rebuilds are cheap). The sanitize leg configures a separate
# build-asan/ tree with -DLAR_SANITIZE=address,undefined; the per-test TSan
# variants are skipped there automatically (tests/CMakeLists.txt) because
# the whole tree is already instrumented.
set -eu

root=$(cd "$(dirname "$0")/.." && pwd)
jobs=${VERIFY_JOBS:-2}
leg=${1:-all}

run_tier1() {
    echo "== tier-1: plain build + ctest =="
    cmake -B "$root/build" -S "$root"
    cmake --build "$root/build" -j"$jobs"
    (cd "$root/build" && ctest --output-on-failure -j"$jobs")
}

run_portfolio() {
    # The portfolio backend and its clause exchange are the most aggressively
    # lock-free code in the tree; run their suite under ThreadSanitizer
    # (built in the plain tree — the TSan test variants are per-executable).
    echo "== portfolio: TSan clause-sharing/race suite =="
    cmake -B "$root/build" -S "$root"
    cmake --build "$root/build" -j"$jobs" --target portfolio_test_tsan
    (cd "$root/build" && ctest --output-on-failure -R '^portfolio_tsan$')
}

run_sanitize() {
    echo "== sanitize: LAR_SANITIZE=address,undefined build + ctest =="
    cmake -B "$root/build-asan" -S "$root" -DLAR_SANITIZE=address,undefined
    cmake --build "$root/build-asan" -j"$jobs"
    # detect_leaks=0: LeakSanitizer needs ptrace, which most CI containers
    # deny; ASan's use-after-free / overflow checks are the point here.
    (cd "$root/build-asan" &&
         ASAN_OPTIONS=detect_leaks=0 ctest --output-on-failure -j"$jobs")
}

case "$leg" in
    tier1) run_tier1 ;;
    sanitize) run_sanitize ;;
    portfolio) run_portfolio ;;
    all)
        run_tier1
        run_portfolio
        run_sanitize
        ;;
    *)
        echo "usage: scripts/verify.sh [tier1|sanitize|portfolio|all]" >&2
        exit 2
        ;;
esac
echo "verify: all requested legs passed"
