// CHAOS1 — availability under injected network faults and hostile clients.
//
// Three phases against one in-process net::HttpServer on loopback, driven
// through the resilient net::HttpClient (retries + backoff):
//
//  1. Baseline: 4 well-behaved clients measure a clean p99.
//  2. Chaos: net.read / net.write / net.connect armed at 5% each, plus a
//     misbehaving fleet (slowloris header drippers and stalled readers who
//     never drain a large response) hammering the same server. Gates:
//     >= 99% of the retried requests succeed and the server stays healthy.
//  3. Recovery: faults disarmed, the same load again. Gates: every request
//     succeeds, p99 back within 2x the baseline, and the connection table
//     drains to zero — no leaked connections from either chaos or the
//     misbehaving fleet.
//
// Surviving all three without a crash is the availability contract the
// chaos layer exists to enforce. Writes machine-readable results to
// BENCH_chaos.json (override the path with argv[1]).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "benchutil.hpp"
#include "json/value.hpp"
#include "json/write.hpp"
#include "net/fault.hpp"
#include "net/http_client.hpp"
#include "net/server.hpp"
#include "util/error.hpp"
#include "util/fault_injector.hpp"
#include "util/stopwatch.hpp"

using namespace lar;

namespace {

double percentile(std::vector<double> samples, double q) {
    if (samples.empty()) return 0.0;
    std::sort(samples.begin(), samples.end());
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(samples.size() - 1) + 0.5);
    return samples[std::min(idx, samples.size() - 1)];
}

struct LoadResult {
    long long ok = 0;
    long long failed = 0; ///< non-200 or exhausted retries (thrown)
    double p99Ms = 0.0;
    std::uint64_t retries = 0;
    std::uint64_t redials = 0;
};

/// `threads` resilient clients, `perThread` GET /ping each; every client
/// retries up to 5 attempts with small jittered backoff.
LoadResult runLoad(std::uint16_t port, int threads, int perThread) {
    std::mutex mergeMutex;
    std::vector<double> latencies;
    std::atomic<long long> ok{0}, failed{0};
    std::atomic<std::uint64_t> retries{0}, redials{0};

    std::vector<std::thread> clients;
    clients.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
        clients.emplace_back([&, t] {
            std::vector<double> local;
            local.reserve(static_cast<std::size_t>(perThread));
            net::HttpClient client("127.0.0.1", port, /*timeoutMs=*/10'000);
            net::RetryOptions retry;
            retry.maxAttempts = 5;
            retry.baseBackoffMs = 2;
            retry.maxBackoffMs = 50;
            retry.seed = static_cast<std::uint64_t>(t) + 1;
            client.setRetryOptions(retry);
            for (int i = 0; i < perThread; ++i) {
                util::Stopwatch timer;
                try {
                    if (client.get("/ping").status == 200)
                        ok.fetch_add(1);
                    else
                        failed.fetch_add(1);
                } catch (const Error&) {
                    failed.fetch_add(1);
                }
                local.push_back(timer.millis());
            }
            retries.fetch_add(client.stats().retries);
            redials.fetch_add(client.stats().redials);
            const std::lock_guard<std::mutex> lock(mergeMutex);
            latencies.insert(latencies.end(), local.begin(), local.end());
        });
    }
    for (std::thread& t : clients) t.join();

    LoadResult r;
    r.ok = ok.load();
    r.failed = failed.load();
    r.p99Ms = percentile(latencies, 0.99);
    r.retries = retries.load();
    r.redials = redials.load();
    return r;
}

int rawDial(std::uint16_t port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

/// Drips request headers one byte at a time, reconnecting whenever the
/// server (correctly) kills the connection. Classic slowloris.
void slowlorisLoop(std::uint16_t port, const std::atomic<bool>& stop,
                   std::atomic<long long>& kills) {
    const std::string request = "GET /ping HTTP/1.1\r\nHost: x\r\n\r\n";
    while (!stop.load()) {
        const int fd = rawDial(port);
        if (fd < 0) {
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
            continue;
        }
        bool killed = false;
        for (std::size_t i = 0; i < request.size() && !stop.load(); ++i) {
            if (::send(fd, request.data() + i, 1, MSG_NOSIGNAL) != 1) {
                killed = true;
                break;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(40));
        }
        ::close(fd);
        if (killed) kills.fetch_add(1);
    }
}

/// Requests a large response and never reads it: the server's write
/// progress timeout must reap the connection.
void stalledReaderLoop(std::uint16_t port, const std::atomic<bool>& stop,
                       std::atomic<long long>& kills) {
    const std::string request =
        "GET /big HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n";
    while (!stop.load()) {
        const int fd = rawDial(port);
        if (fd < 0) {
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
            continue;
        }
        (void)::send(fd, request.data(), request.size(), MSG_NOSIGNAL);
        // Never recv. Wait for the server to give up on us (EPIPE/RST on a
        // probe write is the signal), bounded by a local clock.
        util::Stopwatch waited;
        while (!stop.load() && waited.millis() < 3'000.0) {
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
            char probe = 0;
            if (::send(fd, &probe, 0, MSG_NOSIGNAL) < 0) break;
            // A zero recv with MSG_PEEK|MSG_DONTWAIT means the peer closed.
            const ssize_t n = ::recv(fd, &probe, 1, MSG_PEEK | MSG_DONTWAIT);
            if (n == 0) break;
            if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) break;
        }
        if (waited.millis() < 3'000.0) kills.fetch_add(1);
        ::close(fd);
    }
}

} // namespace

int main(int argc, char** argv) {
    const std::string outPath = argc > 1 ? argv[1] : "BENCH_chaos.json";
    json::Value report;
    util::FaultInjector& injector = util::FaultInjector::global();
    injector.reset();

    net::ServerOptions options;
    options.bindAddress = "127.0.0.1";
    options.port = 0;
    options.accessLog = false;
    // Tight self-protection windows so the misbehaving fleet is reaped
    // many times within the chaos phase.
    options.requestReadTimeoutMs = 500;
    options.responseWriteTimeoutMs = 500;
    net::HttpServer server(options);
    server.route("GET", "/ping", [](const net::HttpRequest&) {
        return net::HttpResponse::text(200, "pong");
    });
    server.route("GET", "/healthz", [](const net::HttpRequest&) {
        return net::HttpResponse::text(200, "ok");
    });
    const std::string bigBody(4 * 1024 * 1024, 'b');
    server.route("GET", "/big", [&bigBody](const net::HttpRequest&) {
        return net::HttpResponse::text(200, bigBody);
    });
    server.start();
    const std::uint16_t port = server.port();

    // ---- 1. baseline (no faults) ---------------------------------------
    bench::printHeader("baseline (4 clients, no faults)");
    (void)runLoad(port, 2, 100); // warm-up
    const LoadResult base = runLoad(port, 4, 400);
    bench::printRow({"metric", "value"});
    bench::printRule();
    bench::printRow({"ok", bench::num(base.ok)});
    bench::printRow({"failed", bench::num(base.failed)});
    bench::printRow({"p99", bench::ms(base.p99Ms)});
    report["baseline_ok"] = static_cast<std::int64_t>(base.ok);
    report["baseline_p99_ms"] = base.p99Ms;

    // ---- 2. chaos: 5% faults + misbehaving fleet -----------------------
    bench::printHeader(
        "chaos (net.read/net.write/net.connect at 5%, hostile clients)");
    injector.armProbability(net::kSiteRead, 0.05, 1001);
    injector.armProbability(net::kSiteWrite, 0.05, 1002);
    injector.armProbability(net::kSiteConnect, 0.05, 1003);
    std::atomic<bool> stop{false};
    std::atomic<long long> lorisKills{0}, readerKills{0};
    std::vector<std::thread> hostiles;
    for (int i = 0; i < 2; ++i) {
        hostiles.emplace_back(
            [&] { slowlorisLoop(port, stop, lorisKills); });
        hostiles.emplace_back(
            [&] { stalledReaderLoop(port, stop, readerKills); });
    }
    const LoadResult chaos = runLoad(port, 4, 400);
    stop.store(true);
    for (std::thread& t : hostiles) t.join();
    const std::uint64_t faultHits = injector.hits(net::kSiteRead) +
                                    injector.hits(net::kSiteWrite) +
                                    injector.hits(net::kSiteConnect);
    injector.reset();

    const long long chaosTotal = chaos.ok + chaos.failed;
    const double successRate =
        chaosTotal > 0
            ? static_cast<double>(chaos.ok) / static_cast<double>(chaosTotal)
            : 0.0;
    bench::printRow({"metric", "value"});
    bench::printRule();
    bench::printRow({"ok", bench::num(chaos.ok)});
    bench::printRow({"failed", bench::num(chaos.failed)});
    bench::printRow({"success rate",
                     std::to_string(100.0 * successRate).substr(0, 6) + "%"});
    bench::printRow({"client retries", bench::num(static_cast<long long>(
                                           chaos.retries))});
    bench::printRow({"client re-dials", bench::num(static_cast<long long>(
                                            chaos.redials))});
    bench::printRow({"p99 (under chaos)", bench::ms(chaos.p99Ms)});
    bench::printRow({"slowloris kills", bench::num(lorisKills.load())});
    bench::printRow({"stalled-reader kills", bench::num(readerKills.load())});
    const bool chaosOk = successRate >= 0.99 && faultHits > 0;
    report["chaos_ok"] = static_cast<std::int64_t>(chaos.ok);
    report["chaos_failed"] = static_cast<std::int64_t>(chaos.failed);
    report["chaos_success_rate"] = successRate;
    report["chaos_retries"] = static_cast<std::int64_t>(chaos.retries);
    report["chaos_slowloris_kills"] =
        static_cast<std::int64_t>(lorisKills.load());
    report["chaos_stalled_reader_kills"] =
        static_cast<std::int64_t>(readerKills.load());

    // ---- 3. recovery after disarm --------------------------------------
    bench::printHeader("recovery (faults disarmed)");
    const LoadResult recovered = runLoad(port, 4, 400);
    bool healthy = false;
    try {
        net::HttpClient probe("127.0.0.1", port);
        healthy = probe.get("/healthz").status == 200;
    } catch (const Error&) {
        healthy = false;
    }
    // Every load client has disconnected; the connection table must drain.
    util::Stopwatch drain;
    while (server.activeConnections() != 0 && drain.millis() < 5'000.0)
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const std::size_t leaked = server.activeConnections();
    server.stop();

    bench::printRow({"metric", "value"});
    bench::printRule();
    bench::printRow({"ok", bench::num(recovered.ok)});
    bench::printRow({"failed", bench::num(recovered.failed)});
    bench::printRow({"p99 (recovered)", bench::ms(recovered.p99Ms)});
    bench::printRow({"healthz after chaos", healthy ? "200" : "DOWN"});
    bench::printRow({"leaked connections", bench::num(static_cast<long long>(
                                               leaked))});
    // Sub-millisecond baselines make a pure ratio gate flaky; allow the
    // greater of 2x baseline and baseline + 1 ms.
    const double p99Budget = std::max(2.0 * base.p99Ms, base.p99Ms + 1.0);
    const bool recoveredOk = recovered.failed == 0 && healthy &&
                             leaked == 0 && recovered.p99Ms <= p99Budget;
    report["recovered_ok"] = static_cast<std::int64_t>(recovered.ok);
    report["recovered_p99_ms"] = recovered.p99Ms;
    report["leaked_connections"] = static_cast<std::int64_t>(leaked);

    // ---- verdict + machine-readable report -----------------------------
    const bool ok = base.failed == 0 && chaosOk && recoveredOk;
    report["pass"] = ok;
    if (std::FILE* f = std::fopen(outPath.c_str(), "w")) {
        const std::string text = json::write(report);
        std::fwrite(text.data(), 1, text.size(), f);
        std::fputc('\n', f);
        std::fclose(f);
        std::printf("\nwrote %s\n", outPath.c_str());
    } else {
        std::printf("\ncould not write %s\n", outPath.c_str());
        return EXIT_FAILURE;
    }
    std::printf("CHAOS1: %s\n",
                ok ? "survives 5% socket chaos and hostile clients, "
                     "recovers to baseline"
                   : "FAILED");
    if (base.failed != 0) std::printf("  gate: baseline had failures\n");
    if (!chaosOk)
        std::printf("  gate: %s\n", faultHits == 0
                                        ? "fault sites never consulted"
                                        : "success rate under chaos < 99%");
    if (!recoveredOk)
        std::printf("  gate: recovery failed (failed=%lld healthy=%d "
                    "leaked=%zu p99=%.2fms budget=%.2fms)\n",
                    recovered.failed, healthy ? 1 : 0, leaked,
                    recovered.p99Ms, p99Budget);
    return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
