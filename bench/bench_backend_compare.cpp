// ABL2 — compares the two solver backends behind the reasoning layer: the
// from-scratch CDCL stack vs the native Z3 API (the paper's substrate).
// Both must return the same verdicts and lexicographic costs; wall time is
// reported per query class.
#include <cstdio>
#include <cstdlib>

#include "benchutil.hpp"
#include "catalog/catalog.hpp"
#include "kb/objectives.hpp"
#include "reason/engine.hpp"
#include "util/stopwatch.hpp"

using namespace lar;

namespace {

reason::Problem caseStudy(const kb::KnowledgeBase& kb) {
    reason::Problem p = reason::makeDefaultProblem(kb);
    p.hardware[kb::HardwareClass::Server].count = 60;
    p.hardware[kb::HardwareClass::Switch].count = 8;
    p.hardware[kb::HardwareClass::Nic].count = 60;
    p.workloads = {catalog::makeInferenceWorkload()};
    p.objectivePriority = {kb::kObjLatency, kb::kObjHardwareCost,
                           kb::kObjMonitoring};
    p.requiredCapabilities = {catalog::kCapDetectQueueLength};
    return p;
}

struct QuerySpec {
    const char* name;
    reason::Problem problem;
    bool optimizeQuery; ///< else feasibility
};

} // namespace

int main() {
    if (!smt::haveZ3()) {
        std::printf("built without Z3 — nothing to compare\n");
        return EXIT_SUCCESS;
    }
    const kb::KnowledgeBase kb = catalog::buildKnowledgeBase();

    std::vector<QuerySpec> queries;
    queries.push_back({"feasibility (case study)", caseStudy(kb), false});
    queries.push_back({"optimize (case study)", caseStudy(kb), true});
    {
        reason::Problem infeasible = caseStudy(kb);
        infeasible.hardware[kb::HardwareClass::Switch].pinnedModel =
            "Cisco Catalyst 9500-40X";
        queries.push_back({"infeasible + core", std::move(infeasible), false});
    }
    {
        reason::Problem budget = caseStudy(kb);
        budget.maxHardwareCostUsd = 700000;
        queries.push_back({"optimize under budget", std::move(budget), true});
    }

    bench::printHeader("backend comparison: from-scratch CDCL vs native Z3");
    bench::printRow({"query", "cdcl", "z3", "agree"});
    bench::printRule();
    int failures = 0;
    for (const QuerySpec& q : queries) {
        double cdclMs = 0;
        double z3Ms = 0;
        bool agree = true;
        if (q.optimizeQuery) {
            util::Stopwatch t1;
            const auto a = reason::Engine(q.problem, reason::withBackend(smt::BackendKind::Cdcl)).optimize();
            cdclMs = t1.millis();
            util::Stopwatch t2;
            const auto b = reason::Engine(q.problem, reason::withBackend(smt::BackendKind::Z3)).optimize();
            z3Ms = t2.millis();
            agree = a.has_value() == b.has_value() &&
                    (!a.has_value() || a->objectiveCosts == b->objectiveCosts);
        } else {
            util::Stopwatch t1;
            const auto a =
                reason::Engine(q.problem, reason::withBackend(smt::BackendKind::Cdcl)).checkFeasible();
            cdclMs = t1.millis();
            util::Stopwatch t2;
            const auto b =
                reason::Engine(q.problem, reason::withBackend(smt::BackendKind::Z3)).checkFeasible();
            z3Ms = t2.millis();
            agree = a.feasible == b.feasible &&
                    (a.feasible || (!a.conflictingRules.empty() &&
                                    !b.conflictingRules.empty()));
        }
        bench::printRow({q.name, bench::ms(cdclMs), bench::ms(z3Ms),
                         agree ? "yes" : "NO"});
        if (!agree) ++failures;
    }

    std::printf("\nABL2: %s\n",
                failures == 0 ? "backends agree on every query" : "DISAGREEMENT");
    return failures == 0 ? EXIT_SUCCESS : EXIT_FAILURE;
}
