// SEC31 — the paper's success measure (§3.1): "the length of specification
// should grow linearly with the number of systems, hardware and workloads
// included", and the solver must keep up as the knowledge base grows.
//
// The bench sweeps KB prefixes (systems and hardware added in catalog
// order), reporting encoding length (KB-side), compiled constraint count
// (solver-side), and optimize() wall time.
#include <cstdio>
#include <cstdlib>

#include "benchutil.hpp"
#include "catalog/catalog.hpp"
#include "kb/objectives.hpp"
#include "reason/engine.hpp"
#include "util/stopwatch.hpp"

using namespace lar;

namespace {

/// A KB containing the first `systemCount` systems and a `fraction` of each
/// hardware class (keeping all three classes populated), plus the orderings
/// among the included systems.
kb::KnowledgeBase prefixKb(const kb::KnowledgeBase& full, std::size_t systemCount,
                           double fraction) {
    kb::KnowledgeBase prefix;
    for (std::size_t i = 0; i < systemCount && i < full.systems().size(); ++i)
        prefix.addSystem(full.systems()[i]);
    for (const kb::HardwareClass cls :
         {kb::HardwareClass::Switch, kb::HardwareClass::Nic,
          kb::HardwareClass::Server}) {
        const auto specs = full.byClass(cls);
        const std::size_t keep = std::max<std::size_t>(
            1, static_cast<std::size_t>(static_cast<double>(specs.size()) * fraction));
        for (std::size_t i = 0; i < keep; ++i) prefix.addHardware(*specs[i]);
    }
    for (const kb::Ordering& o : full.orderings())
        if (prefix.findSystem(o.better) != nullptr &&
            prefix.findSystem(o.worse) != nullptr)
            prefix.addOrdering(o);
    return prefix;
}

} // namespace

int main() {
    const kb::KnowledgeBase full = catalog::buildKnowledgeBase();

    bench::printHeader("§3.1 encoding length vs knowledge-base size");
    bench::printRow({"systems", "hardware", "encoding len", "len/entity"});
    bench::printRule();
    std::vector<double> perEntity;
    for (const std::size_t systems : {8u, 16u, 24u, 32u, 40u, 48u, 56u}) {
        const kb::KnowledgeBase prefix =
            prefixKb(full, systems, static_cast<double>(systems) / 56.0);
        const std::size_t hardware = prefix.hardwareSpecs().size();
        const std::size_t length = prefix.encodingLength();
        const double ratio =
            static_cast<double>(length) / static_cast<double>(systems + hardware);
        perEntity.push_back(ratio);
        char buf[16];
        std::snprintf(buf, sizeof buf, "%.2f", ratio);
        bench::printRow({bench::num(static_cast<long long>(systems)),
                         bench::num(static_cast<long long>(hardware)),
                         bench::num(static_cast<long long>(length)), buf});
    }
    // Linearity: per-entity cost stays flat (within 1.5× of the smallest).
    double lo = perEntity[0];
    double hi = perEntity[0];
    for (const double r : perEntity) {
        lo = std::min(lo, r);
        hi = std::max(hi, r);
    }
    const bool linear = hi / lo < 1.5;
    std::printf("\nper-entity encoding cost spread: %.2f–%.2f (ratio %.2f) — %s\n",
                lo, hi, hi / lo,
                linear ? "LINEAR growth, the paper's success criterion"
                       : "SUPER-LINEAR growth");

    bench::printHeader("solve time vs knowledge-base size (optimize, full query)");
    bench::printRow({"systems", "hardware", "feasible", "optimize"});
    bench::printRule();
    bool solvedAll = true;
    for (const std::size_t systems : {14u, 28u, 42u, 56u}) {
        const kb::KnowledgeBase prefix =
            prefixKb(full, systems, static_cast<double>(systems) / 56.0);
        const std::size_t hardware = prefix.hardwareSpecs().size();
        reason::Problem p = reason::makeDefaultProblem(prefix);
        // 120 servers so even small-core prefix inventories can host the
        // workload; the sweep measures solve time, not capacity planning.
        p.hardware[kb::HardwareClass::Server].count = 120;
        p.hardware[kb::HardwareClass::Switch].count = 8;
        p.hardware[kb::HardwareClass::Nic].count = 120;
        p.workloads = {catalog::makeInferenceWorkload()};
        p.workloads[0].bounds.clear(); // bounds need systems near the end
        p.objectivePriority = {kb::kObjLatency, kb::kObjHardwareCost};
        util::Stopwatch timer;
        const auto design = reason::Engine(p).optimize();
        const double elapsed = timer.millis();
        bench::printRow({bench::num(static_cast<long long>(systems)),
                         bench::num(static_cast<long long>(hardware)),
                         design.has_value() ? "yes" : "no", bench::ms(elapsed)});
        solvedAll = solvedAll && design.has_value() && elapsed < 60000;
    }

    std::printf("\nSEC31 reproduction: %s\n",
                (linear && solvedAll) ? "length linear, solves interactive"
                                      : "FAILED");
    return (linear && solvedAll) ? EXIT_SUCCESS : EXIT_FAILURE;
}
