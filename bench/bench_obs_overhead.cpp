// OBS1 — observability overhead on the §5.1-style mixed burst.
//
// The whole point of the obs layer is to be on in production, so it must be
// close to free. This bench runs the service-throughput burst twice per
// thread count — instrumentation disabled (obs::setEnabled(false), no trace
// collection) vs fully on (metrics, spans, per-conflict-batch progress
// probes, trace collection) — and gates on <5% wall-clock overhead at 1 and
// 8 worker threads. Each configuration runs several passes and keeps the
// fastest, which filters allocator and scheduler noise.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "benchutil.hpp"
#include "catalog/catalog.hpp"
#include "obs/metrics.hpp"
#include "reason/service.hpp"
#include "util/stopwatch.hpp"

using namespace lar;
using reason::QueryKind;

namespace {

/// Same shape as bench_service_throughput's burst: 6 distinct problems × 6
/// repeats, cycling optimize/feasibility/synthesize.
std::vector<reason::QueryRequest> makeBurst(const kb::KnowledgeBase& kb,
                                            bool instrumented) {
    constexpr int kDistinctProblems = 6;
    constexpr int kRepeats = 6;
    const QueryKind kinds[] = {QueryKind::Optimize, QueryKind::Feasibility,
                               QueryKind::Synthesize};
    std::vector<reason::QueryRequest> burst;
    for (int rep = 0; rep < kRepeats; ++rep) {
        for (int v = 0; v < kDistinctProblems; ++v) {
            reason::QueryRequest q;
            q.problem = reason::makeDefaultProblem(kb);
            q.problem.hardware[kb::HardwareClass::Server].count = 40 + 8 * v;
            q.problem.hardware[kb::HardwareClass::Switch].count = 8;
            q.problem.hardware[kb::HardwareClass::Nic].count = 40 + 8 * v;
            q.problem.workloads = {catalog::makeInferenceWorkload()};
            q.problem.requiredCapabilities = {catalog::kCapDetectQueueLength};
            q.kind = kinds[(rep * kDistinctProblems + v) % 3];
            q.id = std::to_string(rep) + "/" + std::to_string(v);
            q.options.collectTrace = instrumented;
            q.options.progressEveryConflicts = instrumented ? 256 : 0;
            burst.push_back(std::move(q));
        }
    }
    return burst;
}

/// Fastest of `passes` runs of the burst on a fresh service (fresh cache).
double bestMillis(const kb::KnowledgeBase& kb, unsigned workers,
                  bool instrumented, int passes) {
    const std::vector<reason::QueryRequest> burst = makeBurst(kb, instrumented);
    double best = 1e300;
    for (int pass = 0; pass < passes; ++pass) {
        reason::ServiceOptions options;
        options.workers = workers;
        reason::Service service(options);
        util::Stopwatch timer;
        const std::vector<reason::QueryResult> results = service.runBatch(burst);
        best = std::min(best, timer.millis());
        if (results.size() != burst.size()) return -1.0;
    }
    return best;
}

} // namespace

int main() {
    const kb::KnowledgeBase kb = catalog::buildKnowledgeBase();
    constexpr int kPasses = 5;
    constexpr double kGatePct = 5.0;

    bench::printHeader("observability overhead (mixed burst, best of 5)");
    bench::printRow({"threads", "obs off", "obs on", "overhead", "gate"});
    bench::printRule();

    bool ok = true;
    for (const unsigned threads : {1u, 8u}) {
        obs::setEnabled(false);
        const double offMs = bestMillis(kb, threads, /*instrumented=*/false,
                                        kPasses);
        obs::setEnabled(true);
        const double onMs = bestMillis(kb, threads, /*instrumented=*/true,
                                       kPasses);
        if (offMs <= 0.0 || onMs <= 0.0) {
            std::printf("OBS1: FAILED (batch did not complete)\n");
            return EXIT_FAILURE;
        }
        const double overheadPct = (onMs - offMs) / offMs * 100.0;
        const bool pass = overheadPct < kGatePct;
        ok = ok && pass;
        char overhead[32];
        std::snprintf(overhead, sizeof overhead, "%+.2f%%", overheadPct);
        bench::printRow({std::to_string(threads), bench::ms(offMs),
                         bench::ms(onMs), overhead,
                         pass ? "<5% ok" : ">=5% FAIL"});
    }

    std::printf("\nOBS1: %s\n",
                ok ? "instrumentation costs <5% at 1 and 8 threads"
                   : "FAILED (overhead gate exceeded)");
    return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
