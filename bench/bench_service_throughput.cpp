// SVC1 — concurrent query service throughput and compilation-cache payoff.
//
// The service answers bursts of mixed queries (feasibility, synthesis,
// optimization) over a handful of distinct problems. This bench measures
// batch QPS at 1/2/4/8 worker threads, checks that the thread pool never
// changes an answer (every batch must match the sequential run bit-for-bit),
// and reports the compile-time split between cache misses and hits (a hit
// must skip compilation entirely: compile_ms == 0).
//
// The ≥2.5× 1→8-thread scaling gate only applies on machines with at least
// 8 hardware threads; below that the scaling row is informational and the
// verdict rests on the correctness checks.
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "benchutil.hpp"
#include "catalog/catalog.hpp"
#include "kb/objectives.hpp"
#include "reason/service.hpp"
#include "util/stopwatch.hpp"

using namespace lar;
using reason::QueryKind;

namespace {

std::string designKey(const std::optional<reason::Design>& d) {
    if (!d.has_value()) return "(infeasible)";
    std::ostringstream out;
    out << d->toString();
    for (const std::int64_t c : d->objectiveCosts) out << ' ' << c;
    return out.str();
}

std::string resultKey(const reason::QueryResult& r) {
    std::ostringstream out;
    out << r.id << '|' << (r.verdict == reason::Verdict::Sat ? "sat" : "unsat") << '|'
        << designKey(r.design) << '|' << r.designs.size();
    for (const reason::Design& d : r.designs) out << '|' << d.toString();
    for (const std::string& rule : r.conflictingRules) out << '|' << rule;
    return out.str();
}

/// The burst: kDistinctProblems problem variants (distinct fingerprints,
/// varying server/NIC counts) × kRepeats passes, cycling the query kind.
std::vector<reason::QueryRequest> makeBurst(const kb::KnowledgeBase& kb) {
    constexpr int kDistinctProblems = 6;
    constexpr int kRepeats = 6;
    const QueryKind kinds[] = {QueryKind::Optimize, QueryKind::Feasibility,
                               QueryKind::Synthesize};
    std::vector<reason::QueryRequest> burst;
    for (int rep = 0; rep < kRepeats; ++rep) {
        for (int v = 0; v < kDistinctProblems; ++v) {
            reason::QueryRequest q;
            q.problem = reason::makeDefaultProblem(kb);
            q.problem.hardware[kb::HardwareClass::Server].count = 40 + 8 * v;
            q.problem.hardware[kb::HardwareClass::Switch].count = 8;
            q.problem.hardware[kb::HardwareClass::Nic].count = 40 + 8 * v;
            q.problem.workloads = {catalog::makeInferenceWorkload()};
            q.problem.requiredCapabilities = {catalog::kCapDetectQueueLength};
            q.kind = kinds[(rep * kDistinctProblems + v) % 3];
            q.id = std::to_string(rep) + "/" + std::to_string(v);
            burst.push_back(std::move(q));
        }
    }
    return burst;
}

} // namespace

int main() {
    const kb::KnowledgeBase kb = catalog::buildKnowledgeBase();
    const std::vector<reason::QueryRequest> burst = makeBurst(kb);

    // Sequential reference: one worker, fresh cache.
    reason::ServiceOptions seqOptions;
    seqOptions.workers = 1;
    reason::Service sequential(seqOptions);
    util::Stopwatch seqTimer;
    const std::vector<reason::QueryResult> reference =
        sequential.runBatch(burst);
    const double seqMs = seqTimer.millis();

    // Compile-time split from the reference traces.
    double missCompileMs = 0.0, hitCompileMs = 0.0;
    int missCount = 0, hitCount = 0;
    for (const reason::QueryResult& r : reference) {
        if (r.trace.cacheHit) {
            hitCompileMs += r.trace.compileMs;
            ++hitCount;
        } else {
            missCompileMs += r.trace.compileMs;
            ++missCount;
        }
    }

    bench::printHeader("service throughput (mixed burst, fresh cache per run)");
    bench::printRow({"threads", "queries", "total", "QPS", "matches seq"});
    bench::printRule();

    std::printf("%-34s%12s%12s%12s%12s\n", "1 (reference)",
                bench::num(static_cast<long long>(burst.size())).c_str(),
                bench::ms(seqMs).c_str(),
                bench::num(static_cast<long long>(burst.size() * 1000.0 /
                                                  seqMs)).c_str(),
                "-");

    bool allMatch = true;
    double qps1 = burst.size() * 1000.0 / seqMs, qps8 = qps1;
    for (const unsigned threads : {2u, 4u, 8u}) {
        reason::ServiceOptions options;
        options.workers = threads;
        reason::Service service(options);
        util::Stopwatch timer;
        const std::vector<reason::QueryResult> results =
            service.runBatch(burst);
        const double millis = timer.millis();
        bool match = results.size() == reference.size();
        for (std::size_t i = 0; match && i < results.size(); ++i)
            match = resultKey(results[i]) == resultKey(reference[i]);
        allMatch = allMatch && match;
        const double qps = burst.size() * 1000.0 / millis;
        if (threads == 8) qps8 = qps;
        bench::printRow({std::to_string(threads),
                         bench::num(static_cast<long long>(burst.size())),
                         bench::ms(millis),
                         bench::num(static_cast<long long>(qps)),
                         match ? "yes" : "NO"});
    }

    bench::printHeader("compilation cache payoff (reference run)");
    bench::printRow({"outcome", "queries", "avg compile"});
    bench::printRule();
    bench::printRow({"miss (compiled)", bench::num(missCount),
                     bench::ms(missCount ? missCompileMs / missCount : 0.0)});
    bench::printRow({"hit (cached)", bench::num(hitCount),
                     bench::ms(hitCount ? hitCompileMs / hitCount : 0.0)});
    const bool hitsFree = hitCount > 0 && hitCompileMs == 0.0;
    std::printf("\ncache hits skip compilation: %s (%d hits, %d misses)\n",
                hitsFree ? "yes" : "NO", hitCount, missCount);

    const unsigned cores = std::thread::hardware_concurrency();
    const double scaling = qps8 / qps1;
    std::printf("1→8 thread scaling: %.2fx on %u hardware thread(s)%s\n",
                scaling, cores,
                cores >= 8 ? "" : " — gate waived (<8 hardware threads)");

    const bool scalingOk = cores < 8 || scaling >= 2.5;
    const bool ok = allMatch && hitsFree && scalingOk;
    std::printf("SVC1: %s\n",
                ok ? "batches match sequential, cache hits compile-free"
                   : "FAILED");
    return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
