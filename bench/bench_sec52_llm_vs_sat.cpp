// SEC52 — reproduces §5.2: using an LLM as the reasoning engine. The paper
// found the LLM "accurately determined straightforward requirements such as
// the minimum number of cores", but "failed to return correct results when
// faced with nuances". We run a query suite against both reasoners and
// score each answer with the independent design validator.
#include <cstdio>
#include <cstdlib>

#include "benchutil.hpp"
#include "catalog/catalog.hpp"
#include "kb/objectives.hpp"
#include "llmsim/greedy.hpp"
#include "reason/engine.hpp"
#include "reason/validate.hpp"
#include "util/stopwatch.hpp"

using namespace lar;

namespace {

reason::Problem caseStudy(const kb::KnowledgeBase& kb) {
    reason::Problem p = reason::makeDefaultProblem(kb);
    p.hardware[kb::HardwareClass::Server].count = 60;
    p.hardware[kb::HardwareClass::Switch].count = 8;
    p.hardware[kb::HardwareClass::Nic].count = 60;
    p.workloads = {catalog::makeInferenceWorkload()};
    p.objectivePriority = {kb::kObjLatency, kb::kObjHardwareCost,
                           kb::kObjMonitoring};
    p.requiredCapabilities = {catalog::kCapDetectQueueLength};
    return p;
}

struct QueryResult {
    std::string name;
    bool llmCorrect = false;
    bool satCorrect = false;
};

} // namespace

int main() {
    const kb::KnowledgeBase kb = catalog::buildKnowledgeBase();
    std::vector<QueryResult> results;

    // -- Q1: minimum cores (simple aggregate) ---------------------------------
    {
        QueryResult q{"min cores for workloads+SIMON", false, false};
        const reason::Problem p = caseStudy(kb);
        const llmsim::GreedyReasoner llm(p);
        const reason::WorkloadAggregates agg =
            reason::aggregateWorkloads(p.workloads);
        std::int64_t expected = agg.totalPeakCores;
        for (const kb::ResourceDemand& d : kb.system("SIMON").demands)
            if (d.resource == kb::kResCores)
                expected += d.amountFor(agg.totalKiloFlows, agg.totalGbps);
        q.llmCorrect = llm.minCoresNeeded({"SIMON"}) == expected;
        // The SAT engine answers by construction: any design deploying SIMON
        // accounts for at least the expected core demand and still validates.
        reason::Problem withSimon = p;
        withSimon.pinnedSystems["SIMON"] = true;
        const auto design = reason::Engine(withSimon).optimize();
        q.satCorrect = design.has_value() && design->uses("SIMON") &&
                       design->resourceUsage.at(kb::kResCores) >= expected &&
                       reason::validateDesign(withSimon, *design).empty();
        results.push_back(q);
    }

    // -- Q2: full case-study design (nuanced) ---------------------------------
    {
        QueryResult q{"design the §2.3 case study", false, false};
        const reason::Problem p = caseStudy(kb);
        const llmsim::GreedyReasoner llm(p);
        const reason::Design greedy = llm.proposeDesign();
        q.llmCorrect = reason::validateDesign(p, greedy).empty();
        const auto sat = reason::Engine(p).optimize();
        q.satCorrect =
            sat.has_value() && reason::validateDesign(p, *sat).empty();
        results.push_back(q);
    }

    // -- Q3: design under a hardware budget (nuanced interaction) -------------
    {
        // $700k is tight but feasible: the greedy "bigger is better" picker
        // blows it, the engine fits inside it.
        QueryResult q{"design under $700k budget", false, false};
        reason::Problem p = caseStudy(kb);
        p.maxHardwareCostUsd = 700000;
        const llmsim::GreedyReasoner llm(p);
        const reason::Design greedy = llm.proposeDesign();
        q.llmCorrect = reason::validateDesign(p, greedy).empty();
        const auto sat = reason::Engine(p).optimize();
        q.satCorrect =
            sat.has_value() && reason::validateDesign(p, *sat).empty();
        results.push_back(q);
    }

    // -- Q4: forced programmable switches (the paper's P4 failure case) -------
    {
        QueryResult q{"P4-only switches, monitoring goals", false, false};
        reason::Problem p = caseStudy(kb);
        for (const kb::HardwareSpec* h : kb.byClass(kb::HardwareClass::Switch))
            if (h->boolAttr(kb::kAttrP4Supported).value_or(false))
                p.hardware[kb::HardwareClass::Switch].candidateModels.push_back(
                    h->model);
        p.pinnedSystems["Sonata"] = true; // stages contention with BFC et al.
        const llmsim::GreedyReasoner llm(p);
        const reason::Design greedy = llm.proposeDesign();
        q.llmCorrect = reason::validateDesign(p, greedy).empty();
        const auto sat = reason::Engine(p).optimize();
        q.satCorrect =
            sat.has_value() && reason::validateDesign(p, *sat).empty();
        results.push_back(q);
    }

    // -- Q5: flooding environment + RDMA (ripple nuance) -----------------------
    {
        QueryResult q{"RoCEv2 with flooding in place", false, false};
        reason::Problem p = caseStudy(kb);
        p.optionalCategories.insert(kb::Category::TransportProtocol);
        p.pinnedFacts[catalog::kFactFlooding] = true;
        p.pinnedSystems["RoCEv2"] = true;
        // Correct answer: infeasible (PFC × flooding).
        const llmsim::GreedyReasoner llm(p);
        const reason::Design greedy = llm.proposeDesign();
        // The greedy reasoner happily returns a design → wrong.
        q.llmCorrect = greedy.chosen.empty();
        q.satCorrect = !reason::Engine(p).checkFeasible().feasible;
        results.push_back(q);
    }

    bench::printHeader("§5.2: LLM-as-reasoner vs SAT engine");
    bench::printRow({"query", "LLM sim", "SAT engine"});
    bench::printRule();
    int llmRight = 0;
    int satRight = 0;
    for (const QueryResult& q : results) {
        bench::printRow({q.name, q.llmCorrect ? "correct" : "WRONG",
                         q.satCorrect ? "correct" : "WRONG"});
        llmRight += q.llmCorrect ? 1 : 0;
        satRight += q.satCorrect ? 1 : 0;
    }
    bench::printRule();
    std::printf("LLM sim: %d/%zu correct — SAT engine: %d/%zu correct\n",
                llmRight, results.size(), satRight, results.size());
    std::printf("\npaper: LLM right on simple aggregates, wrong on nuances; "
                "SAT engine right throughout.\n");

    const bool shapeHolds = results[0].llmCorrect && // aggregates OK
                            llmRight < static_cast<int>(results.size()) &&
                            satRight == static_cast<int>(results.size());
    std::printf("SEC52 reproduction: %s\n",
                shapeHolds ? "shape holds" : "SHAPE VIOLATED");
    return shapeHolds ? EXIT_SUCCESS : EXIT_FAILURE;
}
