// SEC42 — reproduces §4.2: using the (simulated) LLM to check human-written
// encodings. Expected shape: missing-condition detection (existence checks)
// is strong, wrong-numeric-value detection is markedly weaker, and the two
// concrete anecdotes reproduce — the forgotten Shenango interrupt-polling
// requirement is flagged, and a wrong Sonata P4 stage count raises an alarm
// only part of the time. Also prints the §4.2 objectivity split.
#include <cstdio>
#include <cstdlib>

#include "benchutil.hpp"
#include "catalog/catalog.hpp"
#include "extract/checker.hpp"
#include "extract/extractor.hpp"
#include "extract/specgen.hpp"

using namespace lar;

int main() {
    const kb::KnowledgeBase kb = catalog::buildKnowledgeBase();
    const extract::CheckerModel model;
    util::Rng rng(2024);

    // Detection-rate table: inject noisy extractions, check them, tally.
    bench::printHeader("§4.2 checking extracted encodings (56 systems × 50 runs)");
    extract::NoiseModel noise;
    extract::CheckStats totals;
    const auto corpus = extract::renderSystemCorpus(kb);
    for (int round = 0; round < 50; ++round) {
        for (const extract::SystemDoc& doc : corpus) {
            const auto extraction = extract::extractSystem(doc, noise, rng);
            const auto check =
                extract::checkEncoding(extraction.encoding, doc, model, rng);
            totals.missingTotal += check.stats.missingTotal;
            totals.missingFlagged += check.stats.missingFlagged;
            totals.wrongValueTotal += check.stats.wrongValueTotal;
            totals.wrongValueFlagged += check.stats.wrongValueFlagged;
            totals.falseAlarms += check.stats.falseAlarms;
        }
    }
    const double missRate =
        static_cast<double>(totals.missingFlagged) / totals.missingTotal;
    const double valueRate =
        static_cast<double>(totals.wrongValueFlagged) / totals.wrongValueTotal;
    bench::printRow({"defect class", "injected", "flagged", "detection"});
    bench::printRule();
    bench::printRow({"missing condition (existence)", bench::num(totals.missingTotal),
                     bench::num(totals.missingFlagged), bench::pct(missRate)});
    bench::printRow({"wrong numeric value", bench::num(totals.wrongValueTotal),
                     bench::num(totals.wrongValueFlagged), bench::pct(valueRate)});
    bench::printRow({"false alarms on correct facts", "-",
                     bench::num(totals.falseAlarms), "-"});
    std::printf("\npaper: existence-of-condition checks beat correctness-of-"
                "value checks; measured %s vs %s\n",
                bench::pct(missRate).c_str(), bench::pct(valueRate).c_str());

    // Anecdote 1: Shenango's interrupt-polling requirement forgotten.
    bench::printHeader("anecdote: hand-written Shenango encoding");
    kb::System shenango = kb.system("Shenango");
    shenango.constraints =
        kb::Requirement::hardwareHas(kb::HardwareClass::Nic, kb::kAttrSrIov);
    const auto shenangoDoc = extract::renderSystemDoc(kb.system("Shenango"));
    int shenangoFlagged = 0;
    constexpr int kTries = 100;
    for (int i = 0; i < kTries; ++i) {
        const auto result =
            extract::checkEncoding(shenango, shenangoDoc, model, rng);
        for (const auto& finding : result.findings)
            if (finding.description.find("interrupt_polling") != std::string::npos) {
                ++shenangoFlagged;
                break;
            }
    }
    std::printf("missing interrupt-polling requirement flagged in %d/%d runs\n",
                shenangoFlagged, kTries);

    // Anecdote 2: wrong Sonata stage count.
    bench::printHeader("anecdote: Sonata with the wrong number of P4 stages");
    kb::System sonata = kb.system("Sonata");
    for (kb::ResourceDemand& d : sonata.demands)
        if (d.resource == kb::kResP4Stages) d.fixed = 2; // truth: 8
    const auto sonataDoc = extract::renderSystemDoc(kb.system("Sonata"));
    int sonataFlagged = 0;
    for (int i = 0; i < kTries; ++i) {
        const auto result = extract::checkEncoding(sonata, sonataDoc, model, rng);
        for (const auto& finding : result.findings)
            if (finding.type == extract::CheckFinding::Type::WrongValue) {
                ++sonataFlagged;
                break;
            }
    }
    std::printf("wrong stage count flagged in %d/%d runs (value checks are "
                "weaker)\n",
                sonataFlagged, kTries);

    // Objectivity split.
    bench::printHeader("§4.2 objectivity: facts vs comparisons");
    int subjective = 0;
    for (const kb::Ordering& o : kb.orderings())
        if (extract::classifyOrdering(o) ==
            extract::ClaimClass::SubjectiveComparison)
            ++subjective;
    std::printf("orderings (comparative, annotate-with-sources): %d/%zu "
                "subjective\nrequirements (inter-dependencies): objective\n",
                subjective, kb.orderings().size());

    const bool shapeHolds = missRate > valueRate && shenangoFlagged > 80 &&
                            sonataFlagged > 20 && sonataFlagged < 90;
    std::printf("\nSEC42 reproduction: %s\n",
                shapeHolds ? "shape holds" : "SHAPE VIOLATED");
    return shapeHolds ? EXIT_SUCCESS : EXIT_FAILURE;
}
