// SEC22 — the Microsoft RDMA/PFC story (§2.2, §3.4), both ways:
//
//  1. the deep analysis: build a k-ary fat-tree, install up-down routes,
//     construct the PFC buffer-dependency graph, search for cycles —
//     deadlock-free without flooding, deadlock-possible once Ethernet
//     flooding is in place;
//  2. the lightweight expert rule ("PFC cannot be used with any flooding
//     algorithm"): reaches the same verdict via one predicate, which is the
//     paper's argument for shallow encodings.
#include <cstdio>
#include <cstdlib>

#include "benchutil.hpp"
#include "topo/pfc.hpp"
#include "util/stopwatch.hpp"

using namespace lar;

int main() {
    int failures = 0;

    bench::printHeader("§2.2 PFC buffer-dependency analysis on k-ary fat-trees");
    bench::printRow({"topology", "flooding", "buffers", "deps", "deadlock",
                     "analysis"});
    bench::printRule();
    for (const int k : {4, 8, 16}) {
        for (const bool flooding : {false, true}) {
            util::Stopwatch timer;
            const topo::PfcAnalysis analysis = topo::analyzePfcDeadlock(
                k, /*routePairs=*/3 * k * k, flooding, /*seed=*/2024);
            const double elapsed = timer.millis();
            bench::printRow({"fat-tree k=" + std::to_string(k),
                             flooding ? "yes" : "no",
                             bench::num(static_cast<long long>(analysis.buffers)),
                             bench::num(static_cast<long long>(analysis.dependencies)),
                             analysis.deadlockPossible ? "POSSIBLE" : "free",
                             bench::ms(elapsed)});
            if (analysis.deadlockPossible != flooding) ++failures;
        }
    }

    bench::printHeader("example deadlock cycle (k=4, flooding)");
    {
        const topo::FatTree tree(4);
        util::Rng rng(2024);
        auto routes = topo::sampleUpDownRoutes(tree, 48, rng);
        auto turns = topo::routeTurns(tree, routes);
        const auto flood = topo::floodingTurns(tree);
        turns.insert(turns.end(), flood.begin(), flood.end());
        const topo::BufferDependencyGraph graph(tree, turns);
        if (const auto cycle = graph.findCycle()) {
            std::printf("%s\n", graph.describeCycle(tree, *cycle).c_str());
        } else {
            std::printf("!! expected a cycle\n");
            ++failures;
        }
    }

    bench::printHeader("§3.4 expert rule vs deep analysis");
    bench::printRow({"scenario", "expert rule", "graph", "agree"});
    bench::printRule();
    struct Scenario {
        const char* name;
        bool pfc;
        bool flooding;
    };
    for (const Scenario& s : {Scenario{"up-down routing only", true, false},
                              Scenario{"up-down + ARP flooding", true, true},
                              Scenario{"no PFC, flooding", false, true}}) {
        const bool rule = topo::pfcExpertRuleUnsafe(s.pfc, s.flooding);
        // Graph analysis: deadlock only matters when PFC is on.
        const topo::PfcAnalysis analysis =
            topo::analyzePfcDeadlock(4, 48, s.flooding, 7);
        const bool graphUnsafe = s.pfc && analysis.deadlockPossible;
        bench::printRow({s.name, rule ? "unsafe" : "safe",
                         graphUnsafe ? "unsafe" : "safe",
                         rule == graphUnsafe ? "yes" : "NO"});
        if (rule != graphUnsafe) ++failures;
    }
    std::printf("\npaper: the one-line expert rule catches the Microsoft "
                "deadlock without any\ntopology reasoning — the case for "
                "lightweight encodings.\n");

    std::printf("\nSEC22 reproduction: %s\n",
                failures == 0 ? "verdicts match throughout" : "FAILED");
    return failures == 0 ? EXIT_SUCCESS : EXIT_FAILURE;
}
