// SEC23b — substantiates the §2.3 rule of thumb: "ECMP load balancing can
// lead to load imbalance … consider using packet spraying instead".
//
// A heavy-tailed permutation traffic matrix is placed on k-ary fat-trees
// under hash-ECMP and under packet spraying; the peak-to-mean link-load
// ratio quantifies the imbalance the partial-order edge
// "PacketSpray > ECMP (short_flows)" encodes shallowly.
#include <cstdio>
#include <cstdlib>

#include "benchutil.hpp"
#include "topo/loadbalance.hpp"
#include "util/stopwatch.hpp"

using namespace lar;

int main() {
    int failures = 0;
    bench::printHeader("§2.3: ECMP vs packet spraying (peak/mean link load)");
    bench::printRow({"topology", "flows", "ECMP", "spraying", "ECMP/spray"});
    bench::printRule();
    for (const int k : {4, 8, 16}) {
        const topo::FatTree tree(k);
        util::Rng rng(2024);
        const int flowCount = static_cast<int>(tree.hosts().size()) * 4;
        const auto flows = topo::randomTrafficMatrix(tree, flowCount, rng);
        const topo::LoadReport ecmp = topo::simulateEcmp(tree, flows);
        const topo::LoadReport spray = topo::simulateSpraying(tree, flows);
        char e[16];
        char s[16];
        char r[16];
        std::snprintf(e, sizeof e, "%.2f", ecmp.imbalance());
        std::snprintf(s, sizeof s, "%.2f", spray.imbalance());
        std::snprintf(r, sizeof r, "%.2f", ecmp.imbalance() / spray.imbalance());
        bench::printRow({"fat-tree k=" + std::to_string(k),
                         bench::num(flowCount), e, s, r});
        // The paper's shape: ECMP meaningfully worse than spraying.
        if (ecmp.imbalance() < spray.imbalance() * 1.2) ++failures;
        // Conservation check: identical total traffic either way.
        const double totalEcmp = ecmp.meanLinkLoadGbps;
        if (totalEcmp <= 0 || spray.meanLinkLoadGbps <= 0) ++failures;
    }
    std::printf("\npaper (§2.3): hash collisions of heavy flows hot-spot ECMP "
                "links; per-packet\nspraying spreads them — the shallow "
                "ordering edge, backed by the fabric model.\n");
    std::printf("SEC23b reproduction: %s\n",
                failures == 0 ? "ECMP consistently worse (shape holds)"
                              : "SHAPE VIOLATED");
    return failures == 0 ? EXIT_SUCCESS : EXIT_FAILURE;
}
