// SEC23 — walks the §2.3 case study end-to-end, the way the paper narrates
// it: the architect starts from the simplest choices (OVS, Linux + Cubic,
// ECMP, no monitoring, fixed-function hardware), sees that they cannot meet
// the low-latency goal, and lets the engine iterate — each added goal
// produces a ripple of changes across the design.
#include <cstdio>
#include <cstdlib>

#include "benchutil.hpp"
#include "catalog/catalog.hpp"
#include "kb/objectives.hpp"
#include "order/poset.hpp"
#include "reason/engine.hpp"
#include "reason/validate.hpp"
#include "util/stopwatch.hpp"

using namespace lar;

namespace {

int failures = 0;

void verdict(bool ok, const char* what) {
    if (!ok) {
        std::printf("  !! %s\n", what);
        ++failures;
    }
}

void printDesign(const char* label, const reason::Design& design) {
    std::printf("\n--- %s ---\n%s", label, design.toString().c_str());
}

void printRipple(const reason::Design& from, const reason::Design& to) {
    const auto changes = from.diff(to);
    std::printf("ripple (%zu changes):\n", changes.size());
    for (const std::string& change : changes) std::printf("  * %s\n", change.c_str());
    if (changes.empty()) std::printf("  (none)\n");
}

} // namespace

int main() {
    const kb::KnowledgeBase kb = catalog::buildKnowledgeBase();
    util::Stopwatch total;

    reason::Problem base = reason::makeDefaultProblem(kb);
    base.hardware[kb::HardwareClass::Server].count = 60;
    base.hardware[kb::HardwareClass::Switch].count = 8;
    base.hardware[kb::HardwareClass::Nic].count = 60;
    base.workloads = {catalog::makeInferenceWorkload()};
    base.optionalCategories.insert(kb::Category::VirtualSwitch);

    // Step 0: the architect's naive design, checked by the engine.
    bench::printHeader("step 0: the simplest choices (naive design)");
    reason::Problem naive = base;
    naive.workloads[0].bounds.clear(); // no performance goals yet
    naive.pinnedSystems["OVS"] = true;
    naive.pinnedSystems["Linux"] = true;
    naive.pinnedSystems["Cubic"] = true;
    naive.pinnedSystems["ECMP"] = true;
    naive.objectivePriority = {}; // no goals at all
    const auto naiveDesign = reason::Engine(naive).optimize();
    verdict(naiveDesign.has_value(), "naive design infeasible");
    if (naiveDesign) printDesign("naive", *naiveDesign);

    // The naive stack cannot meet the latency goal: everything in it is
    // dominated on the latency objective.
    {
        order::Context ctx;
        const kb::HardwareSpec& nic = kb.hardware("Intel X710 10G");
        ctx.hardware[kb::HardwareClass::Nic] = &nic;
        ctx.workloadProperties = {kb::kPropDcFlows, kb::kPropShortFlows};
        const order::PreferenceGraph latency(kb, kb::kObjLatency);
        const bool stackDominated = !latency.maximalElements({"Linux"}, ctx).empty() &&
                                    latency.strictlyBetter("Shenango", "Linux", ctx);
        const bool ccDominated = latency.strictlyBetter("DCTCP", "Cubic", ctx);
        std::printf("\nwhy it fails the low-latency goal:\n");
        if (stackDominated)
            std::printf("  - Linux is dominated on latency (e.g. by Shenango)\n");
        if (ccDominated)
            std::printf("  - Cubic is dominated on latency (e.g. by DCTCP)\n");
        verdict(stackDominated && ccDominated, "expected dominance missing");
    }

    // Step 1: architect states the latency goal; engine redesigns.
    bench::printHeader("step 1: optimize for latency");
    reason::Problem latencyGoal = base;
    latencyGoal.workloads[0].bounds.clear();
    latencyGoal.objectivePriority = {kb::kObjLatency, kb::kObjHardwareCost};
    util::Stopwatch timer;
    const auto latencyDesign = reason::Engine(latencyGoal).optimize();
    std::printf("(solved in %s)\n", bench::ms(timer.millis()).c_str());
    verdict(latencyDesign.has_value(), "latency redesign infeasible");
    if (latencyDesign && naiveDesign) {
        printDesign("latency-optimized", *latencyDesign);
        printRipple(*naiveDesign, *latencyDesign);
    }

    // Step 2: add the load-balancing bound (Listing 3): beat PacketSpray.
    bench::printHeader("step 2: + load balancing better than PacketSpray");
    reason::Problem lbGoal = latencyGoal;
    lbGoal.workloads[0].bounds = {{kb::kObjLoadBalancing, "PacketSpray"}};
    timer.reset();
    const auto lbDesign = reason::Engine(lbGoal).optimize();
    std::printf("(solved in %s)\n", bench::ms(timer.millis()).c_str());
    verdict(lbDesign.has_value(), "LB redesign infeasible");
    if (lbDesign && latencyDesign) {
        printDesign("with LB bound", *lbDesign);
        printRipple(*latencyDesign, *lbDesign);
        // Paper's ripple: the bound needs CONGA, CONGA needs a P4 switch.
        const bool p4Switch =
            kb.hardware(lbDesign->hardwareModel.at(kb::HardwareClass::Switch))
                .boolAttr(kb::kAttrP4Supported)
                .value_or(false);
        verdict(lbDesign->chosen.at(kb::Category::LoadBalancer) == "CONGA",
                "expected CONGA for the bound");
        verdict(p4Switch, "expected a programmable switch in the ripple");
    }

    // Step 3: add queue-length monitoring; SmartNIC sharing effect.
    bench::printHeader("step 3: + queue-length monitoring goal");
    reason::Problem monGoal = lbGoal;
    monGoal.requiredCapabilities = {catalog::kCapDetectQueueLength};
    monGoal.objectivePriority = {kb::kObjLatency, kb::kObjHardwareCost,
                                 kb::kObjMonitoring};
    timer.reset();
    const auto monDesign = reason::Engine(monGoal).optimize();
    std::printf("(solved in %s)\n", bench::ms(timer.millis()).c_str());
    verdict(monDesign.has_value(), "monitoring redesign infeasible");
    if (monDesign && lbDesign) {
        printDesign("with monitoring", *monDesign);
        printRipple(*lbDesign, *monDesign);
        verdict(reason::validateDesign(monGoal, *monDesign).empty(),
                "final design fails validation");
    }

    // Step 4: deadline pressure — no research prototypes.
    bench::printHeader("step 4: + sharp deployment deadline (no research systems)");
    reason::Problem deadline = monGoal;
    deadline.forbidResearchGrade = true;
    timer.reset();
    const auto deadlineDesign = reason::Engine(deadline).optimize();
    std::printf("(solved in %s)\n", bench::ms(timer.millis()).c_str());
    verdict(deadlineDesign.has_value(), "deadline redesign infeasible");
    if (deadlineDesign && monDesign) {
        printDesign("deadline-safe", *deadlineDesign);
        printRipple(*monDesign, *deadlineDesign);
        for (const auto& [category, name] : deadlineDesign->chosen)
            verdict(!kb.system(name).researchGrade,
                    "research-grade system slipped through");
    }

    std::printf("\n(total case-study time: %s)\n", bench::ms(total.millis()).c_str());
    std::printf("SEC23 reproduction: %s\n",
                failures == 0 ? "all steps behave as the paper narrates"
                              : "FAILED");
    return failures == 0 ? EXIT_SUCCESS : EXIT_FAILURE;
}
