// FIG1 — reproduces Figure 1: the conditional partial ordering over six
// network stacks (ZygOS, Linux, Snap, NetChannel, Shenango, Demikernel)
// along throughput (yellow), isolation (red), and application-modification
// (blue), under the figure's two condition axes: network load vs 40 Gbps
// and Pony enabled vs plain TCP.
//
// Output: for each (objective, context) the active edges of the partial
// order, the maximal elements, and the preserved knowledge gap
// (Shenango vs Demikernel isolation). Exits nonzero if any edge the paper
// shows is missing.
#include <cstdio>
#include <cstdlib>

#include "benchutil.hpp"
#include "catalog/catalog.hpp"
#include "kb/objectives.hpp"
#include "order/poset.hpp"

using namespace lar;

namespace {

const std::vector<std::string> kStacks = {"ZygOS",    "Linux",      "Snap",
                                          "NetChannel", "Shenango", "Demikernel"};

struct ContextSpec {
    const char* name;
    double nicGbps;
    bool pony;
};

int failures = 0;

void expectEdge(const order::PreferenceGraph& graph, const order::Context& ctx,
                const std::string& better, const std::string& worse) {
    if (!graph.strictlyBetter(better, worse, ctx)) {
        std::printf("  !! MISSING EXPECTED EDGE: %s > %s\n", better.c_str(),
                    worse.c_str());
        ++failures;
    }
}

} // namespace

int main() {
    const kb::KnowledgeBase kb = catalog::buildKnowledgeBase();
    kb::HardwareSpec nic;
    nic.model = "bench-nic";
    nic.cls = kb::HardwareClass::Nic;

    const ContextSpec contexts[] = {
        {"load<40G, TCP", 10, false},
        {"load<40G, Pony", 10, true},
        {"load>=40G, TCP", 100, false},
        {"load>=40G, Pony", 100, true},
    };
    const char* objectives[] = {kb::kObjThroughput, kb::kObjIsolation,
                                kb::kObjAppModification};

    bench::printHeader("Figure 1: partial ordering of network stacks");
    for (const char* objective : objectives) {
        const order::PreferenceGraph graph(kb, objective);
        for (const ContextSpec& spec : contexts) {
            nic.attrs[kb::kAttrPortBandwidthGbps] = spec.nicGbps;
            order::Context ctx;
            ctx.hardware[kb::HardwareClass::Nic] = &nic;
            if (spec.pony) ctx.options.insert(catalog::kOptPonyEnabled);

            std::printf("\n[%s | %s]\n", objective, spec.name);
            for (const kb::Ordering* e : graph.activeEdges(ctx)) {
                std::printf("  %-12s > %-12s  (%s)\n", e->better.c_str(),
                            e->worse.c_str(), e->source.c_str());
            }
            const auto maxima = graph.maximalElements(kStacks, ctx);
            std::string maxStr;
            for (const std::string& m : maxima) maxStr += m + " ";
            std::printf("  maximal: %s\n", maxStr.c_str());
        }
    }

    // Verify the paper's headline edges.
    bench::printHeader("verification against the paper's figure");
    {
        const order::PreferenceGraph throughput(kb, kb::kObjThroughput);
        nic.attrs[kb::kAttrPortBandwidthGbps] = 100.0;
        order::Context fastPony;
        fastPony.hardware[kb::HardwareClass::Nic] = &nic;
        fastPony.options.insert(catalog::kOptPonyEnabled);
        expectEdge(throughput, fastPony, "Snap", "Linux");
        expectEdge(throughput, fastPony, "NetChannel", "Snap");
        expectEdge(throughput, fastPony, "NetChannel", "Linux");

        kb::HardwareSpec slowNic = nic;
        slowNic.attrs[kb::kAttrPortBandwidthGbps] = 10.0;
        order::Context slow;
        slow.hardware[kb::HardwareClass::Nic] = &slowNic;
        expectEdge(throughput, slow, "Linux", "NetChannel");

        const order::PreferenceGraph isolation(kb, kb::kObjIsolation);
        expectEdge(isolation, fastPony, "Snap", "Shenango");
        expectEdge(isolation, fastPony, "Linux", "Shenango");
        if (!isolation.incomparable("Shenango", "Demikernel", fastPony)) {
            std::printf("  !! Shenango vs Demikernel should stay a knowledge "
                        "gap on isolation\n");
            ++failures;
        } else {
            std::printf("  knowledge gap preserved: Shenango ? Demikernel "
                        "(isolation) — no comparison in the literature\n");
        }

        const order::PreferenceGraph mods(kb, kb::kObjAppModification);
        expectEdge(mods, fastPony, "Linux", "Snap"); // Pony needs app changes
        expectEdge(mods, fastPony, "Linux", "Demikernel");
    }

    // DOT rendering of the throughput ordering (Figure 1 reproduction),
    // restricted to the six stacks the figure shows.
    bench::printHeader("Graphviz (throughput, load>=40G, Pony)");
    {
        const order::PreferenceGraph throughput(kb, kb::kObjThroughput);
        nic.attrs[kb::kAttrPortBandwidthGbps] = 100.0;
        order::Context ctx;
        ctx.hardware[kb::HardwareClass::Nic] = &nic;
        ctx.options.insert(catalog::kOptPonyEnabled);
        std::printf("%s", throughput.toDot(ctx, kStacks).c_str());

        // Clutter-free views: Hasse edges and preference levels.
        std::printf("\nHasse edges (transitive reduction):\n");
        for (const auto& [a, b] : throughput.hasseEdges(ctx))
            std::printf("  %s > %s\n", a.c_str(), b.c_str());
        std::printf("preference levels (0 = best):\n");
        const auto levels = throughput.levels(ctx);
        for (std::size_t i = 0; i < levels.size(); ++i) {
            std::printf("  level %zu:", i);
            for (const std::string& s : levels[i]) std::printf(" %s", s.c_str());
            std::printf("\n");
        }
    }

    if (failures > 0) {
        std::printf("\nFIG1 reproduction: %d missing edges\n", failures);
        return EXIT_FAILURE;
    }
    std::printf("\nFIG1 reproduction: all expected edges present\n");
    return EXIT_SUCCESS;
}
