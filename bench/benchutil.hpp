// Shared table/report helpers for the experiment benches.
//
// Benches print the paper-replication tables on stdout. Keep formatting
// plain (fixed-width columns) so outputs diff cleanly across runs.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace lar::bench {

inline void printHeader(const std::string& title) {
    std::printf("\n==== %s ====\n", title.c_str());
}

inline void printRule() {
    std::printf("%s\n", std::string(72, '-').c_str());
}

/// Prints one row of fixed-width cells (first column 34 chars, rest 12).
inline void printRow(const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i)
        std::printf(i == 0 ? "%-34s" : "%12s", cells[i].c_str());
    std::printf("\n");
}

inline std::string pct(double ratio) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "%.1f%%", ratio * 100.0);
    return buf;
}

inline std::string ms(double millis) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "%.2fms", millis);
    return buf;
}

inline std::string num(long long v) { return std::to_string(v); }

} // namespace lar::bench
