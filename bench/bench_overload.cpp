// SVC2 — overload behaviour: latency under 4× oversubscription, with and
// without admission control.
//
// A burst of 4× more queries than the pool can absorb is thrown at the
// service twice: once unbounded (every query queues, the tail latency grows
// with queue depth) and once with a bounded queue (excess is shed at
// submission). The gate: with shedding on, the p99 end-to-end latency of the
// *answered* queries must stay below the unbounded run's p99 — overload
// degrades capacity (some queries shed, all of them reported), never
// latency — and no query may vanish: answered + shed must cover the burst.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "benchutil.hpp"
#include "catalog/catalog.hpp"
#include "kb/objectives.hpp"
#include "reason/service.hpp"

using namespace lar;
using reason::QueryKind;

namespace {

constexpr unsigned kWorkers = 2;
constexpr std::size_t kQueueDepth = 2 * kWorkers;
constexpr int kOversubscription = 4;
constexpr int kBurst = static_cast<int>(kWorkers) * kOversubscription * 6;

std::vector<reason::QueryRequest> makeBurst(const kb::KnowledgeBase& kb) {
    std::vector<reason::QueryRequest> burst;
    for (int i = 0; i < kBurst; ++i) {
        reason::QueryRequest q;
        q.problem = reason::makeDefaultProblem(kb);
        q.problem.hardware[kb::HardwareClass::Server].count = 60;
        q.problem.hardware[kb::HardwareClass::Switch].count = 8;
        q.problem.hardware[kb::HardwareClass::Nic].count = 60;
        q.problem.workloads = {catalog::makeInferenceWorkload()};
        q.problem.objectivePriority = {kb::kObjLatency, kb::kObjHardwareCost};
        q.kind = i % 3 == 0 ? QueryKind::Optimize : QueryKind::Feasibility;
        q.id = std::to_string(i);
        burst.push_back(std::move(q));
    }
    return burst;
}

double percentile(std::vector<double> values, double p) {
    if (values.empty()) return 0.0;
    std::sort(values.begin(), values.end());
    const std::size_t idx = static_cast<std::size_t>(
        std::max(0.0, p * static_cast<double>(values.size()) - 1.0));
    return values[std::min(idx, values.size() - 1)];
}

constexpr std::size_t kRecorderCap = 16; // << kBurst: forces eviction pressure

struct RunStats {
    std::vector<double> latenciesMs; ///< answered queries, queue wait included
    int answered = 0;
    int shed = 0;
    int errored = 0;
    std::size_t recorderSize = 0;      ///< flight-recorder occupancy after the burst
    std::size_t recorderShedHeld = 0;  ///< shed traces the recorder retained
};

RunStats runOnce(const kb::KnowledgeBase& kb, bool shedding) {
    reason::ServiceOptions options;
    options.workers = kWorkers;
    options.maxQueueDepth = shedding ? kQueueDepth : 0;
    options.shedPolicy = reason::ShedPolicy::RejectNew;
    options.flightRecorderCapacity = kRecorderCap;
    reason::Service service(options);
    // Pre-warm the compilation cache so both runs measure solve + queue
    // latency, not one giant first-query compile.
    std::vector<reason::QueryRequest> burst = makeBurst(kb);
    (void)service.compilationFor(burst.front().problem);

    const std::vector<reason::QueryResult> results = service.runBatch(burst);
    RunStats stats;
    for (const reason::QueryResult& r : results) {
        if (r.verdict == reason::Verdict::Shed) {
            ++stats.shed;
        } else if (r.verdict == reason::Verdict::Error) {
            ++stats.errored;
        } else {
            ++stats.answered;
            stats.latenciesMs.push_back(r.trace.queueWaitMs + r.trace.totalMs);
        }
    }
    stats.recorderSize = service.flightRecorder().size();
    stats.recorderShedHeld =
        service.flightRecorder()
            .traces(0, 0.0, reason::Verdict::Shed)
            .size();
    return stats;
}

} // namespace

int main() {
    const kb::KnowledgeBase kb = catalog::buildKnowledgeBase();

    bench::printHeader("overload: " + std::to_string(kBurst) + " queries, " +
                       std::to_string(kWorkers) + " workers (" +
                       std::to_string(kOversubscription) +
                       "x oversubscription)");
    bench::printRow({"shedding", "answered", "shed", "p50", "p99"});
    bench::printRule();

    const RunStats off = runOnce(kb, /*shedding=*/false);
    const double p50Off = percentile(off.latenciesMs, 0.50);
    const double p99Off = percentile(off.latenciesMs, 0.99);
    bench::printRow({"off (unbounded queue)", bench::num(off.answered),
                     bench::num(off.shed), bench::ms(p50Off),
                     bench::ms(p99Off)});

    const RunStats on = runOnce(kb, /*shedding=*/true);
    const double p50On = percentile(on.latenciesMs, 0.50);
    const double p99On = percentile(on.latenciesMs, 0.99);
    bench::printRow({"on  (depth " + std::to_string(kQueueDepth) + ")",
                     bench::num(on.answered), bench::num(on.shed),
                     bench::ms(p50On), bench::ms(p99On)});

    // Accounting: nothing may vanish under overload.
    const bool offComplete =
        off.answered + off.shed + off.errored == kBurst && off.shed == 0;
    const bool onComplete = on.answered + on.shed + on.errored == kBurst;
    const bool somethingShed = on.shed > 0;
    const bool noErrors = off.errored == 0 && on.errored == 0;
    // The gate: bounding the queue must bound the tail.
    const bool tailBounded = p99On <= p99Off;
    // The flight recorder rode through the same burst: it must stay bounded
    // while still holding shed traces (failures are pinned, not sampled away).
    const bool recorderBounded = off.recorderSize <= kRecorderCap &&
                                 on.recorderSize <= kRecorderCap;
    const bool recorderKeptShed = on.recorderShedHeld > 0;

    std::printf("\nanswered+shed covers the burst: %s / %s\n",
                offComplete ? "yes" : "NO", onComplete ? "yes" : "NO");
    std::printf("shedding engaged at saturation: %s (%d shed)\n",
                somethingShed ? "yes" : "NO", on.shed);
    std::printf("p99 bounded by shedding: %s (%.1f ms vs %.1f ms unbounded)\n",
                tailBounded ? "yes" : "NO", p99On, p99Off);
    std::printf("flight recorder bounded: %s (%zu/%zu held, %zu shed traces "
                "retained)\n",
                recorderBounded && recorderKeptShed ? "yes" : "NO",
                on.recorderSize, kRecorderCap, on.recorderShedHeld);

    const bool ok = offComplete && onComplete && somethingShed && noErrors &&
                    tailBounded && recorderBounded && recorderKeptShed;
    std::printf("SVC2: %s\n", ok ? "overload sheds load, latency stays bounded"
                                 : "FAILED");
    return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
