// SEC51 — reproduces the three §5.1 architect queries over the case-study
// deployment, printing the engine's answers and solve times:
//
//  1. "I want to support more applications, but I can't change my servers."
//  2. "I have already deployed Sonata, and I don't want to change it unless
//      there are huge performance benefits or cost savings."
//  3. "Given my current workloads, is it worthwhile to deploy CXL memory
//      pooling?"
#include <cstdio>
#include <cstdlib>

#include "benchutil.hpp"
#include "catalog/catalog.hpp"
#include "kb/objectives.hpp"
#include "reason/engine.hpp"
#include "reason/validate.hpp"
#include "util/stopwatch.hpp"

using namespace lar;

namespace {

reason::Problem caseStudyProblem(const kb::KnowledgeBase& kb) {
    reason::Problem p = reason::makeDefaultProblem(kb);
    p.hardware[kb::HardwareClass::Server].count = 60;
    p.hardware[kb::HardwareClass::Switch].count = 8;
    p.hardware[kb::HardwareClass::Nic].count = 60;
    p.workloads = {catalog::makeInferenceWorkload()};
    p.objectivePriority = {kb::kObjLatency, kb::kObjHardwareCost,
                           kb::kObjMonitoring};
    p.requiredCapabilities = {catalog::kCapDetectQueueLength};
    return p;
}

int failures = 0;

void verdict(bool ok, const char* what) {
    if (!ok) {
        std::printf("  !! %s\n", what);
        ++failures;
    }
}

} // namespace

int main() {
    const kb::KnowledgeBase kb = catalog::buildKnowledgeBase();
    const reason::Problem base = caseStudyProblem(kb);

    // Baseline optimal design.
    bench::printHeader("baseline: §2.3 case study, optimized");
    util::Stopwatch timer;
    const auto baseline = reason::Engine(base).optimize();
    std::printf("(solved in %s)\n", bench::ms(timer.millis()).c_str());
    verdict(baseline.has_value(), "baseline infeasible");
    if (baseline) std::printf("%s", baseline->toString().c_str());

    // -- Query 1: more applications, servers frozen ---------------------------
    bench::printHeader("query 1: add workloads, servers cannot change");
    reason::Problem frozen = base;
    if (baseline)
        frozen.hardware[kb::HardwareClass::Server].pinnedModel =
            baseline->hardwareModel.at(kb::HardwareClass::Server);
    frozen.workloads.push_back(catalog::makeVideoWorkload());
    frozen.workloads.push_back(catalog::makeBatchWorkload());
    timer.reset();
    reason::Engine frozenEngine(frozen);
    const auto frozenReport = frozenEngine.checkFeasible();
    if (!frozenReport.feasible) {
        std::printf("with current servers: INFEASIBLE, because:\n");
        for (const std::string& rule : frozenReport.conflictingRules)
            std::printf("  - %s\n", rule.c_str());
        // What changes when servers may change after all?
        reason::Problem unfrozen = frozen;
        unfrozen.hardware[kb::HardwareClass::Server].pinnedModel.reset();
        const auto upgraded = reason::Engine(unfrozen).optimize();
        verdict(upgraded.has_value(), "even unfrozen servers infeasible");
        if (upgraded && baseline) {
            std::printf("unfreezing the servers gives a design again; ripple:\n");
            for (const std::string& change : baseline->diff(*upgraded))
                std::printf("  * %s\n", change.c_str());
        }
    } else {
        const auto design = frozenEngine.optimize();
        verdict(design.has_value(), "feasible but not optimizable");
        if (design && baseline) {
            std::printf("feasible with current servers; ripple vs baseline:\n");
            for (const std::string& change : baseline->diff(*design))
                std::printf("  * %s\n", change.c_str());
            if (baseline->diff(*design).empty())
                std::printf("  (no changes needed)\n");
        }
    }
    std::printf("(answered in %s)\n", bench::ms(timer.millis()).c_str());

    // -- Query 2: keep Sonata unless big win ----------------------------------
    bench::printHeader("query 2: keep Sonata unless huge benefits");
    timer.reset();
    const reason::RetentionReport retention =
        reason::analyzeRetention(base, "Sonata");
    verdict(retention.keeping.has_value(), "cannot deploy Sonata at all");
    verdict(retention.unpinned.has_value(), "free optimization infeasible");
    if (retention.keeping && retention.unpinned) {
        std::printf("objective costs keeping Sonata:");
        for (const auto c : retention.keeping->objectiveCosts)
            std::printf(" %lld", static_cast<long long>(c));
        std::printf("\nobjective costs free choice:  ");
        for (const auto c : retention.unpinned->objectiveCosts)
            std::printf(" %lld", static_cast<long long>(c));
        std::printf("\nextra hardware cost of keeping Sonata: $%.0f\n",
                    retention.extraHardwareCostUsd);
        constexpr std::int64_t kHugeBenefit = 100; // architect's threshold
        std::printf("worth switching at threshold %lld? %s\n",
                    static_cast<long long>(kHugeBenefit),
                    retention.worthSwitching(kHugeBenefit) ? "YES" : "NO — keep Sonata");
    }
    std::printf("(answered in %s)\n", bench::ms(timer.millis()).c_str());

    // -- Query 3: is CXL memory pooling worthwhile? ----------------------------
    bench::printHeader("query 3: is CXL memory pooling worthwhile?");
    timer.reset();
    reason::Problem memoryHeavy = base;
    memoryHeavy.workloads.push_back(catalog::makeStorageWorkload());
    // The storage team's rule: memory-intensive workloads need either big
    // boxes (≥512 GB RAM) or CXL memory pooling.
    memoryHeavy.extraConstraint = kb::Requirement::anyOf(
        {kb::Requirement::hardwareCmp(kb::HardwareClass::Server, kb::kAttrRamGb,
                                      kb::CmpOp::Ge, 512.0),
         kb::Requirement::hardwareHas(kb::HardwareClass::Server,
                                      kb::kAttrCxlSupported)});
    reason::Problem noCxl = memoryHeavy;
    for (const kb::HardwareSpec* h : kb.byClass(kb::HardwareClass::Server))
        if (!h->boolAttr(kb::kAttrCxlSupported).value_or(false))
            noCxl.hardware[kb::HardwareClass::Server].candidateModels.push_back(
                h->model);
    const reason::ScenarioComparison cxl =
        reason::compareScenarios(noCxl, memoryHeavy);
    verdict(cxl.a.has_value() && cxl.b.has_value(), "CXL comparison infeasible");
    if (cxl.a && cxl.b) {
        std::printf("optimal without CXL-capable servers: %s ($%.0f)\n",
                    cxl.a->hardwareModel.at(kb::HardwareClass::Server).c_str(),
                    cxl.a->hardwareCostUsd);
        std::printf("optimal with CXL allowed:           %s ($%.0f)\n",
                    cxl.b->hardwareModel.at(kb::HardwareClass::Server).c_str(),
                    cxl.b->hardwareCostUsd);
        const bool cxlChosen =
            kb.hardware(cxl.b->hardwareModel.at(kb::HardwareClass::Server))
                .boolAttr(kb::kAttrCxlSupported)
                .value_or(false);
        std::printf("verdict: CXL pooling %s for these workloads\n",
                    cxlChosen ? "IS worthwhile" : "is NOT worth paying for");
    }
    std::printf("(answered in %s)\n", bench::ms(timer.millis()).c_str());

    std::printf("\nSEC51 reproduction: %s\n",
                failures == 0 ? "all queries answered" : "FAILED");
    return failures == 0 ? EXIT_SUCCESS : EXIT_FAILURE;
}
