// ABL1 — inprocessing ablation: the full pipeline (subsumption,
// vivification, probing, equivalence reduction, bounded variable
// elimination) against the identical solver with inprocessing disabled.
//
// Two workload families, timed on-vs-off:
//
//   * planted-hard instances — random 3-SAT at the hard density
//     (4.26 clauses/var) obfuscated the way machine-generated network
//     encodings are: equivalence alias chains (each base variable hides
//     behind a chain of aliases, occurrences rewritten to random chain
//     members), Tseitin-style auxiliary definitions (d ≡ l1∨l2), and
//     redundant superset copies of original clauses. The redundancy is
//     exactly what the inprocessing pipeline removes; the plain solver has
//     to search through it.
//   * paper-KB queries — feasibility and lexicographic optimization on the
//     compiled case-study knowledge base, end-to-end through the Engine
//     with the `simplify` query option on vs off.
//
// Verdicts must agree on every row (checked; a mismatch fails the bench).
//
// Gates:
//   * every on/off verdict pair agrees (where both finished);
//   * median on-vs-off speedup >= 1.15x across all rows, OR the simplifying
//     configuration solves strictly more instances within the per-instance
//     conflict budget.
//
// Writes machine-readable results to BENCH_solver_ablation.json (override
// with the first non-flag argument). `--smoke` shrinks sizes for the
// sanitizer leg of scripts/verify.sh and gates only on verdict agreement
// (wall-clock ratios are meaningless under instrumentation).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "benchutil.hpp"
#include "catalog/catalog.hpp"
#include "json/value.hpp"
#include "json/write.hpp"
#include "reason/engine.hpp"
#include "sat/dimacs.hpp"
#include "sat/solver.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

using namespace lar;
using sat::Lit;
using sat::mkLit;
using sat::SolveResult;
using sat::Var;

namespace {

constexpr double kSpeedupGate = 1.15;

struct BenchConfig {
    int baseVars = 140;         ///< variables in the hidden 3-SAT core
    int instances = 9;          ///< planted-hard rows
    int aliasChainLen = 4;      ///< aliases per obfuscated base variable
    double aliasFraction = 0.7; ///< base vars that get an alias chain
    int tseitinDefs = 60;       ///< auxiliary d ≡ (l1 ∨ l2) definitions
    double supersetFraction = 0.5; ///< clauses duplicated with junk literals
    std::int64_t conflictBudget = 400'000; ///< per solve; Unknown = unsolved
    int kbRepeats = 5;          ///< engine query repetitions per row
};

BenchConfig smokeConfig() {
    BenchConfig cfg;
    cfg.baseVars = 45;
    cfg.instances = 4;
    cfg.tseitinDefs = 20;
    cfg.conflictBudget = 60'000;
    cfg.kbRepeats = 1;
    return cfg;
}

/// A hard random 3-SAT core wrapped in the redundancy layers above. The
/// wrapped instance is equisatisfiable with the core by construction:
/// aliases are definitionally equal to their base variable, auxiliary
/// variables are definitionally (l1 ∨ l2), and superset clauses are
/// subsumed by the originals they copy.
sat::Cnf makeObfuscated(util::Rng& rng, const BenchConfig& cfg) {
    sat::Cnf cnf;
    const int base = cfg.baseVars;
    cnf.numVars = base;

    // Hidden core: uniform 3-SAT at the phase-transition density.
    const int coreClauses = static_cast<int>(base * 4.26);
    for (int c = 0; c < coreClauses; ++c) {
        std::vector<Lit> clause;
        std::vector<char> used(static_cast<std::size_t>(base), 0);
        while (clause.size() < 3) {
            const auto v =
                static_cast<Var>(rng.below(static_cast<std::uint64_t>(base)));
            if (used[static_cast<std::size_t>(v)]) continue;
            used[static_cast<std::size_t>(v)] = 1;
            clause.push_back(mkLit(v, rng.chance(0.5)));
        }
        cnf.clauses.push_back(std::move(clause));
    }

    // Alias chains: v ≡ a1 ≡ … ≡ ak, then rewrite core occurrences of v to
    // random members of its chain. Equivalence substitution collapses the
    // chains back to one representative.
    std::vector<std::vector<Var>> chains(static_cast<std::size_t>(base));
    for (Var v = 0; v < base; ++v) {
        if (!rng.chance(cfg.aliasFraction)) continue;
        Var prev = v;
        for (int i = 0; i < cfg.aliasChainLen; ++i) {
            const Var alias = cnf.numVars++;
            cnf.clauses.push_back({~mkLit(prev), mkLit(alias)});
            cnf.clauses.push_back({mkLit(prev), ~mkLit(alias)});
            chains[static_cast<std::size_t>(v)].push_back(alias);
            prev = alias;
        }
    }
    for (int c = 0; c < coreClauses; ++c) {
        for (Lit& l : cnf.clauses[static_cast<std::size_t>(c)]) {
            const auto& chain = chains[static_cast<std::size_t>(l.var())];
            if (chain.empty() || rng.chance(0.4)) continue;
            const Var alias = chain[rng.below(chain.size())];
            l = mkLit(alias, l.sign());
        }
    }

    // Tseitin-style auxiliaries: d ≡ (l1 ∨ l2) over random core literals.
    // The definitions determine d, so bounded variable elimination (or the
    // plain solver, the hard way) can discharge them.
    for (int i = 0; i < cfg.tseitinDefs; ++i) {
        const auto v1 =
            static_cast<Var>(rng.below(static_cast<std::uint64_t>(base)));
        auto v2 = v1;
        while (v2 == v1)
            v2 = static_cast<Var>(rng.below(static_cast<std::uint64_t>(base)));
        const Lit l1 = mkLit(v1, rng.chance(0.5));
        const Lit l2 = mkLit(v2, rng.chance(0.5));
        const Lit d = mkLit(cnf.numVars++);
        cnf.clauses.push_back({~d, l1, l2});
        cnf.clauses.push_back({d, ~l1});
        cnf.clauses.push_back({d, ~l2});
    }

    // Superset copies: originals with junk literals appended — pure
    // subsumption fodder.
    const std::size_t before = cnf.clauses.size();
    for (std::size_t c = 0; c < before; ++c) {
        if (!rng.chance(cfg.supersetFraction)) continue;
        std::vector<Lit> fat = cnf.clauses[c];
        const int extra = 2 + static_cast<int>(rng.below(3));
        for (int e = 0; e < extra; ++e) {
            const auto v = static_cast<Var>(
                rng.below(static_cast<std::uint64_t>(cnf.numVars)));
            const Lit l = mkLit(v, rng.chance(0.5));
            bool taut = false;
            for (const Lit existing : fat)
                if (existing.var() == l.var()) taut = true;
            if (!taut) fat.push_back(l);
        }
        cnf.clauses.push_back(std::move(fat));
    }

    for (std::size_t i = cnf.clauses.size(); i > 1; --i)
        std::swap(cnf.clauses[i - 1], cnf.clauses[rng.below(i)]);
    return cnf;
}

struct SolveRow {
    SolveResult result = SolveResult::Unknown;
    double millis = 0.0;
    std::uint64_t conflicts = 0;
    std::uint64_t subsumed = 0;
    std::uint64_t eliminated = 0;
};

SolveRow runSolver(const sat::Cnf& cnf, bool simplifyOn,
                   std::int64_t conflictBudget) {
    sat::SolverOptions opts;
    opts.conflictBudget = conflictBudget;
    opts.simplify.enable = simplifyOn;
    sat::Solver solver(opts);
    loadCnf(solver, cnf);
    SolveRow row;
    const util::Stopwatch timer;
    row.result = solver.solve();
    row.millis = timer.millis();
    row.conflicts = solver.stats().conflicts;
    row.subsumed = solver.stats().subsumedClauses;
    row.eliminated = solver.stats().eliminatedVars;
    return row;
}

const char* verdictName(SolveResult r) {
    switch (r) {
        case SolveResult::Sat: return "sat";
        case SolveResult::Unsat: return "unsat";
        case SolveResult::Unknown: return "unknown";
    }
    return "?";
}

reason::QueryOptions queryOptions(bool simplifyOn) {
    reason::QueryOptions options;
    options.simplify = simplifyOn;
    return options;
}

reason::Problem caseStudyProblem(const kb::KnowledgeBase& kb) {
    reason::Problem p = reason::makeDefaultProblem(kb);
    p.hardware[kb::HardwareClass::Server].count = 60;
    p.hardware[kb::HardwareClass::Switch].count = 8;
    p.hardware[kb::HardwareClass::Nic].count = 60;
    p.workloads = {catalog::makeInferenceWorkload()};
    p.requiredCapabilities = {catalog::kCapDetectQueueLength};
    return p;
}

std::string ratioStr(double r) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "%.2fx", r);
    return buf;
}

} // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    std::string outPath = "BENCH_solver_ablation.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
        else outPath = argv[i];
    }
    const BenchConfig cfg = smoke ? smokeConfig() : BenchConfig{};

    bench::printHeader(
        "ABL1: CDCL inprocessing ablation, pipeline on vs off");
    std::printf("planted-hard: %d instances, %d core vars, alias chains + "
                "tseitin + supersets%s\n",
                cfg.instances, cfg.baseVars, smoke ? " (smoke)" : "");
    bench::printRule();
    bench::printRow({"instance", "verdict", "off", "on", "speedup"});
    bench::printRule();

    util::Rng rng(20260808);
    json::Array rows;
    std::vector<double> speedups;
    bool verdictsAgree = true;
    int solvedOn = 0;
    int solvedOff = 0;

    for (int i = 0; i < cfg.instances; ++i) {
        const sat::Cnf cnf = makeObfuscated(rng, cfg);
        const SolveRow off = runSolver(cnf, false, cfg.conflictBudget);
        const SolveRow on = runSolver(cnf, true, cfg.conflictBudget);

        const bool offSolved = off.result != SolveResult::Unknown;
        const bool onSolved = on.result != SolveResult::Unknown;
        solvedOff += offSolved ? 1 : 0;
        solvedOn += onSolved ? 1 : 0;
        const bool agree =
            !offSolved || !onSolved || off.result == on.result;
        verdictsAgree = verdictsAgree && agree;
        const double speedup = on.millis > 0.0 ? off.millis / on.millis : 1.0;
        speedups.push_back(speedup);

        const std::string name = "planted_" + std::to_string(i) +
                                 (agree ? "" : "  VERDICT MISMATCH");
        bench::printRow({name, verdictName(on.result), bench::ms(off.millis),
                         bench::ms(on.millis), ratioStr(speedup)});

        json::Value row;
        row["name"] = "planted_" + std::to_string(i);
        row["vars"] = static_cast<std::int64_t>(cnf.numVars);
        row["clauses"] = static_cast<std::int64_t>(cnf.clauses.size());
        row["verdict_on"] = verdictName(on.result);
        row["verdict_off"] = verdictName(off.result);
        row["off_ms"] = off.millis;
        row["on_ms"] = on.millis;
        row["speedup"] = speedup;
        row["off_conflicts"] = static_cast<std::int64_t>(off.conflicts);
        row["on_conflicts"] = static_cast<std::int64_t>(on.conflicts);
        row["subsumed"] = static_cast<std::int64_t>(on.subsumed);
        row["eliminated_vars"] = static_cast<std::int64_t>(on.eliminated);
        row["verdicts_agree"] = agree;
        rows.push_back(std::move(row));
    }

    // Paper-KB rows: the end-to-end engine path, query option on vs off.
    const kb::KnowledgeBase kb = catalog::buildKnowledgeBase();
    struct KbRow {
        const char* name;
        double offMs;
        double onMs;
        bool agree;
    };
    std::vector<KbRow> kbRows;
    {
        bool feasOff = false;
        bool feasOn = false;
        const util::Stopwatch offTimer;
        for (int r = 0; r < cfg.kbRepeats; ++r)
            feasOff = reason::Engine(caseStudyProblem(kb), queryOptions(false))
                          .checkFeasible()
                          .feasible;
        const double offMs = offTimer.millis();
        const util::Stopwatch onTimer;
        for (int r = 0; r < cfg.kbRepeats; ++r)
            feasOn = reason::Engine(caseStudyProblem(kb), queryOptions(true))
                         .checkFeasible()
                         .feasible;
        kbRows.push_back(
            {"kb_feasibility", offMs, onTimer.millis(), feasOff == feasOn});
    }
    {
        std::vector<std::int64_t> costsOff;
        std::vector<std::int64_t> costsOn;
        const util::Stopwatch offTimer;
        for (int r = 0; r < cfg.kbRepeats; ++r) {
            const auto plan =
                reason::Engine(caseStudyProblem(kb), queryOptions(false))
                    .optimize();
            costsOff = plan ? plan->objectiveCosts
                            : std::vector<std::int64_t>{};
        }
        const double offMs = offTimer.millis();
        const util::Stopwatch onTimer;
        for (int r = 0; r < cfg.kbRepeats; ++r) {
            const auto plan =
                reason::Engine(caseStudyProblem(kb), queryOptions(true))
                    .optimize();
            costsOn = plan ? plan->objectiveCosts
                           : std::vector<std::int64_t>{};
        }
        kbRows.push_back(
            {"kb_optimize", offMs, onTimer.millis(), costsOff == costsOn});
    }
    for (const KbRow& r : kbRows) {
        verdictsAgree = verdictsAgree && r.agree;
        const double speedup = r.onMs > 0.0 ? r.offMs / r.onMs : 1.0;
        speedups.push_back(speedup);
        bench::printRow({std::string(r.name) +
                             (r.agree ? "" : "  VERDICT MISMATCH"),
                         "-", bench::ms(r.offMs), bench::ms(r.onMs),
                         ratioStr(speedup)});
        json::Value row;
        row["name"] = r.name;
        row["off_ms"] = r.offMs;
        row["on_ms"] = r.onMs;
        row["speedup"] = speedup;
        row["verdicts_agree"] = r.agree;
        rows.push_back(std::move(row));
    }
    bench::printRule();

    std::sort(speedups.begin(), speedups.end());
    const double median = speedups[speedups.size() / 2];
    std::printf("median speedup %.2fx; solved within budget: on %d/%d, "
                "off %d/%d\n",
                median, solvedOn, cfg.instances, solvedOff, cfg.instances);

    const bool fast = median >= kSpeedupGate || solvedOn > solvedOff;
    std::printf("gate: every verdict pair agrees .............. %s\n",
                verdictsAgree ? "yes" : "NO");
    if (smoke) {
        // Smoke mode runs under sanitizer instrumentation where wall-clock
        // ratios are meaningless; only correctness gates apply.
        std::printf("gate: median >= %.2fx or more solved ......... skipped "
                    "(smoke: timing not gated)\n",
                    kSpeedupGate);
    } else {
        std::printf("gate: median >= %.2fx or more solved ......... %s\n",
                    kSpeedupGate, fast ? "yes" : "NO");
    }
    const bool pass = verdictsAgree && (smoke || fast);

    json::Value report;
    report["smoke"] = smoke;
    report["rows"] = json::Value(std::move(rows));
    report["median_speedup"] = median;
    report["solved_on"] = static_cast<std::int64_t>(solvedOn);
    report["solved_off"] = static_cast<std::int64_t>(solvedOff);
    report["verdicts_agree"] = verdictsAgree;
    report["pass"] = pass;
    if (std::FILE* f = std::fopen(outPath.c_str(), "w")) {
        const std::string text = json::write(report);
        std::fwrite(text.data(), 1, text.size(), f);
        std::fputc('\n', f);
        std::fclose(f);
        std::printf("wrote %s\n", outPath.c_str());
    } else {
        std::printf("could not write %s\n", outPath.c_str());
        return EXIT_FAILURE;
    }
    std::printf("%s\n", pass ? "PASS" : "FAIL");
    return pass ? EXIT_SUCCESS : EXIT_FAILURE;
}
