// ABL1 — ablation of the CDCL substrate's features (google-benchmark).
// Compares the full configuration against variants with VSIDS, restarts,
// phase saving, clause-DB reduction, or learning disabled, on:
//   * random 3-SAT at the hard density (4.26 clauses/var),
//   * pigeonhole (UNSAT, resolution-hard),
//   * the compiled case-study reasoning query.
#include <benchmark/benchmark.h>

#include "catalog/catalog.hpp"
#include "kb/objectives.hpp"
#include "reason/engine.hpp"
#include "sat/dimacs.hpp"
#include "sat/solver.hpp"
#include "util/rng.hpp"

using namespace lar;

namespace {

sat::SolverOptions configFor(int variant) {
    sat::SolverOptions opts;
    switch (variant) {
        case 0: break; // full CDCL
        case 1: opts.useVsids = false; break;
        case 2: opts.useRestarts = false; break;
        case 3: opts.usePhaseSaving = false; break;
        case 4: opts.reduceDb = false; break;
        case 5: opts.useLearning = false; break;
    }
    return opts;
}

const char* variantName(int variant) {
    switch (variant) {
        case 0: return "full";
        case 1: return "no_vsids";
        case 2: return "no_restarts";
        case 3: return "no_phase_saving";
        case 4: return "no_db_reduction";
        case 5: return "dpll";
    }
    return "?";
}

sat::Cnf random3Sat(int vars, std::uint64_t seed) {
    util::Rng rng(seed);
    sat::Cnf cnf;
    cnf.numVars = vars;
    const int clauses = static_cast<int>(vars * 4.26);
    for (int c = 0; c < clauses; ++c) {
        std::vector<sat::Lit> clause;
        std::vector<char> used(static_cast<std::size_t>(vars), 0);
        while (clause.size() < 3) {
            const auto v = static_cast<sat::Var>(rng.below(static_cast<std::uint64_t>(vars)));
            if (used[static_cast<std::size_t>(v)]) continue;
            used[static_cast<std::size_t>(v)] = 1;
            clause.push_back(sat::mkLit(v, rng.chance(0.5)));
        }
        cnf.clauses.push_back(std::move(clause));
    }
    return cnf;
}

sat::Cnf pigeonhole(int holes) {
    sat::Cnf cnf;
    const int pigeons = holes + 1;
    cnf.numVars = pigeons * holes;
    const auto var = [holes](int p, int h) { return p * holes + h; };
    for (int p = 0; p < pigeons; ++p) {
        std::vector<sat::Lit> clause;
        for (int h = 0; h < holes; ++h) clause.push_back(sat::mkLit(var(p, h)));
        cnf.clauses.push_back(std::move(clause));
    }
    for (int h = 0; h < holes; ++h)
        for (int p1 = 0; p1 < pigeons; ++p1)
            for (int p2 = p1 + 1; p2 < pigeons; ++p2)
                cnf.clauses.push_back(
                    {~sat::mkLit(var(p1, h)), ~sat::mkLit(var(p2, h))});
    return cnf;
}

void BM_Random3Sat(benchmark::State& state) {
    const int variant = static_cast<int>(state.range(0));
    const int vars = static_cast<int>(state.range(1));
    // DPLL cannot finish hard random instances at useful sizes; shrink.
    const int effectiveVars = variant == 5 ? std::min(vars, 40) : vars;
    std::uint64_t solved = 0;
    std::uint64_t conflicts = 0;
    for (auto _ : state) {
        const sat::Cnf cnf = random3Sat(effectiveVars, 100 + solved);
        sat::Solver solver(configFor(variant));
        loadCnf(solver, cnf);
        benchmark::DoNotOptimize(solver.solve());
        conflicts += solver.stats().conflicts;
        ++solved;
    }
    state.SetLabel(variantName(variant));
    state.counters["conflicts"] = benchmark::Counter(
        static_cast<double>(conflicts), benchmark::Counter::kAvgIterations);
}

void BM_Pigeonhole(benchmark::State& state) {
    const int variant = static_cast<int>(state.range(0));
    const int holes = static_cast<int>(state.range(1));
    for (auto _ : state) {
        sat::Solver solver(configFor(variant));
        loadCnf(solver, pigeonhole(holes));
        benchmark::DoNotOptimize(solver.solve());
    }
    state.SetLabel(variantName(variant));
}

void BM_ReasoningQuery(benchmark::State& state) {
    // The solver options only apply to our CDCL backend; this measures the
    // end-to-end feasibility query on the compiled case study.
    static const kb::KnowledgeBase kb = catalog::buildKnowledgeBase();
    for (auto _ : state) {
        reason::Problem p = reason::makeDefaultProblem(kb);
        p.hardware[kb::HardwareClass::Server].count = 60;
        p.hardware[kb::HardwareClass::Switch].count = 8;
        p.hardware[kb::HardwareClass::Nic].count = 60;
        p.workloads = {catalog::makeInferenceWorkload()};
        p.requiredCapabilities = {catalog::kCapDetectQueueLength};
        reason::Engine engine(p);
        benchmark::DoNotOptimize(engine.checkFeasible().feasible);
    }
}

} // namespace

BENCHMARK(BM_Random3Sat)
    ->ArgsProduct({{0, 1, 2, 3, 4, 5}, {60, 100}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Pigeonhole)
    ->ArgsProduct({{0, 1, 2, 3, 4, 5}, {7}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ReasoningQuery)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
