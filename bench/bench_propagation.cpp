// PROP1 — propagation throughput: clause arena + binary graph vs the old
// pointer-chasing layout.
//
// Two propagation engines run the identical decision schedule over the same
// planted-solution instances:
//
//   * pointer  — the pre-redesign layout: every clause heap-allocated behind
//     a unique_ptr, watch lists of Clause*, no blocker literals, binary
//     clauses going through the full watched-clause machinery;
//   * arena    — the current layout: long clauses packed in sat::ClauseArena
//     (32-bit ClauseRef watchers with blocker literals), binary clauses in a
//     dedicated implication graph that never touches the arena.
//
// Each instance plants a satisfying assignment and every decision is a
// planted literal, so unit propagation can only ever derive planted-true
// literals: no conflicts, and both engines reach the same fixpoint with the
// same enqueue count (checked — a mismatch fails the bench). That makes
// props/sec a like-for-like measure of the memory layout alone.
//
// Gates:
//   * both engines propagate the same literal count on every instance;
//   * median arena/pointer throughput ratio >= 1.2x across the scaling
//     instances.
//
// Writes machine-readable results to BENCH_propagation.json (override the
// path with argv[1]).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "benchutil.hpp"
#include "json/value.hpp"
#include "json/write.hpp"
#include "sat/arena.hpp"
#include "sat/types.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

using namespace lar;
using sat::ClauseRef;
using sat::lbool;
using sat::Lit;
using sat::mkLit;
using sat::Var;

namespace {

constexpr double kSpeedupGate = 1.2;
constexpr int kRounds = 24;           // full assignment passes per timing run
constexpr double kBinaryFraction = 0.45;
constexpr int kClausesPerVar = 12;    // dense: well above the 3-SAT threshold

struct Instance {
    int numVars = 0;
    std::vector<std::vector<Lit>> clauses;
    std::vector<Lit> schedule; ///< planted literals in decision order
};

/// Generates a dense instance with a planted satisfying assignment and a
/// shuffled decision schedule of exactly the planted literals. Decisions
/// drawn from the planted model mean any literal forced by unit propagation
/// is also planted-true, so neither engine ever hits a conflict and both
/// compute the same propagation fixpoint.
Instance makeInstance(util::Rng& rng, int numVars) {
    Instance out;
    out.numVars = numVars;
    std::vector<bool> planted(static_cast<std::size_t>(numVars));
    for (auto&& b : planted) b = rng.chance(0.5);

    const int numClauses = numVars * kClausesPerVar;
    std::vector<Var> vars;
    for (int c = 0; c < numClauses; ++c) {
        const std::size_t len =
            rng.chance(kBinaryFraction) ? 2 : 3 + rng.below(7); // 2 or 3..9
        vars.clear();
        while (vars.size() < len) {
            const Var v = static_cast<Var>(rng.below(
                static_cast<std::uint64_t>(numVars)));
            if (std::find(vars.begin(), vars.end(), v) == vars.end())
                vars.push_back(v);
        }
        std::vector<Lit> clause;
        clause.reserve(len);
        for (const Var v : vars)
            clause.push_back(mkLit(v, rng.chance(0.5)));
        // Force one literal to agree with the planted assignment so the
        // clause is satisfied by it.
        const std::size_t pick = rng.below(len);
        const Var pv = clause[pick].var();
        clause[pick] = mkLit(pv, !planted[static_cast<std::size_t>(pv)]);
        out.clauses.push_back(std::move(clause));
    }

    for (Var v = 0; v < numVars; ++v)
        out.schedule.push_back(
            mkLit(v, !planted[static_cast<std::size_t>(v)]));
    for (std::size_t i = out.schedule.size(); i > 1; --i)
        std::swap(out.schedule[i - 1], out.schedule[rng.below(i)]);
    return out;
}

// ---------------------------------------------------------------------------
// Pointer engine: the layout the redesign replaced.

struct PtrClause {
    std::vector<Lit> lits;
};

class PtrEngine {
public:
    explicit PtrEngine(const Instance& instance) {
        assigns_.assign(static_cast<std::size_t>(instance.numVars),
                        lbool::Undef);
        watches_.resize(static_cast<std::size_t>(instance.numVars) * 2);
        for (const auto& lits : instance.clauses) {
            auto clause = std::make_unique<PtrClause>(PtrClause{lits});
            watch(~lits[0]).push_back(clause.get());
            watch(~lits[1]).push_back(clause.get());
            clauses_.push_back(std::move(clause));
        }
    }

    void decide(Lit p) {
        if (value(p) != lbool::Undef) return;
        enqueue(p);
        propagate();
    }

    void reset() {
        for (const Lit p : trail_)
            assigns_[static_cast<std::size_t>(p.var())] = lbool::Undef;
        trail_.clear();
        qhead_ = 0;
    }

    [[nodiscard]] std::uint64_t propagations() const { return props_; }

private:
    [[nodiscard]] lbool value(Lit p) const {
        const lbool v = assigns_[static_cast<std::size_t>(p.var())];
        return p.sign() ? ~v : v;
    }

    std::vector<PtrClause*>& watch(Lit p) {
        return watches_[static_cast<std::size_t>(p.index())];
    }

    void enqueue(Lit p) {
        assigns_[static_cast<std::size_t>(p.var())] =
            sat::fromBool(!p.sign());
        trail_.push_back(p);
        ++props_;
    }

    void propagate() {
        while (qhead_ < trail_.size()) {
            const Lit p = trail_[qhead_++];
            auto& ws = watch(p);
            std::size_t i = 0;
            std::size_t j = 0;
            const Lit falseLit = ~p;
            while (i < ws.size()) {
                PtrClause* c = ws[i++];
                auto& lits = c->lits;
                if (lits[0] == falseLit) std::swap(lits[0], lits[1]);
                const Lit first = lits[0];
                if (value(first) == lbool::True) {
                    ws[j++] = c;
                    continue;
                }
                bool moved = false;
                for (std::size_t k = 2; k < lits.size(); ++k) {
                    if (value(lits[k]) != lbool::False) {
                        std::swap(lits[1], lits[k]);
                        watch(~lits[1]).push_back(c);
                        moved = true;
                        break;
                    }
                }
                if (moved) continue;
                ws[j++] = c;
                if (value(first) == lbool::False) {
                    // Unreachable on planted schedules; keep the engine
                    // honest anyway.
                    while (i < ws.size()) ws[j++] = ws[i++];
                    ws.resize(j);
                    qhead_ = trail_.size();
                    return;
                }
                enqueue(first);
            }
            ws.resize(j);
        }
    }

    std::vector<std::unique_ptr<PtrClause>> clauses_;
    std::vector<std::vector<PtrClause*>> watches_;
    std::vector<lbool> assigns_;
    std::vector<Lit> trail_;
    std::size_t qhead_ = 0;
    std::uint64_t props_ = 0;
};

// ---------------------------------------------------------------------------
// Arena engine: mirrors Solver::propagate()'s current hot loop.

class ArenaEngine {
public:
    explicit ArenaEngine(const Instance& instance) {
        assigns_.assign(static_cast<std::size_t>(instance.numVars),
                        lbool::Undef);
        watches_.resize(static_cast<std::size_t>(instance.numVars) * 2);
        binWatches_.resize(static_cast<std::size_t>(instance.numVars) * 2);
        for (const auto& lits : instance.clauses) {
            if (lits.size() == 2) {
                binWatch(~lits[0]).push_back(lits[1]);
                binWatch(~lits[1]).push_back(lits[0]);
                continue;
            }
            const ClauseRef ref = arena_.alloc(lits, false, 0);
            watch(~lits[0]).push_back({ref, lits[1]});
            watch(~lits[1]).push_back({ref, lits[0]});
        }
    }

    void decide(Lit p) {
        if (value(p) != lbool::Undef) return;
        enqueue(p);
        propagate();
    }

    void reset() {
        for (const Lit p : trail_)
            assigns_[static_cast<std::size_t>(p.var())] = lbool::Undef;
        trail_.clear();
        qhead_ = 0;
    }

    [[nodiscard]] std::uint64_t propagations() const { return props_; }

private:
    struct Watcher {
        ClauseRef ref;
        Lit blocker;
    };

    [[nodiscard]] lbool value(Lit p) const {
        const lbool v = assigns_[static_cast<std::size_t>(p.var())];
        return p.sign() ? ~v : v;
    }

    std::vector<Watcher>& watch(Lit p) {
        return watches_[static_cast<std::size_t>(p.index())];
    }

    std::vector<Lit>& binWatch(Lit p) {
        return binWatches_[static_cast<std::size_t>(p.index())];
    }

    void enqueue(Lit p) {
        assigns_[static_cast<std::size_t>(p.var())] =
            sat::fromBool(!p.sign());
        trail_.push_back(p);
        ++props_;
    }

    void propagate() {
        while (qhead_ < trail_.size()) {
            const Lit p = trail_[qhead_++];

            for (const Lit other : binWatch(p)) {
                const lbool v = value(other);
                if (v == lbool::Undef) enqueue(other);
                else if (v == lbool::False) { // unreachable on planted runs
                    qhead_ = trail_.size();
                    return;
                }
            }

            auto& ws = watch(p);
            std::size_t i = 0;
            std::size_t j = 0;
            const Lit falseLit = ~p;
            while (i < ws.size()) {
                const Watcher w = ws[i++];
                if (value(w.blocker) == lbool::True) {
                    ws[j++] = w;
                    continue;
                }
                const ClauseRef ref = w.ref;
                if (arena_.lit(ref, 0) == falseLit) arena_.swapLits(ref, 0, 1);
                const Lit first = arena_.lit(ref, 0);
                if (first != w.blocker && value(first) == lbool::True) {
                    ws[j++] = {ref, first};
                    continue;
                }
                const std::uint32_t size = arena_.size(ref);
                bool moved = false;
                for (std::uint32_t k = 2; k < size; ++k) {
                    const Lit lk = arena_.lit(ref, k);
                    if (value(lk) != lbool::False) {
                        arena_.swapLits(ref, 1, k);
                        watch(~lk).push_back({ref, first});
                        moved = true;
                        break;
                    }
                }
                if (moved) continue;
                ws[j++] = {ref, first};
                if (value(first) == lbool::False) { // unreachable, see above
                    while (i < ws.size()) ws[j++] = ws[i++];
                    ws.resize(j);
                    qhead_ = trail_.size();
                    return;
                }
                enqueue(first);
            }
            ws.resize(j);
        }
    }

    sat::ClauseArena arena_;
    std::vector<std::vector<Watcher>> watches_;
    std::vector<std::vector<Lit>> binWatches_;
    std::vector<lbool> assigns_;
    std::vector<Lit> trail_;
    std::size_t qhead_ = 0;
    std::uint64_t props_ = 0;
};

/// Runs `kRounds` full assignment passes (plus one untimed warmup) and
/// returns propagations per second.
template <typename Engine>
double throughput(const Instance& instance, std::uint64_t& outProps) {
    Engine engine(instance);
    for (const Lit p : instance.schedule) engine.decide(p); // warmup
    engine.reset();
    const std::uint64_t before = engine.propagations();
    const util::Stopwatch timer;
    for (int round = 0; round < kRounds; ++round) {
        for (const Lit p : instance.schedule) engine.decide(p);
        engine.reset();
    }
    const double seconds = timer.millis() / 1000.0;
    outProps = engine.propagations() - before;
    return seconds > 0.0 ? static_cast<double>(outProps) / seconds : 0.0;
}

std::string mprops(double propsPerSec) {
    char buf[24];
    std::snprintf(buf, sizeof buf, "%.1fM/s", propsPerSec / 1e6);
    return buf;
}

} // namespace

int main(int argc, char** argv) {
    const std::string outPath =
        argc > 1 ? argv[1] : "BENCH_propagation.json";
    bench::printHeader(
        "PROP1: propagation throughput, arena vs pointer chasing");
    std::printf("planted dense instances, %d clauses/var, %.0f%% binary, "
                "%d rounds each\n",
                kClausesPerVar, kBinaryFraction * 100.0, kRounds);
    bench::printRule();
    bench::printRow({"vars", "props", "pointer", "arena", "speedup"});
    bench::printRule();

    util::Rng rng(20260808);
    json::Array rows;
    std::vector<double> speedups;
    bool propsAgree = true;
    for (const int numVars : {400, 800, 1600, 3200, 6400}) {
        const Instance instance = makeInstance(rng, numVars);
        std::uint64_t ptrProps = 0;
        std::uint64_t arenaProps = 0;
        const double ptrRate = throughput<PtrEngine>(instance, ptrProps);
        const double arenaRate = throughput<ArenaEngine>(instance, arenaProps);
        const bool agree = ptrProps == arenaProps;
        propsAgree = propsAgree && agree;
        const double speedup = ptrRate > 0.0 ? arenaRate / ptrRate : 0.0;
        speedups.push_back(speedup);

        char ratio[16];
        std::snprintf(ratio, sizeof ratio, "%.2fx", speedup);
        bench::printRow({std::to_string(numVars) +
                             (agree ? "" : "  PROP COUNT MISMATCH"),
                         bench::num(static_cast<long long>(arenaProps)),
                         mprops(ptrRate), mprops(arenaRate), ratio});

        json::Value row;
        row["vars"] = static_cast<std::int64_t>(numVars);
        row["propagations"] = static_cast<std::int64_t>(arenaProps);
        row["pointer_props_per_sec"] = ptrRate;
        row["arena_props_per_sec"] = arenaRate;
        row["speedup"] = speedup;
        row["props_agree"] = agree;
        rows.push_back(std::move(row));
    }
    bench::printRule();

    std::sort(speedups.begin(), speedups.end());
    const double median = speedups[speedups.size() / 2];
    std::printf("median speedup %.2fx\n", median);

    const bool fast = median >= kSpeedupGate;
    std::printf("gate: identical propagation counts ........... %s\n",
                propsAgree ? "yes" : "NO");
    std::printf("gate: median speedup >= %.1fx ................. %s\n",
                kSpeedupGate, fast ? "yes" : "NO");
    const bool pass = propsAgree && fast;

    json::Value report;
    report["instances"] = json::Value(std::move(rows));
    report["median_speedup"] = median;
    report["props_agree"] = propsAgree;
    report["pass"] = pass;
    if (std::FILE* f = std::fopen(outPath.c_str(), "w")) {
        const std::string text = json::write(report);
        std::fwrite(text.data(), 1, text.size(), f);
        std::fputc('\n', f);
        std::fclose(f);
        std::printf("wrote %s\n", outPath.c_str());
    } else {
        std::printf("could not write %s\n", outPath.c_str());
        return EXIT_FAILURE;
    }
    std::printf("%s\n", pass ? "PASS" : "FAIL");
    return pass ? EXIT_SUCCESS : EXIT_FAILURE;
}
