// ABL5 — the §3.4 logic-substrate trade-off, made concrete:
// rule-based forward chaining (Datalog) vs SAT search.
//
//  * checking a GIVEN design: both work; Datalog does it with a declarative
//    program and no search;
//  * finding a design: only the SAT engine can — forward chaining has no
//    notion of choice.
//
// The bench validates agreement between the Datalog checker, the native
// validator, and the SAT engine on a corpus of good designs and single-edit
// corruptions, and reports per-check costs.
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "benchutil.hpp"
#include "catalog/catalog.hpp"
#include "kb/objectives.hpp"
#include "reason/engine.hpp"
#include "reason/validate.hpp"
#include "rules/deployment.hpp"
#include "util/stopwatch.hpp"

using namespace lar;

int main() {
    const kb::KnowledgeBase kb = catalog::buildKnowledgeBase();
    reason::Problem p = reason::makeDefaultProblem(kb);
    p.hardware[kb::HardwareClass::Server].count = 60;
    p.hardware[kb::HardwareClass::Switch].count = 8;
    p.hardware[kb::HardwareClass::Nic].count = 60;
    p.workloads = {catalog::makeInferenceWorkload()};
    p.requiredCapabilities = {catalog::kCapDetectQueueLength};

    // Corpus: optimal-class designs + one corruption per category (swap the
    // chosen system for the first alternative in its category).
    reason::Engine engine(p);
    std::vector<reason::Design> corpus = engine.enumerateDesigns(4);
    const std::size_t goodCount = corpus.size();
    for (std::size_t i = 0; i < goodCount; ++i) {
        for (const kb::Category category : kb::kAllCategories) {
            const auto it = corpus[i].chosen.find(category);
            if (it == corpus[i].chosen.end()) continue;
            for (const kb::System* s : kb.byCategory(category)) {
                if (s->name == it->second) continue;
                reason::Design corrupted = corpus[i];
                corrupted.chosen[category] = s->name;
                corpus.push_back(std::move(corrupted));
                break;
            }
        }
    }

    int agree = 0;
    int disagree = 0;
    double datalogMs = 0;
    double validatorMs = 0;
    std::size_t lastFacts = 0;
    std::size_t lastRules = 0;
    for (const reason::Design& design : corpus) {
        util::Stopwatch t1;
        const rules::DatalogCheck check = rules::checkDesignWithRules(p, design);
        datalogMs += t1.millis();
        lastFacts = check.programFacts;
        lastRules = check.programRules;

        util::Stopwatch t2;
        // Restrict the validator to the predicate-level rule families the
        // Datalog program models (requirements / conflicts / capabilities /
        // research-grade).
        const auto violations = reason::validateDesign(p, design);
        validatorMs += t2.millis();
        const bool predicateViolation = std::any_of(
            violations.begin(), violations.end(), [](const std::string& v) {
                return v.find("requirement of") != std::string::npos ||
                       v.find("conflicts with") != std::string::npos ||
                       v.find("solves") != std::string::npos ||
                       v.find("research-grade") != std::string::npos;
            });
        if (check.compliant == !predicateViolation)
            ++agree;
        else
            ++disagree;
    }

    bench::printHeader("§3.4 rule-based checking vs native validator");
    bench::printRow({"metric", "value"});
    bench::printRule();
    bench::printRow({"designs checked",
                     bench::num(static_cast<long long>(corpus.size()))});
    bench::printRow({"verdict agreement",
                     bench::num(agree) + "/" +
                         bench::num(static_cast<long long>(corpus.size()))});
    bench::printRow({"datalog program size", bench::num(static_cast<long long>(
                                                 lastFacts)) +
                                                 " facts, " +
                                                 bench::num(static_cast<long long>(
                                                     lastRules)) +
                                                 " rules"});
    bench::printRow({"datalog per check",
                     bench::ms(datalogMs / static_cast<double>(corpus.size()))});
    bench::printRow({"validator per check",
                     bench::ms(validatorMs / static_cast<double>(corpus.size()))});

    // Search needs SAT: forward chaining cannot synthesize a design.
    util::Stopwatch t3;
    const auto synthesized = reason::Engine(p).optimize();
    bench::printRow({"SAT synthesis (for contrast)", bench::ms(t3.millis())});
    std::printf("\npaper (§3.4): simple predicate logic suffices for the "
                "rules; the SAT solver's\n\"power to explore combinatorial "
                "search spaces\" is what synthesis needs.\n");

    const bool ok = disagree == 0 && synthesized.has_value();
    std::printf("ABL5: %s\n", ok ? "checkers agree, synthesis works"
                                 : "FAILED");
    return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
