// ABL3 — encoding ablation (google-benchmark): sequential counter vs
// totalizer for at-most-k, and flat vs exclusivity-grouped generalized
// totalizers for weighted sums (the structure that keeps the budget and
// hardware-cost encodings linear; see DESIGN.md §6).
#include <benchmark/benchmark.h>

#include "encode/cardinality.hpp"
#include "encode/pb.hpp"
#include "util/rng.hpp"

using namespace lar;

namespace {

std::vector<sat::Lit> freshLits(encode::CnfBuilder& b, int n) {
    std::vector<sat::Lit> lits;
    lits.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) lits.push_back(b.newLit());
    return lits;
}

void BM_AtMostK_Encode(benchmark::State& state) {
    const auto encoding = static_cast<encode::CardinalityEncoding>(state.range(0));
    const int n = static_cast<int>(state.range(1));
    const int k = n / 4;
    std::size_t clauses = 0;
    for (auto _ : state) {
        sat::Solver solver;
        encode::CnfBuilder builder(solver);
        const auto lits = freshLits(builder, n);
        encode::addAtMost(builder, lits, k, encoding);
        clauses = solver.numClauses();
        benchmark::DoNotOptimize(clauses);
    }
    state.SetLabel(encoding == encode::CardinalityEncoding::SequentialCounter
                       ? "sequential"
                       : "totalizer");
    state.counters["clauses"] = static_cast<double>(clauses);
}

void BM_AtMostK_Solve(benchmark::State& state) {
    // Force exactly k+? true among n with random hard clauses; measure the
    // propagation strength of the encodings under search.
    const auto encoding = static_cast<encode::CardinalityEncoding>(state.range(0));
    const int n = static_cast<int>(state.range(1));
    const int k = n / 4;
    std::uint64_t round = 0;
    for (auto _ : state) {
        util::Rng rng(900 + round++);
        sat::Solver solver;
        encode::CnfBuilder builder(solver);
        const auto lits = freshLits(builder, n);
        encode::addAtMost(builder, lits, k, encoding);
        // Sparse positive 2-clauses push literals true and stress the bound
        // (kept at n/3 clauses so instances stay easy-satisfiable; denser
        // mixes turn into hard vertex-cover instances).
        for (int i = 0; i < n / 3; ++i) {
            const auto a = lits[rng.below(lits.size())];
            const auto b = lits[rng.below(lits.size())];
            solver.addClause(a, b);
        }
        benchmark::DoNotOptimize(solver.solve());
    }
    state.SetLabel(encoding == encode::CardinalityEncoding::SequentialCounter
                       ? "sequential"
                       : "totalizer");
}

void BM_PbSum_FlatVsGrouped(benchmark::State& state) {
    // 3 selector classes × `modelsPerClass` models with exactly-one per
    // class: exactly the hardware-cost structure.
    const bool grouped = state.range(0) == 1;
    const int modelsPerClass = static_cast<int>(state.range(1));
    std::size_t clauses = 0;
    for (auto _ : state) {
        util::Rng rng(42);
        sat::Solver solver;
        encode::CnfBuilder builder(solver);
        std::vector<std::vector<encode::PbTerm>> groups;
        std::vector<encode::PbTerm> flat;
        for (int cls = 0; cls < 3; ++cls) {
            std::vector<sat::Lit> sel = freshLits(builder, modelsPerClass);
            encode::addExactly(builder, sel, 1);
            std::vector<encode::PbTerm> group;
            for (const sat::Lit l : sel) {
                const auto w = static_cast<std::int64_t>(20 + rng.below(300));
                group.push_back({w, l});
                flat.push_back({w, l});
            }
            groups.push_back(std::move(group));
        }
        const std::int64_t clamp = 800;
        if (grouped) {
            const encode::PbSum sum(
                builder, std::span<const std::vector<encode::PbTerm>>(groups),
                clamp);
            benchmark::DoNotOptimize(sum.maxSum());
        } else {
            const encode::PbSum sum(builder, flat, clamp);
            benchmark::DoNotOptimize(sum.maxSum());
        }
        clauses = solver.numClauses();
    }
    state.SetLabel(grouped ? "grouped" : "flat");
    state.counters["clauses"] = static_cast<double>(clauses);
}

} // namespace

BENCHMARK(BM_AtMostK_Encode)
    ->ArgsProduct({{0, 1}, {32, 128, 512}})
    ->Unit(benchmark::kMicrosecond)
    ->MinTime(0.05);
BENCHMARK(BM_AtMostK_Solve)
    ->ArgsProduct({{0, 1}, {32, 64}})
    ->Unit(benchmark::kMicrosecond)
    ->MinTime(0.05);
BENCHMARK(BM_PbSum_FlatVsGrouped)
    ->ArgsProduct({{0, 1}, {4, 8}})
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.05);

BENCHMARK_MAIN();
