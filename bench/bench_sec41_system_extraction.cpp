// SEC41b — reproduces §4.1's system-encoding extraction findings with the
// simulated LLM: hardware requirements are found reliably, nuance
// applicability conditions (e.g. "Annulus is only needed when WAN and DC
// traffic compete") and resource quantities are missed far more often, and
// adversarial prompting ("list requirements without which the system cannot
// work") recovers part of the gap.
#include <cstdio>
#include <cstdlib>

#include "benchutil.hpp"
#include "catalog/catalog.hpp"
#include "extract/extractor.hpp"
#include "extract/specgen.hpp"
#include "util/rng.hpp"

using namespace lar;

namespace {

extract::ExtractionStats runCorpus(const kb::KnowledgeBase& kb,
                                   const extract::NoiseModel& noise,
                                   std::uint64_t seed, int rounds) {
    util::Rng rng(seed);
    extract::ExtractionStats stats;
    const auto corpus = extract::renderSystemCorpus(kb);
    for (int round = 0; round < rounds; ++round)
        for (const extract::SystemDoc& doc : corpus)
            stats.add(extract::extractSystem(doc, noise, rng).stats);
    return stats;
}

double ratio(int num, int den) {
    return den == 0 ? 1.0 : static_cast<double>(num) / den;
}

void printStats(const char* label, const extract::ExtractionStats& s) {
    bench::printRow(
        {label,
         bench::pct(ratio(s.hardRequirementsFound, s.hardRequirementsTotal)),
         bench::pct(ratio(s.nuanceConditionsFound, s.nuanceConditionsTotal)),
         bench::pct(ratio(s.quantitiesFound, s.quantitiesTotal)),
         bench::pct(ratio(s.quantitiesCorrect, s.quantitiesTotal)),
         bench::pct(ratio(s.providesFound, s.providesTotal)),
         bench::pct(ratio(s.conflictsFound, s.conflictsTotal))});
}

} // namespace

int main() {
    const kb::KnowledgeBase kb = catalog::buildKnowledgeBase();
    constexpr int kRounds = 50;

    bench::printHeader("§4.1 system-encoding extraction recall (56 systems × 50 runs)");
    bench::printRow({"prompting", "hw reqs", "nuances", "qty found", "qty ok",
                     "provides", "conflicts"});
    bench::printRule();
    extract::NoiseModel plain;
    const auto plainStats = runCorpus(kb, plain, 42, kRounds);
    printStats("plain (\"describe the system\")", plainStats);

    extract::NoiseModel adversarial;
    adversarial.adversarialPrompting = true;
    const auto advStats = runCorpus(kb, adversarial, 42, kRounds);
    printStats("adversarial (\"what breaks it?\")", advStats);

    std::printf("\npaper: LLMs identify hardware requirements but miss "
                "nuance conditions and quantities;\n       adversarial "
                "prompting is more productive. Shape reproduced when the\n"
                "       nuance/quantity recall sits well below hardware-"
                "requirement recall.\n");

    // The paper's concrete example: the Annulus WAN/DC nuance.
    bench::printHeader("the Annulus example");
    const extract::SystemDoc annulusDoc =
        extract::renderSystemDoc(kb.system("Annulus"));
    util::Rng rng(7);
    int missed = 0;
    constexpr int kTries = 200;
    for (int i = 0; i < kTries; ++i) {
        const auto result = extract::extractSystem(annulusDoc, plain, rng);
        const bool hasNuance =
            result.encoding.constraints.toString().find(
                "wan_dc_traffic_compete") != std::string::npos;
        if (!hasNuance) ++missed;
    }
    std::printf("plain prompting missed the \"only when WAN and DC traffic "
                "compete\" condition in %d/%d runs (%s)\n",
                missed, kTries,
                bench::pct(static_cast<double>(missed) / kTries).c_str());

    // Sanity gates for the reproduction.
    const double hardRecall =
        ratio(plainStats.hardRequirementsFound, plainStats.hardRequirementsTotal);
    const double nuanceRecall =
        ratio(plainStats.nuanceConditionsFound, plainStats.nuanceConditionsTotal);
    const bool shapeHolds = hardRecall > 0.9 && nuanceRecall < hardRecall - 0.2 &&
                            ratio(advStats.nuanceConditionsFound,
                                  advStats.nuanceConditionsTotal) > nuanceRecall;
    std::printf("\nSEC41b reproduction: %s\n",
                shapeHolds ? "shape holds" : "SHAPE VIOLATED");
    return shapeHolds ? EXIT_SUCCESS : EXIT_FAILURE;
}
