// PORT1 — portfolio speedup: K diverse CDCL workers racing one formula.
//
// A corpus of hard random 3-SAT instances (phase-transition ratio 4.26) is
// solved twice per instance: single solver vs a 4-wide portfolio with
// clause sharing. Two gates:
//   * verdict agreement on the whole corpus — the portfolio may only change
//     how fast the answer arrives, never the answer (this gate always runs);
//   * median wall-clock speedup ≥ 1.5× — only enforced when the host has at
//     least 4 hardware threads (racing 4 workers on fewer cores measures
//     scheduler fairness, not the portfolio), otherwise report-only.
#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "benchutil.hpp"
#include "smt/backend.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

using namespace lar;

namespace {

constexpr int kInstances = 9;
constexpr int kVars = 150;
constexpr double kClauseRatio = 4.26; // the 3-SAT phase transition
constexpr int kPortfolioWidth = 4;
constexpr double kSpeedupGate = 1.5;

struct Instance {
    std::vector<std::vector<int>> clauses; ///< DIMACS-style literals
};

Instance randomInstance(util::Rng& rng) {
    Instance out;
    const int numClauses = static_cast<int>(kVars * kClauseRatio);
    for (int c = 0; c < numClauses; ++c) {
        std::vector<int> clause;
        while (clause.size() < 3) {
            const int v = static_cast<int>(rng.below(kVars)) + 1;
            bool dup = false;
            for (const int lit : clause) dup = dup || std::abs(lit) == v;
            if (!dup) clause.push_back(rng.chance(0.5) ? v : -v);
        }
        out.clauses.push_back(std::move(clause));
    }
    return out;
}

/// Asserts `instance` into a fresh backend of the given width and times the
/// check() call.
smt::CheckStatus solveTimed(const Instance& instance, int width, double& outMs) {
    smt::FormulaStore store;
    std::vector<smt::NodeId> vars;
    vars.reserve(kVars);
    for (int v = 1; v <= kVars; ++v) vars.push_back(store.var("v" + std::to_string(v)));

    smt::BackendConfig config;
    config.portfolioWorkers = width;
    const auto backend = smt::makeBackend(smt::BackendKind::Cdcl, store, config);
    for (const std::vector<int>& clause : instance.clauses) {
        std::vector<smt::NodeId> lits;
        for (const int lit : clause) {
            const smt::NodeId var = vars[static_cast<std::size_t>(std::abs(lit) - 1)];
            lits.push_back(lit < 0 ? store.mkNot(var) : var);
        }
        backend->addHard(store.mkOr(std::move(lits)));
    }
    const util::Stopwatch timer;
    const smt::CheckStatus status = backend->check();
    outMs = timer.millis();
    return status;
}

const char* statusName(smt::CheckStatus status) {
    switch (status) {
        case smt::CheckStatus::Sat: return "sat";
        case smt::CheckStatus::Unsat: return "unsat";
        default: return "unknown";
    }
}

} // namespace

int main() {
    bench::printHeader("PORT1: portfolio speedup on hard random 3-SAT");
    std::printf("corpus: %d instances, %d vars, ratio %.2f; portfolio width %d\n",
                kInstances, kVars, kClauseRatio, kPortfolioWidth);
    bench::printRule();
    bench::printRow({"instance", "verdict", "single", "portfolio", "speedup"});
    bench::printRule();

    util::Rng rng(20260807);
    bool verdictsAgree = true;
    bool allDefinitive = true;
    std::vector<double> speedups;
    for (int i = 0; i < kInstances; ++i) {
        const Instance instance = randomInstance(rng);
        double singleMs = 0.0;
        double racedMs = 0.0;
        const smt::CheckStatus single = solveTimed(instance, 1, singleMs);
        const smt::CheckStatus raced = solveTimed(instance, kPortfolioWidth, racedMs);
        verdictsAgree = verdictsAgree && single == raced;
        allDefinitive = allDefinitive && single != smt::CheckStatus::Unknown &&
                        raced != smt::CheckStatus::Unknown;
        const double speedup = racedMs > 0.0 ? singleMs / racedMs : 1.0;
        speedups.push_back(speedup);
        char ratio[16];
        std::snprintf(ratio, sizeof ratio, "%.2fx", speedup);
        bench::printRow({"#" + std::to_string(i) +
                             (single != raced ? "  VERDICT MISMATCH" : ""),
                         statusName(single), bench::ms(singleMs),
                         bench::ms(racedMs), ratio});
    }
    bench::printRule();

    std::sort(speedups.begin(), speedups.end());
    const double median = speedups[speedups.size() / 2];
    const unsigned cores = std::thread::hardware_concurrency();
    std::printf("median speedup %.2fx on %u hardware thread(s)\n", median, cores);

    bool pass = verdictsAgree && allDefinitive;
    std::printf("gate: verdict agreement on the whole corpus ... %s\n",
                verdictsAgree ? "yes" : "NO");
    std::printf("gate: every verdict definitive ............... %s\n",
                allDefinitive ? "yes" : "NO");
    if (cores >= static_cast<unsigned>(kPortfolioWidth)) {
        const bool fast = median >= kSpeedupGate;
        std::printf("gate: median speedup >= %.1fx ................. %s\n",
                    kSpeedupGate, fast ? "yes" : "NO");
        pass = pass && fast;
    } else {
        std::printf("gate: median speedup >= %.1fx ................. skipped "
                    "(%u < %d hardware threads)\n",
                    kSpeedupGate, cores, kPortfolioWidth);
    }
    std::printf("%s\n", pass ? "PASS" : "FAIL");
    return pass ? 0 : 1;
}
