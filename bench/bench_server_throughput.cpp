// SRV1 — HTTP serving layer: throughput, overload behaviour, drain safety.
//
// Four in-process experiments against net::HttpServer on loopback:
//
//  1. HTTP layer capacity: 4 client threads hammer a minimal handler.
//     Gates: ≥1000 QPS and p99 < 100 ms — the serving machinery (epoll
//     loops, handler pool, keep-alive) must never be the bottleneck in
//     front of the reasoning service.
//  2. /v1/query end-to-end: the same wire path larserved serves, backed by
//     a real reason::Service on a cache-warm problem (informational —
//     solver time dominates and varies by machine).
//  3. 4× oversubscription: far more concurrent clients than the inflight
//     cap. Gate: requests shed with 503 + Retry-After, everything else
//     answered 200 — never a malformed response, never unbounded queueing.
//  4. Drain mid-load: drainAndStop while clients hammer. Gate: every
//     request either gets a complete response or a clean connection close
//     — zero crashed/garbled connections.
//
// Writes machine-readable results to BENCH_server.json (override the path
// with argv[1]).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "benchutil.hpp"
#include "catalog/catalog.hpp"
#include "json/parse.hpp"
#include "json/value.hpp"
#include "json/write.hpp"
#include "net/http_client.hpp"
#include "net/server.hpp"
#include "reason/service.hpp"
#include "reason/service_io.hpp"
#include "util/error.hpp"
#include "util/stopwatch.hpp"

using namespace lar;

namespace {

double percentile(std::vector<double> samples, double q) {
    if (samples.empty()) return 0.0;
    std::sort(samples.begin(), samples.end());
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(samples.size() - 1) + 0.5);
    return samples[std::min(idx, samples.size() - 1)];
}

struct LoadResult {
    double qps = 0.0;
    double p50Ms = 0.0;
    double p99Ms = 0.0;
    long long answered = 0;
    long long errors = 0; ///< transport-level failures (throw from the client)
};

/// `threads` clients, each its own keep-alive connection, `perThread`
/// POSTs of `body` to `path`; per-request latency collected client-side.
LoadResult runLoad(std::uint16_t port, const std::string& path,
                   const std::string& body, int threads, int perThread) {
    std::mutex mergeMutex;
    std::vector<double> latencies;
    std::atomic<long long> answered{0};
    std::atomic<long long> errors{0};

    util::Stopwatch wall;
    std::vector<std::thread> clients;
    clients.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
        clients.emplace_back([&] {
            std::vector<double> local;
            local.reserve(static_cast<std::size_t>(perThread));
            try {
                net::HttpClient client("127.0.0.1", port);
                for (int i = 0; i < perThread; ++i) {
                    util::Stopwatch timer;
                    const net::ClientResponse resp = client.post(path, body);
                    local.push_back(timer.millis());
                    if (resp.status == 200) answered.fetch_add(1);
                }
            } catch (const Error&) {
                errors.fetch_add(1);
            }
            const std::lock_guard<std::mutex> lock(mergeMutex);
            latencies.insert(latencies.end(), local.begin(), local.end());
        });
    }
    for (std::thread& t : clients) t.join();
    const double wallMs = wall.millis();

    LoadResult r;
    r.answered = answered.load();
    r.errors = errors.load();
    r.qps = wallMs > 0.0 ? static_cast<double>(latencies.size()) * 1000.0 /
                               wallMs
                         : 0.0;
    r.p50Ms = percentile(latencies, 0.50);
    r.p99Ms = percentile(latencies, 0.99);
    return r;
}

std::string queryBody(const kb::KnowledgeBase& kb) {
    // Same shape larctl --url sends; small enough to solve in milliseconds
    // and identical every time, so the Service's compilation cache is warm
    // after the first request.
    (void)kb;
    return R"({"kind":"feasible","problem":{"hardware":{)"
           R"("server":{"count":60},"switch":{"count":8},"nic":{"count":60}},)"
           R"("objective_priority":["latency"]}})";
}

} // namespace

int main(int argc, char** argv) {
    const std::string outPath = argc > 1 ? argv[1] : "BENCH_server.json";
    const kb::KnowledgeBase kb = catalog::buildKnowledgeBase();
    json::Value report;

    // ---- 1. HTTP layer capacity (gated) --------------------------------
    bench::printHeader("HTTP layer capacity (minimal handler, 4 clients)");
    LoadResult http;
    {
        net::ServerOptions options;
        options.accessLog = false;
        net::HttpServer server(options);
        server.route("POST", "/echo", [](const net::HttpRequest& req) {
            return net::HttpResponse::text(200, req.body);
        });
        server.start();
        // Warm-up: first connections pay thread/epoll start-up costs.
        (void)runLoad(server.port(), "/echo", "ping", 2, 50);
        http = runLoad(server.port(), "/echo", "ping", 4, 1500);
        server.stop();
    }
    bench::printRow({"metric", "value"});
    bench::printRule();
    bench::printRow({"QPS", bench::num(static_cast<long long>(http.qps))});
    bench::printRow({"p50", bench::ms(http.p50Ms)});
    bench::printRow({"p99", bench::ms(http.p99Ms)});
    bench::printRow({"transport errors", bench::num(http.errors)});
    const bool httpOk =
        http.qps >= 1000.0 && http.p99Ms < 100.0 && http.errors == 0;
    report["http_qps"] = http.qps;
    report["http_p50_ms"] = http.p50Ms;
    report["http_p99_ms"] = http.p99Ms;

    // ---- 2. /v1/query end-to-end (informational) -----------------------
    bench::printHeader("/v1/query end-to-end (real service, warm cache)");
    LoadResult query;
    {
        reason::Service service;
        net::ServerOptions options;
        options.accessLog = false;
        net::HttpServer server(options);
        server.route("POST", "/v1/query", [&](const net::HttpRequest& req) {
            const json::Value doc = json::parse(req.body);
            const reason::QueryRequest request = reason::queryRequestFromJson(
                doc, kb, reason::QueryOptions{}, /*index=*/0);
            const reason::QueryResult result = service.run(request);
            net::HttpResponse resp;
            resp.body = json::write(reason::resultToJson(result, false));
            return resp;
        });
        server.start();
        const std::string body = queryBody(kb);
        (void)runLoad(server.port(), "/v1/query", body, 1, 3); // warm cache
        query = runLoad(server.port(), "/v1/query", body, 4, 50);
        server.stop();
    }
    bench::printRow({"metric", "value"});
    bench::printRule();
    bench::printRow({"QPS", bench::num(static_cast<long long>(query.qps))});
    bench::printRow({"p50", bench::ms(query.p50Ms)});
    bench::printRow({"p99", bench::ms(query.p99Ms)});
    report["query_qps"] = query.qps;
    report["query_p50_ms"] = query.p50Ms;
    report["query_p99_ms"] = query.p99Ms;

    // ---- 3. 4x oversubscription (gated) --------------------------------
    bench::printHeader("4x oversubscription (inflight cap 4, 16 clients)");
    std::atomic<long long> served{0}, shed{0}, other{0};
    std::atomic<long long> oversubErrors{0};
    {
        net::ServerOptions options;
        options.accessLog = false;
        options.maxInflight = 4;
        net::HttpServer server(options);
        server.route("POST", "/work", [](const net::HttpRequest& req) {
            // A few ms of "solving" keeps the inflight slots occupied so
            // the surplus clients actually hit the cap.
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
            return net::HttpResponse::text(200, req.body);
        });
        server.start();
        std::vector<std::thread> clients;
        for (int t = 0; t < 16; ++t) {
            clients.emplace_back([&, port = server.port()] {
                try {
                    net::HttpClient client("127.0.0.1", port);
                    for (int i = 0; i < 25; ++i) {
                        const net::ClientResponse resp =
                            client.post("/work", "x");
                        if (resp.status == 200) served.fetch_add(1);
                        else if (resp.status == 503 &&
                                 resp.header("Retry-After") != nullptr)
                            shed.fetch_add(1);
                        else other.fetch_add(1);
                    }
                } catch (const Error&) {
                    oversubErrors.fetch_add(1);
                }
            });
        }
        for (std::thread& t : clients) t.join();
        server.stop();
    }
    bench::printRow({"outcome", "count"});
    bench::printRule();
    bench::printRow({"200 served", bench::num(served.load())});
    bench::printRow({"503 shed (Retry-After)", bench::num(shed.load())});
    bench::printRow({"other status", bench::num(other.load())});
    bench::printRow({"transport errors", bench::num(oversubErrors.load())});
    const bool oversubOk = shed.load() > 0 && other.load() == 0 &&
                           oversubErrors.load() == 0 &&
                           served.load() + shed.load() == 16 * 25;
    report["oversub_served"] = static_cast<std::int64_t>(served.load());
    report["oversub_shed"] = static_cast<std::int64_t>(shed.load());

    // ---- 4. drain mid-load (gated) -------------------------------------
    bench::printHeader("drain mid-load (4 clients, drainAndStop underneath)");
    std::atomic<long long> drainServed{0};
    std::atomic<long long> drainClosed{0}; ///< clean close after drain began
    std::atomic<long long> drainBad{0};    ///< garbled response / early close
    {
        net::ServerOptions options;
        options.accessLog = false;
        net::HttpServer server(options);
        server.route("POST", "/echo", [](const net::HttpRequest& req) {
            return net::HttpResponse::text(200, req.body);
        });
        server.start();
        std::atomic<bool> drainStarted{false};
        std::vector<std::thread> clients;
        for (int t = 0; t < 4; ++t) {
            clients.emplace_back([&, port = server.port()] {
                for (int i = 0; i < 500; ++i) {
                    try {
                        net::HttpClient client("127.0.0.1", port);
                        const net::ClientResponse resp =
                            client.post("/echo", "d");
                        if (resp.status == 200 && resp.body == "d")
                            drainServed.fetch_add(1);
                        else
                            drainBad.fetch_add(1);
                    } catch (const Error&) {
                        // Refused/closed connections are the drain contract —
                        // but only once the drain has actually begun.
                        if (drainStarted.load()) {
                            drainClosed.fetch_add(1);
                            return;
                        }
                        drainBad.fetch_add(1);
                    }
                }
            });
        }
        while (drainServed.load() < 50) std::this_thread::yield();
        drainStarted.store(true);
        server.drainAndStop(/*graceMs=*/2000);
        for (std::thread& t : clients) t.join();
    }
    bench::printRow({"outcome", "count"});
    bench::printRule();
    bench::printRow({"200 served", bench::num(drainServed.load())});
    bench::printRow({"clean close after drain", bench::num(drainClosed.load())});
    bench::printRow({"crashed/garbled", bench::num(drainBad.load())});
    const bool drainOk = drainServed.load() >= 50 && drainBad.load() == 0;
    report["drain_served"] = static_cast<std::int64_t>(drainServed.load());
    report["drain_bad_connections"] = static_cast<std::int64_t>(drainBad.load());

    // ---- verdict + machine-readable report -----------------------------
    const bool ok = httpOk && oversubOk && drainOk;
    report["pass"] = ok;
    if (std::FILE* f = std::fopen(outPath.c_str(), "w")) {
        const std::string text = json::write(report);
        std::fwrite(text.data(), 1, text.size(), f);
        std::fputc('\n', f);
        std::fclose(f);
        std::printf("\nwrote %s\n", outPath.c_str());
    } else {
        std::printf("\ncould not write %s\n", outPath.c_str());
        return EXIT_FAILURE;
    }
    std::printf("SRV1: %s\n",
                ok ? "serving layer fast, sheds under overload, drains clean"
                   : "FAILED");
    if (!httpOk)
        std::printf("  gate: HTTP layer %s\n",
                    http.errors != 0 ? "had transport errors"
                                     : "below 1000 QPS / p99 over 100 ms");
    if (!oversubOk) std::printf("  gate: oversubscription behaviour wrong\n");
    if (!drainOk) std::printf("  gate: drain lost or garbled connections\n");
    return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
