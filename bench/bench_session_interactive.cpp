// SES1 — stateful sessions vs stateless queries over the real wire.
//
// The interactive workflow the session API exists for: an architect holds
// one design problem and asks "what if I pin system X?" for many X in a
// row. Two ways to serve that over HTTP, both measured end-to-end through
// an in-process net::HttpServer with the production routes:
//
//   cold  one POST /v1/query per variation, each with the pin folded into
//         the problem — every request is a distinct fingerprint, so the
//         server compiles and solves from scratch each time;
//   warm  one POST /v1/session, then one POST /v1/session/{id}/ask per
//         variation — the compilation is held server-side and each ask is
//         answered through solver assumptions.
//
// Gates: both paths agree on every feasible/infeasible verdict, and the
// median warm ask is ≥10x faster than the median cold query. Writes
// machine-readable results to BENCH_session.json (override with argv[1]).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "benchutil.hpp"
#include "catalog/catalog.hpp"
#include "json/parse.hpp"
#include "json/value.hpp"
#include "json/write.hpp"
#include "net/http_client.hpp"
#include "net/server.hpp"
#include "reason/service.hpp"
#include "reason/session.hpp"
#include "serve/routes.hpp"
#include "util/stopwatch.hpp"

using namespace lar;

namespace {

double median(std::vector<double> samples) {
    if (samples.empty()) return 0.0;
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() / 2];
}

constexpr const char* kProblemJson =
    R"({"hardware":{"server":{"count":60},"switch":{"count":8},)"
    R"("nic":{"count":60}},"objective_priority":["latency"]})";

std::string coldQueryBody(const std::string& system) {
    return std::string(R"({"api":1,"kind":"feasible","problem":)"
                       R"({"hardware":{"server":{"count":60},)"
                       R"("switch":{"count":8},"nic":{"count":60}},)"
                       R"("objective_priority":["latency"],)"
                       R"("pinned_systems":{")") +
           system + R"(":true}}})";
}

} // namespace

int main(int argc, char** argv) {
    const std::string outPath = argc > 1 ? argv[1] : "BENCH_session.json";
    const kb::KnowledgeBase kb = catalog::buildKnowledgeBase();

    reason::ServiceOptions serviceOptions;
    serviceOptions.warmStartCapacity = 32;
    reason::Service service(serviceOptions);
    reason::SessionManager sessions(service);

    net::ServerOptions options;
    options.bindAddress = "127.0.0.1";
    options.port = 0;
    options.accessLog = false;
    net::HttpServer server(options);
    serve::registerServiceRoutes(server, service, kb);
    serve::registerSessionRoutes(server, sessions, kb);
    server.start();

    // One pin-one-system variation per catalog system.
    std::vector<std::string> systems;
    for (const kb::System& s : kb.systems()) systems.push_back(s.name);

    net::HttpClient client("127.0.0.1", server.port());

    // ---- cold: stateless /v1/query per variation -----------------------
    std::vector<double> coldMs;
    std::vector<bool> coldFeasible;
    for (const std::string& name : systems) {
        util::Stopwatch timer;
        const net::ClientResponse resp =
            client.post("/v1/query", coldQueryBody(name));
        coldMs.push_back(timer.millis());
        if (resp.status != 200) {
            std::printf("cold query for %s failed: HTTP %d\n%s\n",
                        name.c_str(), resp.status, resp.body.c_str());
            return EXIT_FAILURE;
        }
        coldFeasible.push_back(
            json::parse(resp.body).at("feasible").asBool());
    }

    // ---- warm: one session, one ask per variation ----------------------
    const net::ClientResponse created = client.post(
        "/v1/session",
        std::string(R"({"api":1,"problem":)") + kProblemJson + "}");
    if (created.status != 200) {
        std::printf("session create failed: HTTP %d\n%s\n", created.status,
                    created.body.c_str());
        return EXIT_FAILURE;
    }
    const std::string sessionId =
        json::parse(created.body).at("id").asString();

    std::vector<double> warmMs;
    std::vector<bool> warmFeasible;
    for (const std::string& name : systems) {
        util::Stopwatch timer;
        const net::ClientResponse resp = client.post(
            "/v1/session/" + sessionId + "/ask",
            std::string(R"({"api":1,"systems":{")") + name + R"(":true}})");
        warmMs.push_back(timer.millis());
        if (resp.status != 200) {
            std::printf("warm ask for %s failed: HTTP %d\n%s\n",
                        name.c_str(), resp.status, resp.body.c_str());
            return EXIT_FAILURE;
        }
        warmFeasible.push_back(
            json::parse(resp.body).at("feasible").asBool());
    }
    (void)client.del("/v1/session/" + sessionId);
    server.stop();

    int disagreements = 0;
    for (std::size_t i = 0; i < systems.size(); ++i)
        if (coldFeasible[i] != warmFeasible[i]) ++disagreements;

    const double coldMedian = median(coldMs);
    const double warmMedian = median(warmMs);
    const double speedup = warmMedian > 0.0 ? coldMedian / warmMedian : 0.0;

    bench::printHeader("stateful session vs stateless query (per-variation "
                       "HTTP round-trip)");
    bench::printRow({"path", "queries", "median", "total"});
    bench::printRule();
    double coldTotal = 0.0, warmTotal = 0.0;
    for (const double v : coldMs) coldTotal += v;
    for (const double v : warmMs) warmTotal += v;
    bench::printRow({"POST /v1/query (cold each time)",
                     bench::num(static_cast<long long>(coldMs.size())),
                     bench::ms(coldMedian), bench::ms(coldTotal)});
    bench::printRow({"POST /v1/session/{id}/ask",
                     bench::num(static_cast<long long>(warmMs.size())),
                     bench::ms(warmMedian), bench::ms(warmTotal)});
    std::printf("\nmedian speedup: %.1fx — verdicts agree on %zu/%zu\n",
                speedup, systems.size() - disagreements, systems.size());

    const bool ok = disagreements == 0 && speedup >= 10.0;
    json::Value report;
    report["cold_median_ms"] = coldMedian;
    report["warm_median_ms"] = warmMedian;
    report["cold_total_ms"] = coldTotal;
    report["warm_total_ms"] = warmTotal;
    report["speedup"] = speedup;
    report["queries"] = static_cast<std::int64_t>(systems.size());
    report["disagreements"] = static_cast<std::int64_t>(disagreements);
    report["pass"] = ok;
    if (std::FILE* f = std::fopen(outPath.c_str(), "w")) {
        const std::string text = json::write(report);
        std::fwrite(text.data(), 1, text.size(), f);
        std::fputc('\n', f);
        std::fclose(f);
        std::printf("wrote %s\n", outPath.c_str());
    } else {
        std::printf("could not write %s\n", outPath.c_str());
        return EXIT_FAILURE;
    }
    std::printf("SES1: %s\n",
                ok ? "session asks ≥10x faster than stateless queries, "
                     "verdicts agree"
                   : "FAILED");
    if (disagreements != 0) std::printf("  gate: verdicts disagree\n");
    if (speedup < 10.0)
        std::printf("  gate: speedup %.1fx below 10x\n", speedup);
    return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
