// ABL4 — incremental what-if sessions vs fresh recompilation.
//
// §5.1's queries are bursts of small variations on one problem. A
// WhatIfSession compiles once and answers each variation by solver
// assumptions (learned clauses persist); the baseline compiles a fresh
// Engine per variation. Both must agree on every verdict.
#include <cstdio>
#include <cstdlib>

#include "benchutil.hpp"
#include "catalog/catalog.hpp"
#include "kb/objectives.hpp"
#include "reason/engine.hpp"
#include "reason/whatif.hpp"
#include "util/stopwatch.hpp"

using namespace lar;

int main() {
    const kb::KnowledgeBase kb = catalog::buildKnowledgeBase();
    reason::Problem p = reason::makeDefaultProblem(kb);
    p.hardware[kb::HardwareClass::Server].count = 60;
    p.hardware[kb::HardwareClass::Switch].count = 8;
    p.hardware[kb::HardwareClass::Nic].count = 60;
    p.workloads = {catalog::makeInferenceWorkload()};
    p.requiredCapabilities = {catalog::kCapDetectQueueLength};

    // The variation sweep: pin each system in turn (one per query).
    std::vector<reason::Variation> variations;
    for (const kb::System& s : kb.systems()) {
        reason::Variation v;
        v.systems[s.name] = true;
        variations.push_back(std::move(v));
    }

    // Incremental: one compilation, assumption-based queries.
    util::Stopwatch incTimer;
    reason::WhatIfSession session(p);
    std::vector<bool> incrementalVerdicts;
    for (const reason::Variation& v : variations)
        incrementalVerdicts.push_back(session.ask(v).verdict == reason::Verdict::Sat);
    const double incrementalMs = incTimer.millis();

    // Baseline: fresh engine per query.
    util::Stopwatch freshTimer;
    std::vector<bool> freshVerdicts;
    for (const kb::System& s : kb.systems()) {
        reason::Problem pinned = p;
        pinned.pinnedSystems[s.name] = true;
        freshVerdicts.push_back(reason::Engine(pinned).checkFeasible().feasible);
    }
    const double freshMs = freshTimer.millis();

    int disagreements = 0;
    int feasibleCount = 0;
    for (std::size_t i = 0; i < variations.size(); ++i) {
        if (incrementalVerdicts[i] != freshVerdicts[i]) ++disagreements;
        if (incrementalVerdicts[i]) ++feasibleCount;
    }

    bench::printHeader("incremental what-if sessions (56 pin-one-system queries)");
    bench::printRow({"strategy", "queries", "total", "per query"});
    bench::printRule();
    bench::printRow({"WhatIfSession (compile once)",
                     bench::num(static_cast<long long>(variations.size())),
                     bench::ms(incrementalMs),
                     bench::ms(incrementalMs / variations.size())});
    bench::printRow({"fresh Engine per query",
                     bench::num(static_cast<long long>(variations.size())),
                     bench::ms(freshMs), bench::ms(freshMs / variations.size())});
    std::printf("\nspeedup: %.1fx — verdicts agree on %zu/%zu (%d feasible pins)\n",
                freshMs / incrementalMs, variations.size() - disagreements,
                variations.size(), feasibleCount);

    const bool ok = disagreements == 0 && incrementalMs < freshMs;
    std::printf("ABL4: %s\n", ok ? "incremental wins, verdicts agree"
                                 : "FAILED");
    return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
