// LST1 / SEC41a — reproduces Listing 1 and the §4.1 hardware-extraction
// result: rendering vendor spec sheets for the whole 208-model inventory,
// extracting encodings back, and measuring field accuracy per device class.
// The paper reports 100 % accuracy on structured sheets; the same must hold
// here (the extractor is a real parser over the rendered text).
#include <cstdio>
#include <cstdlib>
#include <map>

#include "benchutil.hpp"
#include "catalog/catalog.hpp"
#include "extract/extractor.hpp"
#include "extract/specgen.hpp"
#include "json/write.hpp"
#include "kb/serialize.hpp"
#include "util/stopwatch.hpp"

using namespace lar;

int main() {
    const kb::KnowledgeBase kb = catalog::buildKnowledgeBase();

    // Listing 1: the auto-generated encoding of the Cisco Catalyst 9500-40X.
    bench::printHeader("Listing 1: source spec sheet (Cisco Catalyst 9500-40X)");
    const extract::SpecSheet cisco =
        extract::renderSpecSheet(kb.hardware("Cisco Catalyst 9500-40X"));
    std::printf("%s", cisco.text.c_str());

    bench::printHeader("Listing 1: auto-generated encoding");
    const kb::HardwareSpec extracted = extract::extractHardware(cisco.text);
    std::printf("%s\n", json::writePretty(kb::toJson(extracted)).c_str());

    // §4.1: whole-corpus field accuracy, by device class.
    bench::printHeader("§4.1 hardware extraction accuracy (208 spec sheets)");
    struct ClassTotals {
        int sheets = 0;
        int fields = 0;
        int correct = 0;
    };
    std::map<std::string, ClassTotals> perClass;
    util::Stopwatch timer;
    for (const extract::SpecSheet& sheet : extract::renderHardwareCorpus(kb)) {
        const kb::HardwareSpec spec = extract::extractHardware(sheet.text);
        const extract::FieldAccuracy acc =
            extract::compareHardware(spec, sheet.groundTruth);
        ClassTotals& totals = perClass[toString(sheet.groundTruth.cls)];
        ++totals.sheets;
        totals.fields += acc.total;
        totals.correct += acc.correct;
    }
    const double elapsed = timer.millis();

    bench::printRow({"device class", "sheets", "fields", "correct", "accuracy"});
    bench::printRule();
    int allFields = 0;
    int allCorrect = 0;
    for (const auto& [cls, totals] : perClass) {
        bench::printRow({cls, bench::num(totals.sheets), bench::num(totals.fields),
                         bench::num(totals.correct),
                         bench::pct(static_cast<double>(totals.correct) /
                                    totals.fields)});
        allFields += totals.fields;
        allCorrect += totals.correct;
    }
    bench::printRule();
    bench::printRow({"total", bench::num(208), bench::num(allFields),
                     bench::num(allCorrect),
                     bench::pct(static_cast<double>(allCorrect) / allFields)});
    std::printf("\npaper: 100%% field accuracy on structured sheets; "
                "measured: %s (extraction of 208 sheets took %s)\n",
                bench::pct(static_cast<double>(allCorrect) / allFields).c_str(),
                bench::ms(elapsed).c_str());

    return allCorrect == allFields ? EXIT_SUCCESS : EXIT_FAILURE;
}
