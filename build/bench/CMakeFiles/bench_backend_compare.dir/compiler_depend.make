# Empty compiler generated dependencies file for bench_backend_compare.
# This may be replaced when dependencies are built.
