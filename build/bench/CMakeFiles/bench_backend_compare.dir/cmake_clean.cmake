file(REMOVE_RECURSE
  "CMakeFiles/bench_backend_compare.dir/bench_backend_compare.cpp.o"
  "CMakeFiles/bench_backend_compare.dir/bench_backend_compare.cpp.o.d"
  "bench_backend_compare"
  "bench_backend_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_backend_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
