# Empty compiler generated dependencies file for bench_rules_vs_sat.
# This may be replaced when dependencies are built.
