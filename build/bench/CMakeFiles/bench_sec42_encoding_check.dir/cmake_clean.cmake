file(REMOVE_RECURSE
  "CMakeFiles/bench_sec42_encoding_check.dir/bench_sec42_encoding_check.cpp.o"
  "CMakeFiles/bench_sec42_encoding_check.dir/bench_sec42_encoding_check.cpp.o.d"
  "bench_sec42_encoding_check"
  "bench_sec42_encoding_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec42_encoding_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
