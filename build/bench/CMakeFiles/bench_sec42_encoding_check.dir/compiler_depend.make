# Empty compiler generated dependencies file for bench_sec42_encoding_check.
# This may be replaced when dependencies are built.
