# Empty compiler generated dependencies file for bench_encodings.
# This may be replaced when dependencies are built.
