
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig1_stack_ordering.cpp" "bench/CMakeFiles/bench_fig1_stack_ordering.dir/bench_fig1_stack_ordering.cpp.o" "gcc" "bench/CMakeFiles/bench_fig1_stack_ordering.dir/bench_fig1_stack_ordering.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/order/CMakeFiles/lar_order.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/lar_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/kb/CMakeFiles/lar_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/lar_json.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
