# Empty compiler generated dependencies file for bench_fig1_stack_ordering.
# This may be replaced when dependencies are built.
