file(REMOVE_RECURSE
  "CMakeFiles/bench_sec52_llm_vs_sat.dir/bench_sec52_llm_vs_sat.cpp.o"
  "CMakeFiles/bench_sec52_llm_vs_sat.dir/bench_sec52_llm_vs_sat.cpp.o.d"
  "bench_sec52_llm_vs_sat"
  "bench_sec52_llm_vs_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec52_llm_vs_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
