# Empty dependencies file for bench_sec52_llm_vs_sat.
# This may be replaced when dependencies are built.
