file(REMOVE_RECURSE
  "CMakeFiles/bench_pfc_deadlock.dir/bench_pfc_deadlock.cpp.o"
  "CMakeFiles/bench_pfc_deadlock.dir/bench_pfc_deadlock.cpp.o.d"
  "bench_pfc_deadlock"
  "bench_pfc_deadlock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pfc_deadlock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
