# Empty compiler generated dependencies file for bench_pfc_deadlock.
# This may be replaced when dependencies are built.
