file(REMOVE_RECURSE
  "CMakeFiles/bench_listing1_hw_extraction.dir/bench_listing1_hw_extraction.cpp.o"
  "CMakeFiles/bench_listing1_hw_extraction.dir/bench_listing1_hw_extraction.cpp.o.d"
  "bench_listing1_hw_extraction"
  "bench_listing1_hw_extraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_listing1_hw_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
