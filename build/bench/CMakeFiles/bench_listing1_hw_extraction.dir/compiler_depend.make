# Empty compiler generated dependencies file for bench_listing1_hw_extraction.
# This may be replaced when dependencies are built.
