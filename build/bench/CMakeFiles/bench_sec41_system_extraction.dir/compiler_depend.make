# Empty compiler generated dependencies file for bench_sec41_system_extraction.
# This may be replaced when dependencies are built.
