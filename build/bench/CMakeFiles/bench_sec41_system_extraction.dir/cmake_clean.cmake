file(REMOVE_RECURSE
  "CMakeFiles/bench_sec41_system_extraction.dir/bench_sec41_system_extraction.cpp.o"
  "CMakeFiles/bench_sec41_system_extraction.dir/bench_sec41_system_extraction.cpp.o.d"
  "bench_sec41_system_extraction"
  "bench_sec41_system_extraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec41_system_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
