# Empty dependencies file for bench_sec51_queries.
# This may be replaced when dependencies are built.
