file(REMOVE_RECURSE
  "CMakeFiles/bench_sec51_queries.dir/bench_sec51_queries.cpp.o"
  "CMakeFiles/bench_sec51_queries.dir/bench_sec51_queries.cpp.o.d"
  "bench_sec51_queries"
  "bench_sec51_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec51_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
