file(REMOVE_RECURSE
  "CMakeFiles/bench_lb_imbalance.dir/bench_lb_imbalance.cpp.o"
  "CMakeFiles/bench_lb_imbalance.dir/bench_lb_imbalance.cpp.o.d"
  "bench_lb_imbalance"
  "bench_lb_imbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lb_imbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
