# Empty compiler generated dependencies file for bench_lb_imbalance.
# This may be replaced when dependencies are built.
