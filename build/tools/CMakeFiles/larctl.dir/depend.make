# Empty dependencies file for larctl.
# This may be replaced when dependencies are built.
