file(REMOVE_RECURSE
  "CMakeFiles/larctl.dir/larctl.cpp.o"
  "CMakeFiles/larctl.dir/larctl.cpp.o.d"
  "larctl"
  "larctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/larctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
