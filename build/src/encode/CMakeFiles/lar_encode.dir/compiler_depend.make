# Empty compiler generated dependencies file for lar_encode.
# This may be replaced when dependencies are built.
