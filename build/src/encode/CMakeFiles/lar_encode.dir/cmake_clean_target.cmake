file(REMOVE_RECURSE
  "liblar_encode.a"
)
