file(REMOVE_RECURSE
  "CMakeFiles/lar_encode.dir/cardinality.cpp.o"
  "CMakeFiles/lar_encode.dir/cardinality.cpp.o.d"
  "CMakeFiles/lar_encode.dir/cnf_builder.cpp.o"
  "CMakeFiles/lar_encode.dir/cnf_builder.cpp.o.d"
  "CMakeFiles/lar_encode.dir/intvar.cpp.o"
  "CMakeFiles/lar_encode.dir/intvar.cpp.o.d"
  "CMakeFiles/lar_encode.dir/pb.cpp.o"
  "CMakeFiles/lar_encode.dir/pb.cpp.o.d"
  "liblar_encode.a"
  "liblar_encode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lar_encode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
