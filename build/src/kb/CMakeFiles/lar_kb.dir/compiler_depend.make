# Empty compiler generated dependencies file for lar_kb.
# This may be replaced when dependencies are built.
