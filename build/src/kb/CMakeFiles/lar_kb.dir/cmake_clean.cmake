file(REMOVE_RECURSE
  "CMakeFiles/lar_kb.dir/diff.cpp.o"
  "CMakeFiles/lar_kb.dir/diff.cpp.o.d"
  "CMakeFiles/lar_kb.dir/hardware.cpp.o"
  "CMakeFiles/lar_kb.dir/hardware.cpp.o.d"
  "CMakeFiles/lar_kb.dir/kb.cpp.o"
  "CMakeFiles/lar_kb.dir/kb.cpp.o.d"
  "CMakeFiles/lar_kb.dir/requirement.cpp.o"
  "CMakeFiles/lar_kb.dir/requirement.cpp.o.d"
  "CMakeFiles/lar_kb.dir/serialize.cpp.o"
  "CMakeFiles/lar_kb.dir/serialize.cpp.o.d"
  "CMakeFiles/lar_kb.dir/system.cpp.o"
  "CMakeFiles/lar_kb.dir/system.cpp.o.d"
  "CMakeFiles/lar_kb.dir/workload.cpp.o"
  "CMakeFiles/lar_kb.dir/workload.cpp.o.d"
  "liblar_kb.a"
  "liblar_kb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lar_kb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
