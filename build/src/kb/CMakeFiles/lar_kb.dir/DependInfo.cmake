
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kb/diff.cpp" "src/kb/CMakeFiles/lar_kb.dir/diff.cpp.o" "gcc" "src/kb/CMakeFiles/lar_kb.dir/diff.cpp.o.d"
  "/root/repo/src/kb/hardware.cpp" "src/kb/CMakeFiles/lar_kb.dir/hardware.cpp.o" "gcc" "src/kb/CMakeFiles/lar_kb.dir/hardware.cpp.o.d"
  "/root/repo/src/kb/kb.cpp" "src/kb/CMakeFiles/lar_kb.dir/kb.cpp.o" "gcc" "src/kb/CMakeFiles/lar_kb.dir/kb.cpp.o.d"
  "/root/repo/src/kb/requirement.cpp" "src/kb/CMakeFiles/lar_kb.dir/requirement.cpp.o" "gcc" "src/kb/CMakeFiles/lar_kb.dir/requirement.cpp.o.d"
  "/root/repo/src/kb/serialize.cpp" "src/kb/CMakeFiles/lar_kb.dir/serialize.cpp.o" "gcc" "src/kb/CMakeFiles/lar_kb.dir/serialize.cpp.o.d"
  "/root/repo/src/kb/system.cpp" "src/kb/CMakeFiles/lar_kb.dir/system.cpp.o" "gcc" "src/kb/CMakeFiles/lar_kb.dir/system.cpp.o.d"
  "/root/repo/src/kb/workload.cpp" "src/kb/CMakeFiles/lar_kb.dir/workload.cpp.o" "gcc" "src/kb/CMakeFiles/lar_kb.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lar_util.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/lar_json.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
