file(REMOVE_RECURSE
  "liblar_kb.a"
)
