# Empty dependencies file for lar_catalog.
# This may be replaced when dependencies are built.
