file(REMOVE_RECURSE
  "CMakeFiles/lar_catalog.dir/hardware.cpp.o"
  "CMakeFiles/lar_catalog.dir/hardware.cpp.o.d"
  "CMakeFiles/lar_catalog.dir/systems.cpp.o"
  "CMakeFiles/lar_catalog.dir/systems.cpp.o.d"
  "CMakeFiles/lar_catalog.dir/workloads.cpp.o"
  "CMakeFiles/lar_catalog.dir/workloads.cpp.o.d"
  "liblar_catalog.a"
  "liblar_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lar_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
