file(REMOVE_RECURSE
  "liblar_catalog.a"
)
