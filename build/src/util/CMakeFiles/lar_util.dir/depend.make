# Empty dependencies file for lar_util.
# This may be replaced when dependencies are built.
