file(REMOVE_RECURSE
  "liblar_util.a"
)
