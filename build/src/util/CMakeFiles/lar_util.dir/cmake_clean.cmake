file(REMOVE_RECURSE
  "CMakeFiles/lar_util.dir/file.cpp.o"
  "CMakeFiles/lar_util.dir/file.cpp.o.d"
  "CMakeFiles/lar_util.dir/logging.cpp.o"
  "CMakeFiles/lar_util.dir/logging.cpp.o.d"
  "CMakeFiles/lar_util.dir/strings.cpp.o"
  "CMakeFiles/lar_util.dir/strings.cpp.o.d"
  "liblar_util.a"
  "liblar_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lar_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
