file(REMOVE_RECURSE
  "CMakeFiles/lar_sat.dir/dimacs.cpp.o"
  "CMakeFiles/lar_sat.dir/dimacs.cpp.o.d"
  "CMakeFiles/lar_sat.dir/solver.cpp.o"
  "CMakeFiles/lar_sat.dir/solver.cpp.o.d"
  "liblar_sat.a"
  "liblar_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lar_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
