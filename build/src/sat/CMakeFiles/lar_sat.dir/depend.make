# Empty dependencies file for lar_sat.
# This may be replaced when dependencies are built.
