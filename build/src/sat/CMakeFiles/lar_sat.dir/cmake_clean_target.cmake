file(REMOVE_RECURSE
  "liblar_sat.a"
)
