# Empty dependencies file for lar_order.
# This may be replaced when dependencies are built.
