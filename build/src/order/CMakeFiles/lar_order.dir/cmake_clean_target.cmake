file(REMOVE_RECURSE
  "liblar_order.a"
)
