file(REMOVE_RECURSE
  "CMakeFiles/lar_order.dir/context.cpp.o"
  "CMakeFiles/lar_order.dir/context.cpp.o.d"
  "CMakeFiles/lar_order.dir/poset.cpp.o"
  "CMakeFiles/lar_order.dir/poset.cpp.o.d"
  "liblar_order.a"
  "liblar_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lar_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
