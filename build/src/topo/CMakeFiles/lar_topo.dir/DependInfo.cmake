
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/clos.cpp" "src/topo/CMakeFiles/lar_topo.dir/clos.cpp.o" "gcc" "src/topo/CMakeFiles/lar_topo.dir/clos.cpp.o.d"
  "/root/repo/src/topo/loadbalance.cpp" "src/topo/CMakeFiles/lar_topo.dir/loadbalance.cpp.o" "gcc" "src/topo/CMakeFiles/lar_topo.dir/loadbalance.cpp.o.d"
  "/root/repo/src/topo/pfc.cpp" "src/topo/CMakeFiles/lar_topo.dir/pfc.cpp.o" "gcc" "src/topo/CMakeFiles/lar_topo.dir/pfc.cpp.o.d"
  "/root/repo/src/topo/routing.cpp" "src/topo/CMakeFiles/lar_topo.dir/routing.cpp.o" "gcc" "src/topo/CMakeFiles/lar_topo.dir/routing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
