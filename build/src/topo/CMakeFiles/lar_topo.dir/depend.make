# Empty dependencies file for lar_topo.
# This may be replaced when dependencies are built.
