file(REMOVE_RECURSE
  "CMakeFiles/lar_topo.dir/clos.cpp.o"
  "CMakeFiles/lar_topo.dir/clos.cpp.o.d"
  "CMakeFiles/lar_topo.dir/loadbalance.cpp.o"
  "CMakeFiles/lar_topo.dir/loadbalance.cpp.o.d"
  "CMakeFiles/lar_topo.dir/pfc.cpp.o"
  "CMakeFiles/lar_topo.dir/pfc.cpp.o.d"
  "CMakeFiles/lar_topo.dir/routing.cpp.o"
  "CMakeFiles/lar_topo.dir/routing.cpp.o.d"
  "liblar_topo.a"
  "liblar_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lar_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
