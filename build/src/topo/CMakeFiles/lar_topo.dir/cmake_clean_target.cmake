file(REMOVE_RECURSE
  "liblar_topo.a"
)
