file(REMOVE_RECURSE
  "liblar_opt.a"
)
