file(REMOVE_RECURSE
  "CMakeFiles/lar_opt.dir/maxsat.cpp.o"
  "CMakeFiles/lar_opt.dir/maxsat.cpp.o.d"
  "liblar_opt.a"
  "liblar_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lar_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
