# Empty dependencies file for lar_opt.
# This may be replaced when dependencies are built.
