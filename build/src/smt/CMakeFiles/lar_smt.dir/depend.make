# Empty dependencies file for lar_smt.
# This may be replaced when dependencies are built.
