file(REMOVE_RECURSE
  "liblar_smt.a"
)
