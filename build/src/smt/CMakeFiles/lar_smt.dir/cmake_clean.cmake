file(REMOVE_RECURSE
  "CMakeFiles/lar_smt.dir/backend.cpp.o"
  "CMakeFiles/lar_smt.dir/backend.cpp.o.d"
  "CMakeFiles/lar_smt.dir/cdcl_backend.cpp.o"
  "CMakeFiles/lar_smt.dir/cdcl_backend.cpp.o.d"
  "CMakeFiles/lar_smt.dir/formula.cpp.o"
  "CMakeFiles/lar_smt.dir/formula.cpp.o.d"
  "CMakeFiles/lar_smt.dir/z3_backend.cpp.o"
  "CMakeFiles/lar_smt.dir/z3_backend.cpp.o.d"
  "liblar_smt.a"
  "liblar_smt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lar_smt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
