file(REMOVE_RECURSE
  "liblar_json.a"
)
