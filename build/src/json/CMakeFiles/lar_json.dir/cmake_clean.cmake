file(REMOVE_RECURSE
  "CMakeFiles/lar_json.dir/parse.cpp.o"
  "CMakeFiles/lar_json.dir/parse.cpp.o.d"
  "CMakeFiles/lar_json.dir/value.cpp.o"
  "CMakeFiles/lar_json.dir/value.cpp.o.d"
  "CMakeFiles/lar_json.dir/write.cpp.o"
  "CMakeFiles/lar_json.dir/write.cpp.o.d"
  "liblar_json.a"
  "liblar_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lar_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
