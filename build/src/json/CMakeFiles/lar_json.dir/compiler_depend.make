# Empty compiler generated dependencies file for lar_json.
# This may be replaced when dependencies are built.
