file(REMOVE_RECURSE
  "CMakeFiles/lar_rules.dir/datalog.cpp.o"
  "CMakeFiles/lar_rules.dir/datalog.cpp.o.d"
  "CMakeFiles/lar_rules.dir/deployment.cpp.o"
  "CMakeFiles/lar_rules.dir/deployment.cpp.o.d"
  "liblar_rules.a"
  "liblar_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lar_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
