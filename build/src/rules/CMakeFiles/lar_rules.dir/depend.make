# Empty dependencies file for lar_rules.
# This may be replaced when dependencies are built.
