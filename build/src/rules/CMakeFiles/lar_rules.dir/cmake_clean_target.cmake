file(REMOVE_RECURSE
  "liblar_rules.a"
)
