file(REMOVE_RECURSE
  "liblar_reason.a"
)
