file(REMOVE_RECURSE
  "CMakeFiles/lar_reason.dir/compile.cpp.o"
  "CMakeFiles/lar_reason.dir/compile.cpp.o.d"
  "CMakeFiles/lar_reason.dir/design.cpp.o"
  "CMakeFiles/lar_reason.dir/design.cpp.o.d"
  "CMakeFiles/lar_reason.dir/engine.cpp.o"
  "CMakeFiles/lar_reason.dir/engine.cpp.o.d"
  "CMakeFiles/lar_reason.dir/problem.cpp.o"
  "CMakeFiles/lar_reason.dir/problem.cpp.o.d"
  "CMakeFiles/lar_reason.dir/problem_io.cpp.o"
  "CMakeFiles/lar_reason.dir/problem_io.cpp.o.d"
  "CMakeFiles/lar_reason.dir/validate.cpp.o"
  "CMakeFiles/lar_reason.dir/validate.cpp.o.d"
  "CMakeFiles/lar_reason.dir/whatif.cpp.o"
  "CMakeFiles/lar_reason.dir/whatif.cpp.o.d"
  "liblar_reason.a"
  "liblar_reason.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lar_reason.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
