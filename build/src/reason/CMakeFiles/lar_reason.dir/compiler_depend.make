# Empty compiler generated dependencies file for lar_reason.
# This may be replaced when dependencies are built.
