file(REMOVE_RECURSE
  "liblar_extract.a"
)
