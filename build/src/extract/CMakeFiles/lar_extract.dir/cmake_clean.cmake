file(REMOVE_RECURSE
  "CMakeFiles/lar_extract.dir/checker.cpp.o"
  "CMakeFiles/lar_extract.dir/checker.cpp.o.d"
  "CMakeFiles/lar_extract.dir/disputes.cpp.o"
  "CMakeFiles/lar_extract.dir/disputes.cpp.o.d"
  "CMakeFiles/lar_extract.dir/extractor.cpp.o"
  "CMakeFiles/lar_extract.dir/extractor.cpp.o.d"
  "CMakeFiles/lar_extract.dir/specgen.cpp.o"
  "CMakeFiles/lar_extract.dir/specgen.cpp.o.d"
  "liblar_extract.a"
  "liblar_extract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lar_extract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
