
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/extract/checker.cpp" "src/extract/CMakeFiles/lar_extract.dir/checker.cpp.o" "gcc" "src/extract/CMakeFiles/lar_extract.dir/checker.cpp.o.d"
  "/root/repo/src/extract/disputes.cpp" "src/extract/CMakeFiles/lar_extract.dir/disputes.cpp.o" "gcc" "src/extract/CMakeFiles/lar_extract.dir/disputes.cpp.o.d"
  "/root/repo/src/extract/extractor.cpp" "src/extract/CMakeFiles/lar_extract.dir/extractor.cpp.o" "gcc" "src/extract/CMakeFiles/lar_extract.dir/extractor.cpp.o.d"
  "/root/repo/src/extract/specgen.cpp" "src/extract/CMakeFiles/lar_extract.dir/specgen.cpp.o" "gcc" "src/extract/CMakeFiles/lar_extract.dir/specgen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kb/CMakeFiles/lar_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/lar_json.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
