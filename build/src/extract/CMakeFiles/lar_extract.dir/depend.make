# Empty dependencies file for lar_extract.
# This may be replaced when dependencies are built.
