# Empty compiler generated dependencies file for lar_llmsim.
# This may be replaced when dependencies are built.
