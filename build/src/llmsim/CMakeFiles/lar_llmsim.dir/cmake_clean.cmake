file(REMOVE_RECURSE
  "CMakeFiles/lar_llmsim.dir/greedy.cpp.o"
  "CMakeFiles/lar_llmsim.dir/greedy.cpp.o.d"
  "liblar_llmsim.a"
  "liblar_llmsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lar_llmsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
