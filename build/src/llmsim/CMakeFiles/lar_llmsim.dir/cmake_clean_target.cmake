file(REMOVE_RECURSE
  "liblar_llmsim.a"
)
