# Empty compiler generated dependencies file for pfc_deadlock.
# This may be replaced when dependencies are built.
