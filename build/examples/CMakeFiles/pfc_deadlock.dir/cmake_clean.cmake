file(REMOVE_RECURSE
  "CMakeFiles/pfc_deadlock.dir/pfc_deadlock.cpp.o"
  "CMakeFiles/pfc_deadlock.dir/pfc_deadlock.cpp.o.d"
  "pfc_deadlock"
  "pfc_deadlock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfc_deadlock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
