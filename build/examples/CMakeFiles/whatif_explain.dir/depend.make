# Empty dependencies file for whatif_explain.
# This may be replaced when dependencies are built.
