file(REMOVE_RECURSE
  "CMakeFiles/whatif_explain.dir/whatif_explain.cpp.o"
  "CMakeFiles/whatif_explain.dir/whatif_explain.cpp.o.d"
  "whatif_explain"
  "whatif_explain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whatif_explain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
