# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/json_test[1]_include.cmake")
include("/root/repo/build/tests/sat_test[1]_include.cmake")
include("/root/repo/build/tests/encode_test[1]_include.cmake")
include("/root/repo/build/tests/opt_test[1]_include.cmake")
include("/root/repo/build/tests/smt_test[1]_include.cmake")
include("/root/repo/build/tests/kb_test[1]_include.cmake")
include("/root/repo/build/tests/order_test[1]_include.cmake")
include("/root/repo/build/tests/catalog_test[1]_include.cmake")
include("/root/repo/build/tests/reason_test[1]_include.cmake")
include("/root/repo/build/tests/topo_test[1]_include.cmake")
include("/root/repo/build/tests/extract_test[1]_include.cmake")
include("/root/repo/build/tests/llmsim_test[1]_include.cmake")
include("/root/repo/build/tests/problem_io_test[1]_include.cmake")
include("/root/repo/build/tests/engine_features_test[1]_include.cmake")
include("/root/repo/build/tests/whatif_test[1]_include.cmake")
include("/root/repo/build/tests/rules_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/diff_disputes_test[1]_include.cmake")
add_test(larctl_export_validate "sh" "-c" "/root/repo/build/tools/larctl export-kb /root/repo/build/kb_export.json && /root/repo/build/tools/larctl validate /root/repo/build/kb_export.json")
set_tests_properties(larctl_export_validate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;30;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(larctl_optimize "sh" "-c" "echo '{\"hardware\":{\"server\":{\"count\":60},\"switch\":{\"count\":8},\"nic\":{\"count\":60}},\"objective_priority\":[\"latency\"]}' > /root/repo/build/prob_smoke.json && /root/repo/build/tools/larctl optimize builtin /root/repo/build/prob_smoke.json")
set_tests_properties(larctl_optimize PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;32;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(larctl_ordering "/root/repo/build/tools/larctl" "ordering" "builtin" "throughput")
set_tests_properties(larctl_ordering PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;34;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(larctl_sheet "/root/repo/build/tools/larctl" "sheet" "builtin" "Cisco Catalyst 9500-40X")
set_tests_properties(larctl_sheet PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;36;add_test;/root/repo/tests/CMakeLists.txt;0;")
