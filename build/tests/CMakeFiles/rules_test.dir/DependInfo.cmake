
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/rules_test.cpp" "tests/CMakeFiles/rules_test.dir/rules_test.cpp.o" "gcc" "tests/CMakeFiles/rules_test.dir/rules_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rules/CMakeFiles/lar_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/lar_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/reason/CMakeFiles/lar_reason.dir/DependInfo.cmake"
  "/root/repo/build/src/smt/CMakeFiles/lar_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/lar_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/encode/CMakeFiles/lar_encode.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/lar_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/order/CMakeFiles/lar_order.dir/DependInfo.cmake"
  "/root/repo/build/src/kb/CMakeFiles/lar_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/lar_json.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
