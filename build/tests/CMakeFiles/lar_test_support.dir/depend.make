# Empty dependencies file for lar_test_support.
# This may be replaced when dependencies are built.
