file(REMOVE_RECURSE
  "CMakeFiles/lar_test_support.dir/testsupport.cpp.o"
  "CMakeFiles/lar_test_support.dir/testsupport.cpp.o.d"
  "liblar_test_support.a"
  "liblar_test_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lar_test_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
