file(REMOVE_RECURSE
  "liblar_test_support.a"
)
