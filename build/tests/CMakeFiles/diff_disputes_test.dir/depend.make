# Empty dependencies file for diff_disputes_test.
# This may be replaced when dependencies are built.
