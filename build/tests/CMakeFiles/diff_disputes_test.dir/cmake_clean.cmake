file(REMOVE_RECURSE
  "CMakeFiles/diff_disputes_test.dir/diff_disputes_test.cpp.o"
  "CMakeFiles/diff_disputes_test.dir/diff_disputes_test.cpp.o.d"
  "diff_disputes_test"
  "diff_disputes_test.pdb"
  "diff_disputes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diff_disputes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
