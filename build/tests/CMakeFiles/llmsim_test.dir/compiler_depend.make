# Empty compiler generated dependencies file for llmsim_test.
# This may be replaced when dependencies are built.
