file(REMOVE_RECURSE
  "CMakeFiles/llmsim_test.dir/llmsim_test.cpp.o"
  "CMakeFiles/llmsim_test.dir/llmsim_test.cpp.o.d"
  "llmsim_test"
  "llmsim_test.pdb"
  "llmsim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llmsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
